//! Labelled sub-circuit module generators.

use cirstag_circuit::{CellKind, CellLibrary, CircuitError, NetId, Netlist};

/// The sub-circuit classes of the interconnected dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubcircuitKind {
    /// Ripple-carry adder (XOR/MAJ3 per bit).
    Adder,
    /// Equality comparator (XNOR + AND reduction).
    Comparator,
    /// Parity (XOR) tree.
    Parity,
    /// Multiplexer tree.
    MuxTree,
    /// Address decoder (INV + AND minterms).
    Decoder,
    /// Array multiplier (AND partial products + adder cells).
    Multiplier,
    /// Combinational incrementer (XOR + AND carry chain).
    Incrementer,
}

/// Number of sub-circuit classes.
pub const NUM_CLASSES: usize = 7;

impl SubcircuitKind {
    /// All classes, index order = class label.
    pub const ALL: [SubcircuitKind; NUM_CLASSES] = [
        SubcircuitKind::Adder,
        SubcircuitKind::Comparator,
        SubcircuitKind::Parity,
        SubcircuitKind::MuxTree,
        SubcircuitKind::Decoder,
        SubcircuitKind::Multiplier,
        SubcircuitKind::Incrementer,
    ];

    /// Class label (index into [`SubcircuitKind::ALL`]).
    pub fn label(&self) -> usize {
        SubcircuitKind::ALL
            .iter()
            .position(|k| k == self)
            .expect("all kinds listed") // cirstag-lint: allow(no-panic-in-lib) -- SubcircuitKind::ALL enumerates every variant, so position always exists
    }

    /// Human-readable class name.
    pub fn name(&self) -> &'static str {
        match self {
            SubcircuitKind::Adder => "adder",
            SubcircuitKind::Comparator => "comparator",
            SubcircuitKind::Parity => "parity",
            SubcircuitKind::MuxTree => "mux_tree",
            SubcircuitKind::Decoder => "decoder",
            SubcircuitKind::Multiplier => "multiplier",
            SubcircuitKind::Incrementer => "incrementer",
        }
    }
}

/// Context handed to module generators: the netlist under construction plus
/// the label sink.
pub(crate) struct ModuleBuilder<'a> {
    pub netlist: &'a mut Netlist,
    pub library: &'a CellLibrary,
    pub labels: &'a mut Vec<usize>,
    pub wire_cap: f64,
}

impl ModuleBuilder<'_> {
    /// Adds one labelled gate and returns its output net.
    pub fn gate(
        &mut self,
        kind: CellKind,
        inputs: Vec<NetId>,
        label: SubcircuitKind,
    ) -> Result<NetId, CircuitError> {
        let cell = self
            .library
            .by_kind(kind)
            .ok_or_else(|| CircuitError::UnknownCell {
                name: kind.name().to_string(),
            })?;
        let gi = self.netlist.num_cells();
        let out = self.netlist.add_net(format!("m{gi}"), self.wire_cap);
        self.netlist.add_cell(format!("u{gi}"), cell, inputs, out)?;
        self.labels.push(label.label());
        Ok(out)
    }
}

/// Emits one module instance of `kind`, drawing inputs from `pool`, and
/// returns its output nets.
pub(crate) fn emit_module(
    b: &mut ModuleBuilder<'_>,
    kind: SubcircuitKind,
    pool: &[NetId],
    width: usize,
    pick: &mut dyn FnMut(usize) -> usize,
) -> Result<Vec<NetId>, CircuitError> {
    let mut input = |pool: &[NetId]| pool[pick(pool.len())];
    let w = width.max(2);
    let mut outputs = Vec::new();
    match kind {
        SubcircuitKind::Adder => {
            let mut carry = input(pool);
            for _ in 0..w {
                let a = input(pool);
                let bb = input(pool);
                let axb = b.gate(CellKind::Xor2, vec![a, bb], kind)?;
                let sum = b.gate(CellKind::Xor2, vec![axb, carry], kind)?;
                let maj = b.gate(CellKind::Maj3, vec![a, bb, carry], kind)?;
                outputs.push(sum);
                carry = maj;
            }
            outputs.push(carry);
        }
        SubcircuitKind::Comparator => {
            let mut eqs = Vec::new();
            for _ in 0..w {
                let a = input(pool);
                let bb = input(pool);
                eqs.push(b.gate(CellKind::Xnor2, vec![a, bb], kind)?);
            }
            // AND-reduce.
            while eqs.len() > 1 {
                let x = eqs.remove(0);
                let y = eqs.remove(0);
                eqs.push(b.gate(CellKind::And2, vec![x, y], kind)?);
            }
            outputs.push(eqs[0]); // cirstag-lint: allow(no-panic-in-lib) -- the AND-reduce loop above leaves exactly one element
        }
        SubcircuitKind::Parity => {
            let mut xs: Vec<NetId> = (0..2 * w).map(|_| input(pool)).collect();
            while xs.len() > 1 {
                let x = xs.remove(0);
                let y = xs.remove(0);
                xs.push(b.gate(CellKind::Xor2, vec![x, y], kind)?);
            }
            outputs.push(xs[0]); // cirstag-lint: allow(no-panic-in-lib) -- the XOR-reduce loop above leaves exactly one element
        }
        SubcircuitKind::MuxTree => {
            let mut data: Vec<NetId> = (0..(1 << w.min(3))).map(|_| input(pool)).collect();
            while data.len() > 1 {
                let sel = input(pool);
                let mut next = Vec::new();
                for pair in data.chunks(2) {
                    if pair.len() == 2 {
                        // cirstag-lint: allow(no-panic-in-lib) -- this branch runs only when chunks(2) yields a full pair
                        next.push(b.gate(CellKind::Mux2, vec![pair[0], pair[1], sel], kind)?);
                    } else {
                        next.push(pair[0]); // cirstag-lint: allow(no-panic-in-lib) -- the odd tail chunk holds exactly one element
                    }
                }
                data = next;
            }
            outputs.push(data[0]); // cirstag-lint: allow(no-panic-in-lib) -- the mux-reduce loop above leaves exactly one element
        }
        SubcircuitKind::Decoder => {
            let bits = w.min(3);
            let addr: Vec<NetId> = (0..bits).map(|_| input(pool)).collect();
            let inv: Vec<NetId> = addr
                .iter()
                .map(|&a| b.gate(CellKind::Inv, vec![a], kind))
                .collect::<Result<_, _>>()?;
            for minterm in 0..(1usize << bits) {
                let mut term = if minterm & 1 == 1 { addr[0] } else { inv[0] }; // cirstag-lint: allow(no-panic-in-lib) -- bits >= 1 because w >= 2, so addr and inv are non-empty
                for bit in 1..bits {
                    let lit = if (minterm >> bit) & 1 == 1 {
                        addr[bit]
                    } else {
                        inv[bit]
                    };
                    term = b.gate(CellKind::And2, vec![term, lit], kind)?;
                }
                outputs.push(term);
            }
        }
        SubcircuitKind::Multiplier => {
            let n = w.min(3);
            let a: Vec<NetId> = (0..n).map(|_| input(pool)).collect();
            let c: Vec<NetId> = (0..n).map(|_| input(pool)).collect();
            // Partial products.
            let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * n];
            for (i, &ai) in a.iter().enumerate() {
                for (j, &cj) in c.iter().enumerate() {
                    let pp = b.gate(CellKind::And2, vec![ai, cj], kind)?;
                    columns[i + j].push(pp);
                }
            }
            // Column compression with XOR (sum) and MAJ/AND (carry).
            for col in 0..2 * n {
                while columns[col].len() > 1 {
                    if columns[col].len() >= 3 {
                        let x = columns[col].remove(0);
                        let y = columns[col].remove(0);
                        let z = columns[col].remove(0);
                        let s1 = b.gate(CellKind::Xor2, vec![x, y], kind)?;
                        let s = b.gate(CellKind::Xor2, vec![s1, z], kind)?;
                        let cy = b.gate(CellKind::Maj3, vec![x, y, z], kind)?;
                        columns[col].push(s);
                        if col + 1 < 2 * n {
                            columns[col + 1].push(cy);
                        }
                    } else {
                        let x = columns[col].remove(0);
                        let y = columns[col].remove(0);
                        let s = b.gate(CellKind::Xor2, vec![x, y], kind)?;
                        let cy = b.gate(CellKind::And2, vec![x, y], kind)?;
                        columns[col].push(s);
                        if col + 1 < 2 * n {
                            columns[col + 1].push(cy);
                        }
                    }
                }
                if let Some(&o) = columns[col].first() {
                    outputs.push(o);
                }
            }
        }
        SubcircuitKind::Incrementer => {
            let mut carry = input(pool);
            for _ in 0..w {
                let a = input(pool);
                let sum = b.gate(CellKind::Xor2, vec![a, carry], kind)?;
                let nc = b.gate(CellKind::And2, vec![a, carry], kind)?;
                outputs.push(sum);
                carry = nc;
            }
            outputs.push(carry);
        }
    }
    Ok(outputs)
}

/// A standalone module instance over dedicated primary inputs, for
/// functional verification and demos.
#[derive(Debug, Clone)]
pub struct StandaloneModule {
    /// The module netlist (inputs consumed *sequentially*: see
    /// [`build_standalone_module`] for the per-kind input layout).
    pub netlist: Netlist,
    /// Per-gate labels (all equal to `kind.label()`).
    pub labels: Vec<usize>,
    /// The module's output nets, in generator order.
    pub outputs: Vec<NetId>,
}

/// Builds one sub-circuit instance whose inputs are fresh primary inputs
/// assigned sequentially, making the Boolean function exactly predictable:
///
/// - `Adder`: inputs `[cin, a0, b0, a1, b1, …]`, outputs `[s0…s_{w−1}, cout]`
///   computing `A + B + cin`.
/// - `Comparator`: inputs `[a0, b0, a1, b1, …]`, one output `A == B`.
/// - `Parity`: `2w` inputs, one output — their XOR.
/// - `MuxTree`: inputs `[d0…d_{2^b−1}, s0, s1, …]` (`b = min(w, 3)` levels),
///   output `d[s]` with `s = Σ sᵢ·2ⁱ`.
/// - `Decoder`: inputs `[addr0…addr_{b−1}]`, `2^b` one-hot outputs.
/// - `Multiplier`: inputs `[a0…a_{n−1}, c0…c_{n−1}]` (`n = min(w, 3)`),
///   outputs the `2n` product bits of `A · C`, LSB first.
/// - `Incrementer`: inputs `[cin, a0…a_{w−1}]`, outputs
///   `[s0…s_{w−1}, cout]` computing `A + cin`.
///
/// # Errors
///
/// Propagates netlist-construction failures.
pub fn build_standalone_module(
    kind: SubcircuitKind,
    width: usize,
) -> Result<StandaloneModule, CircuitError> {
    let library = CellLibrary::standard();
    let w = width.max(2);
    // Upper bound on inputs consumed by any kind at this width.
    let pool_size = match kind {
        SubcircuitKind::Adder => 1 + 2 * w,
        SubcircuitKind::Comparator => 2 * w,
        SubcircuitKind::Parity => 2 * w,
        SubcircuitKind::MuxTree => (1 << w.min(3)) + w.min(3),
        SubcircuitKind::Decoder => w.min(3),
        SubcircuitKind::Multiplier => 2 * w.min(3),
        SubcircuitKind::Incrementer => 1 + w,
    };
    let mut netlist = Netlist::new(format!("standalone_{}", kind.name()));
    let pool: Vec<NetId> = (0..pool_size)
        .map(|i| {
            let id = netlist.add_net(format!("pi{i}"), 0.001);
            netlist.primary_inputs.push(id);
            id
        })
        .collect();
    let mut labels = Vec::new();
    let mut counter = 0usize;
    let mut pick = move |_n: usize| {
        let i = counter;
        counter += 1;
        i
    };
    let outputs = {
        let mut b = ModuleBuilder {
            netlist: &mut netlist,
            library: &library,
            labels: &mut labels,
            wire_cap: 0.001,
        };
        emit_module(&mut b, kind, &pool, w, &mut pick)?
    };
    // Observe every net that nothing reads (module outputs + dead carries).
    let sinks = netlist.net_sinks();
    for (net, s) in sinks.iter().enumerate() {
        if s.is_empty() {
            netlist.primary_outputs.push(net);
        }
    }
    netlist.validate(&library)?;
    Ok(StandaloneModule {
        netlist,
        labels,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirstag_circuit::CellLibrary;

    fn harness(kind: SubcircuitKind, width: usize) -> (Netlist, Vec<usize>, Vec<NetId>) {
        let library = CellLibrary::standard();
        let mut netlist = Netlist::new("module_test");
        let mut labels = Vec::new();
        let pool: Vec<NetId> = (0..8)
            .map(|i| {
                let id = netlist.add_net(format!("pi{i}"), 0.001);
                netlist.primary_inputs.push(id);
                id
            })
            .collect();
        let mut counter = 0usize;
        let mut pick = move |n: usize| {
            counter += 1;
            (counter * 7 + 3) % n
        };
        let outs = {
            let mut b = ModuleBuilder {
                netlist: &mut netlist,
                library: &library,
                labels: &mut labels,
                wire_cap: 0.001,
            };
            emit_module(&mut b, kind, &pool, width, &mut pick).unwrap()
        };
        netlist.primary_outputs = outs.clone();
        // Also expose unread nets so validation-by-construction is testable.
        (netlist, labels, outs)
    }

    #[test]
    fn every_module_kind_builds_valid_logic() {
        let library = CellLibrary::standard();
        for kind in SubcircuitKind::ALL {
            let (netlist, labels, outs) = harness(kind, 3);
            assert!(!outs.is_empty(), "{kind:?} produced no outputs");
            assert_eq!(labels.len(), netlist.num_cells());
            assert!(labels.iter().all(|&l| l == kind.label()));
            // A full validate may flag unread intermediate nets as fine
            // (they are just unobserved), but drivers and acyclicity must
            // hold.
            netlist.topological_order().unwrap();
            for inst in &netlist.cells {
                assert_eq!(
                    library.cell(inst.cell).arity(),
                    inst.inputs.len(),
                    "{kind:?} arity"
                );
            }
        }
    }

    #[test]
    fn adder_gate_count_scales_with_width() {
        let (n3, _, _) = harness(SubcircuitKind::Adder, 3);
        let (n6, _, _) = harness(SubcircuitKind::Adder, 6);
        assert_eq!(n3.num_cells(), 9); // 3 gates per bit
        assert_eq!(n6.num_cells(), 18);
    }

    #[test]
    fn decoder_output_count_is_power_of_two() {
        let (_, _, outs) = harness(SubcircuitKind::Decoder, 3);
        assert_eq!(outs.len(), 8);
    }

    #[test]
    fn labels_match_class_indices() {
        for (i, kind) in SubcircuitKind::ALL.iter().enumerate() {
            assert_eq!(kind.label(), i);
        }
        assert_eq!(NUM_CLASSES, SubcircuitKind::ALL.len());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = SubcircuitKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CLASSES);
    }
}
