//! Interconnected labelled datasets and the gate-level graph view.

use crate::modules::{emit_module, ModuleBuilder, SubcircuitKind};
use cirstag_circuit::{CellLibrary, CircuitError, NetId, Netlist};
use cirstag_graph::Graph;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Options for [`build_interconnected`].
#[derive(Debug, Clone, Copy)]
pub struct InterconnectedConfig {
    /// Number of module instances to stitch together.
    pub num_modules: usize,
    /// Number of shared primary inputs.
    pub num_primary_inputs: usize,
    /// Module width parameter range `(min, max)` (bits).
    pub width_range: (usize, usize),
    /// Fraction of each module's inputs drawn from *other modules' outputs*
    /// rather than primary inputs (interconnection density).
    pub interconnect: f64,
}

impl Default for InterconnectedConfig {
    fn default() -> Self {
        InterconnectedConfig {
            num_modules: 24,
            num_primary_inputs: 16,
            width_range: (2, 5),
            interconnect: 0.6,
        }
    }
}

/// A labelled reverse-engineering dataset.
#[derive(Debug, Clone)]
pub struct LabeledDataset {
    /// The stitched netlist.
    pub netlist: Netlist,
    /// Per-gate class label (`SubcircuitKind::label()`).
    pub labels: Vec<usize>,
    /// The gate-level graph (nodes = gates, edges = gate connections).
    pub gate_graph: Graph,
    /// The cell library the netlist references.
    pub library: CellLibrary,
}

/// Builds an interconnected dataset: `num_modules` sub-circuits of rotating
/// kinds, each drawing inputs partly from earlier modules' outputs, with a
/// per-gate class label. Deterministic in `(config, seed)`.
///
/// # Errors
///
/// - [`CircuitError::InvalidArgument`] for zero modules/PIs or a bad width
///   range.
/// - Propagates construction failures.
pub fn build_interconnected(
    config: &InterconnectedConfig,
    seed: u64,
) -> Result<LabeledDataset, CircuitError> {
    if config.num_modules == 0 || config.num_primary_inputs < 2 {
        return Err(CircuitError::InvalidArgument {
            reason: "need at least one module and two primary inputs".to_string(),
        });
    }
    let (w_lo, w_hi) = config.width_range;
    if w_lo < 2 || w_hi < w_lo {
        return Err(CircuitError::InvalidArgument {
            reason: format!("width range ({w_lo}, {w_hi}) must be ordered and ≥ 2"),
        });
    }
    if !(0.0..=1.0).contains(&config.interconnect) {
        return Err(CircuitError::InvalidArgument {
            reason: format!("interconnect {} must be in [0, 1]", config.interconnect),
        });
    }
    let library = CellLibrary::standard();
    let mut netlist = Netlist::new(format!("interconnected_s{seed}"));
    let mut labels: Vec<usize> = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed);

    let pis: Vec<NetId> = (0..config.num_primary_inputs)
        .map(|i| {
            let id = netlist.add_net(format!("pi{i}"), 0.001);
            netlist.primary_inputs.push(id);
            id
        })
        .collect();

    let mut module_outputs: Vec<NetId> = Vec::new();
    for m in 0..config.num_modules {
        let kind = SubcircuitKind::ALL[m % SubcircuitKind::ALL.len()];
        let width = rng.random_range(w_lo..=w_hi);
        // The candidate pool mixes PIs and earlier outputs per the
        // interconnect ratio.
        let pool: Vec<NetId> = if module_outputs.is_empty() {
            pis.clone()
        } else {
            let take = ((module_outputs.len() as f64) * config.interconnect) as usize;
            let mut p = pis.clone();
            let start = module_outputs.len().saturating_sub(take.max(1));
            p.extend_from_slice(&module_outputs[start..]);
            p
        };
        let outs = {
            let mut pick = |n: usize| rng.random_range(0..n);
            let mut b = ModuleBuilder {
                netlist: &mut netlist,
                library: &library,
                labels: &mut labels,
                wire_cap: 0.001,
            };
            emit_module(&mut b, kind, &pool, width, &mut pick)?
        };
        module_outputs.extend(outs);
    }

    // Unread nets become primary outputs.
    let sinks = netlist.net_sinks();
    for (net, s) in sinks.iter().enumerate() {
        if s.is_empty() && !netlist.primary_inputs.contains(&net) {
            netlist.primary_outputs.push(net);
        }
    }
    netlist.validate(&library)?;
    let gate_graph = gate_graph(&netlist)?;
    Ok(LabeledDataset {
        netlist,
        labels,
        gate_graph,
        library,
    })
}

/// Builds the gate-level graph of a netlist: one node per cell instance, an
/// edge between a driver gate and each gate reading its output. Gates
/// connected only through primary inputs share an edge as well (common-input
/// coupling), which keeps module clusters connected the way layout-derived
/// graphs are.
///
/// # Errors
///
/// Propagates graph-construction failures.
pub fn gate_graph(netlist: &Netlist) -> Result<Graph, CircuitError> {
    let mut g = Graph::new(netlist.num_cells());
    let drivers = netlist.net_drivers();
    let sinks = netlist.net_sinks();
    for (net, sink_cells) in sinks.iter().enumerate() {
        match drivers[net] {
            Some(d) => {
                for &s in sink_cells {
                    if s != d {
                        g.add_edge(d, s, 1.0)?;
                    }
                }
            }
            None => {
                // Primary-input net: chain its readers so common-input gates
                // are adjacent (without forming a clique).
                for pair in sink_cells.windows(2) {
                    // cirstag-lint: allow(no-panic-in-lib) -- windows(2) yields exactly two elements per pair
                    if pair[0] != pair[1] {
                        g.add_edge(pair[0], pair[1], 1.0)?; // cirstag-lint: allow(no-panic-in-lib) -- windows(2) yields exactly two elements per pair
                    }
                }
            }
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_consistent() {
        let d = build_interconnected(&InterconnectedConfig::default(), 1).unwrap();
        assert_eq!(d.labels.len(), d.netlist.num_cells());
        assert_eq!(d.gate_graph.num_nodes(), d.netlist.num_cells());
        assert!(d.gate_graph.num_edges() > d.netlist.num_cells() / 2);
        // All seven classes present with the default 24 modules.
        let mut seen = vec![false; crate::NUM_CLASSES];
        for &l in &d.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing classes: {seen:?}");
    }

    #[test]
    fn dataset_is_deterministic() {
        let a = build_interconnected(&InterconnectedConfig::default(), 5).unwrap();
        let b = build_interconnected(&InterconnectedConfig::default(), 5).unwrap();
        assert_eq!(a.netlist, b.netlist);
        assert_eq!(a.labels, b.labels);
        let c = build_interconnected(&InterconnectedConfig::default(), 6).unwrap();
        assert_ne!(a.netlist, c.netlist);
    }

    #[test]
    fn gate_graph_is_connected_for_default_config() {
        let d = build_interconnected(&InterconnectedConfig::default(), 3).unwrap();
        assert!(d.gate_graph.is_connected());
    }

    #[test]
    fn interconnect_zero_still_builds() {
        let d = build_interconnected(
            &InterconnectedConfig {
                interconnect: 0.0,
                num_modules: 7,
                ..Default::default()
            },
            2,
        )
        .unwrap();
        assert_eq!(d.labels.len(), d.netlist.num_cells());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert!(build_interconnected(
            &InterconnectedConfig {
                num_modules: 0,
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(build_interconnected(
            &InterconnectedConfig {
                width_range: (1, 4),
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(build_interconnected(
            &InterconnectedConfig {
                interconnect: 2.0,
                ..Default::default()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn gate_graph_edges_follow_connectivity() {
        // Two gates in series share an edge; unrelated gates do not.
        let lib = CellLibrary::standard();
        let inv = lib.by_kind(cirstag_circuit::CellKind::Inv).unwrap();
        let mut n = Netlist::new("t");
        let a = n.add_net("a", 0.001);
        let b = n.add_net("b", 0.001);
        let c = n.add_net("c", 0.001);
        let d = n.add_net("d", 0.001);
        let e = n.add_net("e", 0.001);
        n.primary_inputs = vec![a, d];
        n.add_cell("g0", inv, vec![a], b).unwrap();
        n.add_cell("g1", inv, vec![b], c).unwrap();
        n.add_cell("g2", inv, vec![d], e).unwrap();
        n.primary_outputs = vec![c, e];
        let g = gate_graph(&n).unwrap();
        assert!(g.edge_weight(0, 1).is_some());
        assert!(g.edge_weight(0, 2).is_none());
        assert!(g.edge_weight(1, 2).is_none());
    }
}
