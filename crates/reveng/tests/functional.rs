//! Functional (truth-table) verification of every sub-circuit generator:
//! the modules the reverse-engineering dataset is built from must actually
//! compute the functions their class names advertise.

use cirstag_circuit::{simulate, CellLibrary};
use cirstag_reveng::{build_standalone_module, SubcircuitKind};

fn bits_of(pattern: u64, k: usize) -> Vec<bool> {
    (0..k).map(|i| (pattern >> i) & 1 == 1).collect()
}

fn value_of(bits: &[bool]) -> u64 {
    bits.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum()
}

#[test]
fn adder_adds() {
    let library = CellLibrary::standard();
    let m = build_standalone_module(SubcircuitKind::Adder, 3).unwrap();
    // Inputs: [cin, a0, b0, a1, b1, a2, b2]; outputs [s0, s1, s2, cout].
    for pattern in 0..(1u64 << 7) {
        let inputs = bits_of(pattern, 7);
        let values = simulate(&m.netlist, &library, &inputs).unwrap();
        let cin = inputs[0] as u64;
        let a = (inputs[1] as u64) | ((inputs[3] as u64) << 1) | ((inputs[5] as u64) << 2);
        let b = (inputs[2] as u64) | ((inputs[4] as u64) << 1) | ((inputs[6] as u64) << 2);
        let outs: Vec<bool> = m.outputs.iter().map(|&n| values[n]).collect();
        let got = value_of(&outs);
        assert_eq!(got, a + b + cin, "pattern {pattern:07b}: {a} + {b} + {cin}");
    }
}

#[test]
fn comparator_compares() {
    let library = CellLibrary::standard();
    let m = build_standalone_module(SubcircuitKind::Comparator, 3).unwrap();
    // Inputs: [a0, b0, a1, b1, a2, b2]; output: A == B.
    for pattern in 0..(1u64 << 6) {
        let inputs = bits_of(pattern, 6);
        let values = simulate(&m.netlist, &library, &inputs).unwrap();
        let equal = (0..3).all(|i| inputs[2 * i] == inputs[2 * i + 1]);
        assert_eq!(values[m.outputs[0]], equal, "pattern {pattern:06b}");
    }
}

#[test]
fn parity_is_parity() {
    let library = CellLibrary::standard();
    let m = build_standalone_module(SubcircuitKind::Parity, 3).unwrap();
    for pattern in 0..(1u64 << 6) {
        let inputs = bits_of(pattern, 6);
        let values = simulate(&m.netlist, &library, &inputs).unwrap();
        let parity = inputs.iter().filter(|&&b| b).count() % 2 == 1;
        assert_eq!(values[m.outputs[0]], parity, "pattern {pattern:06b}");
    }
}

#[test]
fn mux_tree_selects() {
    let library = CellLibrary::standard();
    let m = build_standalone_module(SubcircuitKind::MuxTree, 3).unwrap();
    // Inputs: [d0..d7, s0, s1, s2]; output d[s].
    for pattern in 0..(1u64 << 11) {
        let inputs = bits_of(pattern, 11);
        let values = simulate(&m.netlist, &library, &inputs).unwrap();
        let sel = (inputs[8] as usize) | ((inputs[9] as usize) << 1) | ((inputs[10] as usize) << 2);
        assert_eq!(values[m.outputs[0]], inputs[sel], "pattern {pattern:011b}");
    }
}

#[test]
fn decoder_decodes_one_hot() {
    let library = CellLibrary::standard();
    let m = build_standalone_module(SubcircuitKind::Decoder, 3).unwrap();
    for pattern in 0..(1u64 << 3) {
        let inputs = bits_of(pattern, 3);
        let values = simulate(&m.netlist, &library, &inputs).unwrap();
        for (minterm, &out) in m.outputs.iter().enumerate() {
            assert_eq!(
                values[out],
                minterm as u64 == pattern,
                "pattern {pattern:03b} minterm {minterm}"
            );
        }
    }
}

#[test]
fn multiplier_multiplies() {
    let library = CellLibrary::standard();
    let m = build_standalone_module(SubcircuitKind::Multiplier, 3).unwrap();
    // Inputs: [a0, a1, a2, c0, c1, c2]; outputs: 6 product bits LSB-first.
    for pattern in 0..(1u64 << 6) {
        let inputs = bits_of(pattern, 6);
        let values = simulate(&m.netlist, &library, &inputs).unwrap();
        let a = value_of(&inputs[0..3]);
        let c = value_of(&inputs[3..6]);
        let outs: Vec<bool> = m.outputs.iter().map(|&n| values[n]).collect();
        assert_eq!(value_of(&outs), a * c, "pattern {pattern:06b}: {a} × {c}");
    }
}

#[test]
fn incrementer_increments() {
    let library = CellLibrary::standard();
    let m = build_standalone_module(SubcircuitKind::Incrementer, 4).unwrap();
    // Inputs: [cin, a0..a3]; outputs [s0..s3, cout] computing A + cin.
    for pattern in 0..(1u64 << 5) {
        let inputs = bits_of(pattern, 5);
        let values = simulate(&m.netlist, &library, &inputs).unwrap();
        let cin = inputs[0] as u64;
        let a = value_of(&inputs[1..5]);
        let outs: Vec<bool> = m.outputs.iter().map(|&n| values[n]).collect();
        assert_eq!(value_of(&outs), a + cin, "pattern {pattern:05b}");
    }
}

#[test]
fn all_module_kinds_have_labels_matching_gate_count() {
    for kind in SubcircuitKind::ALL {
        let m = build_standalone_module(kind, 3).unwrap();
        assert_eq!(m.labels.len(), m.netlist.num_cells(), "{kind:?}");
        assert!(m.labels.iter().all(|&l| l == kind.label()));
        assert!(!m.outputs.is_empty());
    }
}
