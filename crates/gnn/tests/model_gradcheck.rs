//! Whole-model gradient verification: analytic gradients through stacked
//! heterogeneous layers must match finite differences of the actual losses.

use cirstag_gnn::{cross_entropy_loss, mse_loss, Activation, GnnModel, GraphContext, LayerSpec};
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;

fn ctx_undirected() -> GraphContext {
    let g = Graph::from_edges(
        5,
        &[
            (0, 1, 1.0),
            (1, 2, 2.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
            (4, 0, 0.5),
        ],
    )
    .unwrap();
    GraphContext::new(&g)
}

fn ctx_dag() -> GraphContext {
    let g = Graph::from_edges(
        5,
        &[
            (0, 1, 1.0),
            (0, 2, 1.0),
            (1, 3, 1.0),
            (2, 3, 1.0),
            (3, 4, 1.0),
        ],
    )
    .unwrap();
    GraphContext::with_dag(&g, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]).unwrap()
}

fn features() -> DenseMatrix {
    DenseMatrix::from_rows(&[
        vec![0.5, -0.2],
        vec![0.1, 0.9],
        vec![-0.7, 0.3],
        vec![0.2, 0.2],
        vec![0.9, -0.5],
    ])
    .unwrap()
}

/// Checks every parameter gradient of `model` against central finite
/// differences of the given loss closure.
fn check_model_gradients<F>(model: &mut GnnModel, ctx: &GraphContext, x: &DenseMatrix, loss: F)
where
    F: Fn(&DenseMatrix) -> (f64, DenseMatrix),
{
    model.zero_grad();
    let out = model.forward(ctx, x, false).unwrap();
    let (_, grad) = loss(&out);
    model.backward(&grad, ctx).unwrap();
    let analytic: Vec<DenseMatrix> = model.parameters().iter().map(|p| p.grad.clone()).collect();
    let h = 1e-6;
    for pi in 0..analytic.len() {
        let (rows, cols) = analytic[pi].shape();
        for i in 0..rows {
            for j in 0..cols {
                let orig = model.parameters()[pi].value.get(i, j);
                model.parameters()[pi].value.set(i, j, orig + h);
                let (lp, _) = loss(&model.forward(ctx, x, false).unwrap());
                model.parameters()[pi].value.set(i, j, orig - h);
                let (lm, _) = loss(&model.forward(ctx, x, false).unwrap());
                model.parameters()[pi].value.set(i, j, orig);
                let fd = (lp - lm) / (2.0 * h);
                let an = analytic[pi].get(i, j);
                assert!(
                    (fd - an).abs() <= 1e-4 * (1.0 + fd.abs()),
                    "param {pi} ({i},{j}): analytic {an} vs fd {fd}"
                );
            }
        }
    }
}

#[test]
fn gcn_sage_linear_stack_mse() {
    let ctx = ctx_undirected();
    let x = features();
    let target =
        DenseMatrix::from_rows(&[vec![1.0], vec![0.0], vec![-1.0], vec![0.5], vec![0.2]]).unwrap();
    let mut model = GnnModel::new(
        2,
        &[
            LayerSpec::Gcn {
                dim: 4,
                activation: Activation::Tanh,
            },
            LayerSpec::Sage {
                dim: 3,
                activation: Activation::Elu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        3,
    )
    .unwrap();
    check_model_gradients(&mut model, &ctx, &x, |out| {
        let l = mse_loss(out, &target, None).unwrap();
        (l.value, l.grad)
    });
}

#[test]
fn gat_classifier_cross_entropy() {
    let ctx = ctx_undirected();
    let x = features();
    let labels = [0usize, 1, 2, 1, 0];
    let mut model = GnnModel::new(
        2,
        &[
            LayerSpec::Gat {
                head_dim: 3,
                num_heads: 2,
                activation: Activation::Elu,
            },
            LayerSpec::Linear {
                dim: 3,
                activation: Activation::Identity,
            },
        ],
        5,
    )
    .unwrap();
    check_model_gradients(&mut model, &ctx, &x, |out| {
        let l = cross_entropy_loss(out, &labels, None).unwrap();
        (l.value, l.grad)
    });
}

#[test]
fn dagprop_stack_with_mask() {
    let ctx = ctx_dag();
    let x = features();
    let target =
        DenseMatrix::from_rows(&[vec![0.0], vec![0.3], vec![0.3], vec![0.9], vec![1.0]]).unwrap();
    let mask = [false, true, true, false, true];
    let mut model = GnnModel::new(
        2,
        &[
            LayerSpec::Linear {
                dim: 4,
                activation: Activation::Relu,
            },
            LayerSpec::DagProp {
                dim: 4,
                activation: Activation::Tanh,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        8,
    )
    .unwrap();
    check_model_gradients(&mut model, &ctx, &x, |out| {
        let l = mse_loss(out, &target, Some(&mask)).unwrap();
        (l.value, l.grad)
    });
}
