use cirstag_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::RngExt;

/// A trainable parameter: value plus accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: DenseMatrix,
    /// Gradient accumulated by the most recent backward pass.
    pub grad: DenseMatrix,
}

impl Param {
    /// Creates a zero-initialized parameter of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Param {
            value: DenseMatrix::zeros(rows, cols),
            grad: DenseMatrix::zeros(rows, cols),
        }
    }

    /// Glorot/Xavier-uniform initialization: entries uniform in
    /// `±√(6 / (fan_in + fan_out))`.
    pub fn glorot(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let mut value = DenseMatrix::zeros(rows, cols);
        for v in value.as_mut_slice() {
            *v = rng.random_range(-limit..limit);
        }
        Param {
            grad: DenseMatrix::zeros(rows, cols),
            value,
        }
    }

    /// Resets the gradient to zero.
    pub fn zero_grad(&mut self) {
        for g in self.grad.as_mut_slice() {
            *g = 0.0;
        }
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        self.value.nrows() * self.value.ncols()
    }

    /// Returns `true` when the parameter holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` when value and gradient are both finite everywhere.
    pub fn all_finite(&self) -> bool {
        self.value.all_finite() && self.grad.all_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn glorot_within_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = Param::glorot(10, 20, &mut rng);
        let limit = (6.0 / 30.0_f64).sqrt();
        assert!(p.value.as_slice().iter().all(|v| v.abs() <= limit));
        assert!(p.value.as_slice().iter().any(|v| *v != 0.0));
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::zeros(2, 2);
        p.grad.set(0, 0, 5.0);
        p.zero_grad();
        assert_eq!(p.grad.get(0, 0), 0.0);
    }

    #[test]
    fn len_counts_entries() {
        let p = Param::zeros(3, 4);
        assert_eq!(p.len(), 12);
        assert!(!p.is_empty());
        assert!(Param::zeros(0, 0).is_empty());
    }
}
