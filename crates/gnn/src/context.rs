use crate::GnnError;
use cirstag_graph::Graph;
use cirstag_linalg::{CooMatrix, CsrMatrix};

/// Directed-DAG structure for [`crate::DagPropLayer`]: topological order and
/// per-node fanin lists.
#[derive(Debug, Clone)]
pub struct DagInfo {
    /// Node ids in topological order (sources first).
    pub topo: Vec<usize>,
    /// `fanin[p]` = direct predecessors of `p`.
    pub fanin: Vec<Vec<usize>>,
}

/// Pre-computed message-passing structures for a fixed graph.
///
/// Building the context once and sharing it across layers/epochs keeps the
/// per-iteration cost at one sparse product per layer:
///
/// - `norm_adj` is the GCN propagation matrix
///   `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` (self-loops added, symmetric).
/// - `mean_adj` is the row-normalized adjacency `D^{-1} A` used by the
///   GraphSAGE mean aggregator (no self-loops; the layer has a separate
///   self-weight).
/// - `neighbors` are adjacency lists *including self-loops*, used by the
///   attention (GAT) layer.
#[derive(Debug, Clone)]
pub struct GraphContext {
    num_nodes: usize,
    norm_adj: CsrMatrix,
    mean_adj: CsrMatrix,
    neighbors: Vec<Vec<usize>>,
    dag: Option<DagInfo>,
}

impl GraphContext {
    /// Builds the context for `g` (edge weights are honoured in all three
    /// structures).
    pub fn new(g: &Graph) -> Self {
        let n = g.num_nodes();
        // Â with self-loops.
        let mut deg = vec![1.0f64; n]; // self-loop contributes 1
        for e in g.edges() {
            deg[e.u] += e.weight;
            deg[e.v] += e.weight;
        }
        let inv_sqrt: Vec<f64> = deg.iter().map(|d| 1.0 / d.sqrt()).collect();
        let mut coo = CooMatrix::with_capacity(n, n, n + 2 * g.num_edges());
        for i in 0..n {
            coo.push(i, i, inv_sqrt[i] * inv_sqrt[i]).expect("diag"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized from the validated graph, so push indices are always in bounds
        }
        for e in g.edges() {
            let w = e.weight * inv_sqrt[e.u] * inv_sqrt[e.v];
            coo.push(e.u, e.v, w).expect("edge"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized from the validated graph, so push indices are always in bounds
            coo.push(e.v, e.u, w).expect("edge"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized from the validated graph, so push indices are always in bounds
        }
        let norm_adj = coo.to_csr();

        // Row-normalized adjacency (mean aggregator).
        let mut coo = CooMatrix::with_capacity(n, n, 2 * g.num_edges());
        for i in 0..n {
            let d = g.degree(i);
            if d > 0.0 {
                for (j, w) in g.neighbors(i) {
                    coo.push(i, j, w / d).expect("edge"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized from the validated graph, so push indices are always in bounds
                }
            }
        }
        let mean_adj = coo.to_csr();

        // Attention adjacency lists with self-loops.
        let mut neighbors: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        for e in g.edges() {
            neighbors[e.u].push(e.v);
            neighbors[e.v].push(e.u);
        }

        GraphContext {
            num_nodes: n,
            norm_adj,
            mean_adj,
            neighbors,
            dag: None,
        }
    }

    /// Builds the context *with* directed-DAG structure so that
    /// [`crate::DagPropLayer`] can propagate along `arcs` (e.g. timing arcs).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidArgument`] when an arc endpoint is out of
    /// bounds or the arcs contain a cycle.
    pub fn with_dag(g: &Graph, arcs: &[(usize, usize)]) -> Result<Self, GnnError> {
        let mut ctx = GraphContext::new(g);
        let n = ctx.num_nodes;
        let mut fanin: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut fanout: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(from, to) in arcs {
            if from >= n || to >= n {
                return Err(GnnError::InvalidArgument {
                    reason: format!("arc ({from}, {to}) out of bounds for {n} nodes"),
                });
            }
            fanin[to].push(from);
            fanout[from].push(to);
        }
        // Kahn topological sort.
        let mut indegree: Vec<usize> = fanin.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&p| indegree[p] == 0).collect();
        let mut topo = Vec::with_capacity(n);
        while let Some(p) = queue.pop() {
            topo.push(p);
            for &t in &fanout[p] {
                indegree[t] -= 1;
                if indegree[t] == 0 {
                    queue.push(t);
                }
            }
        }
        if topo.len() != n {
            return Err(GnnError::InvalidArgument {
                reason: "dag arcs contain a cycle".to_string(),
            });
        }
        ctx.dag = Some(DagInfo { topo, fanin });
        Ok(ctx)
    }

    /// The DAG structure, when built with [`GraphContext::with_dag`].
    pub fn dag(&self) -> Option<&DagInfo> {
        self.dag.as_ref()
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The symmetric GCN propagation matrix `Â`.
    #[inline]
    pub fn norm_adj(&self) -> &CsrMatrix {
        &self.norm_adj
    }

    /// The row-normalized mean-aggregation matrix `D⁻¹A`.
    #[inline]
    pub fn mean_adj(&self) -> &CsrMatrix {
        &self.mean_adj
    }

    /// Adjacency lists including self-loops (for attention layers).
    #[inline]
    pub fn neighbors(&self) -> &[Vec<usize>] {
        &self.neighbors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap()
    }

    #[test]
    fn norm_adj_is_symmetric_with_unit_spectral_radius() {
        let ctx = GraphContext::new(&path3());
        assert!(ctx.norm_adj().is_symmetric(1e-12));
        // Spectral radius of Â is 1: after convergence the power-iteration
        // growth ratio must not exceed 1.
        let mut x = vec![1.0, 0.7, 0.4];
        for _ in 0..30 {
            x = ctx.norm_adj().mul_vec(&x);
        }
        let before: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
        let after: f64 = {
            let y = ctx.norm_adj().mul_vec(&x);
            y.iter().map(|v| v * v).sum::<f64>().sqrt()
        };
        assert!(after <= before * (1.0 + 1e-9), "ratio {}", after / before);
    }

    #[test]
    fn mean_adj_rows_sum_to_one() {
        let ctx = GraphContext::new(&path3());
        for i in 0..3 {
            let (_, vals) = ctx.mean_adj().row(i);
            let s: f64 = vals.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "row {i} sums to {s}");
        }
    }

    #[test]
    fn neighbors_include_self() {
        let ctx = GraphContext::new(&path3());
        assert!(ctx.neighbors()[0].contains(&0));
        assert!(ctx.neighbors()[0].contains(&1));
        assert_eq!(ctx.neighbors()[1].len(), 3); // self + two neighbors
    }

    #[test]
    fn isolated_node_handled() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        let ctx = GraphContext::new(&g);
        assert_eq!(ctx.neighbors()[2], vec![2]);
        let y = ctx.norm_adj().mul_vec(&[0.0, 0.0, 1.0]);
        assert!((y[2] - 1.0).abs() < 1e-12); // self-loop only
    }
}
