//! Evaluation metrics used by the case studies.

use cirstag_linalg::{vecops, DenseMatrix};

/// Coefficient of determination `R² = 1 − SS_res / SS_tot` between the first
/// columns of two single-column matrices (or element-wise over all entries
/// for multi-column inputs). Returns `1.0` for a perfect fit and can be
/// negative for fits worse than the mean predictor.
///
/// # Panics
///
/// Panics if the shapes differ or the inputs are empty.
pub fn r2_score(prediction: &DenseMatrix, target: &DenseMatrix) -> f64 {
    assert_eq!(prediction.shape(), target.shape(), "r2 shape mismatch");
    let t = target.as_slice();
    let p = prediction.as_slice();
    assert!(!t.is_empty(), "r2 on empty input");
    let mean = vecops::mean(t);
    let ss_tot: f64 = t.iter().map(|v| (v - mean) * (v - mean)).sum();
    let ss_res: f64 = p.iter().zip(t).map(|(a, b)| (a - b) * (a - b)).sum();
    // cirstag-lint: allow(float-discipline) -- exact-zero variance is the degenerate case of the R-squared definition
    if ss_tot == 0.0 {
        // cirstag-lint: allow(float-discipline) -- exact-zero residual on zero-variance targets defines R-squared = 1
        if ss_res == 0.0 {
            1.0
        } else {
            f64::NEG_INFINITY
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Classification accuracy from logits: fraction of rows whose argmax equals
/// the label.
///
/// # Panics
///
/// Panics if `labels.len() != logits.nrows()`.
pub fn accuracy(logits: &DenseMatrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.nrows(), labels.len(), "accuracy length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|&(i, &l)| argmax(logits.row(i)) == l)
        .count();
    correct as f64 / labels.len() as f64
}

/// Macro-averaged F1 score from logits: per-class F1 averaged uniformly over
/// the classes present in `labels` or predictions.
///
/// # Panics
///
/// Panics if `labels.len() != logits.nrows()`.
pub fn f1_macro(logits: &DenseMatrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.nrows(), labels.len(), "f1 length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let num_classes = logits.ncols();
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnn = vec![0usize; num_classes];
    for (i, &l) in labels.iter().enumerate() {
        let pred = argmax(logits.row(i));
        if pred == l {
            tp[l] += 1;
        } else {
            fp[pred] += 1;
            fnn[l] += 1;
        }
    }
    let mut total = 0.0;
    let mut classes = 0usize;
    for c in 0..num_classes {
        if tp[c] + fp[c] + fnn[c] == 0 {
            continue; // class absent from both labels and predictions
        }
        classes += 1;
        let denom = 2 * tp[c] + fp[c] + fnn[c];
        if denom > 0 {
            total += 2.0 * tp[c] as f64 / denom as f64;
        }
    }
    if classes == 0 {
        0.0
    } else {
        total / classes as f64
    }
}

/// Mean per-row cosine similarity between two embedding matrices — the
/// metric Case Study B uses to quantify embedding drift under topology
/// perturbations.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn mean_row_cosine(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
    assert_eq!(a.shape(), b.shape(), "cosine shape mismatch");
    let n = a.nrows();
    if n == 0 {
        return 0.0;
    }
    (0..n)
        .map(|i| vecops::cosine_similarity(a.row(i), b.row(i)))
        .sum::<f64>()
        / n as f64
}

fn argmax(row: &[f64]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2_perfect_and_mean_predictor() {
        let t = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        assert_eq!(r2_score(&t, &t), 1.0);
        let mean_pred = DenseMatrix::from_rows(&[vec![2.0], vec![2.0], vec![2.0]]).unwrap();
        assert!(r2_score(&mean_pred, &t).abs() < 1e-12);
    }

    #[test]
    fn r2_negative_for_bad_fit() {
        let t = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let p = DenseMatrix::from_rows(&[vec![10.0], vec![-10.0]]).unwrap();
        assert!(r2_score(&p, &t) < 0.0);
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits =
            DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![0.9, 0.1]]).unwrap();
        assert!((accuracy(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn f1_macro_perfect_is_one() {
        let logits = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!((f1_macro(&logits, &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f1_macro_penalizes_minority_errors_more_than_accuracy() {
        // 9 correct majority predictions, 1 wrong minority prediction.
        let mut rows = vec![vec![1.0, 0.0]; 9];
        rows.push(vec![1.0, 0.0]); // minority node predicted as majority
        let logits = DenseMatrix::from_rows(&rows).unwrap();
        let mut labels = vec![0usize; 9];
        labels.push(1);
        let acc = accuracy(&logits, &labels);
        let f1 = f1_macro(&logits, &labels);
        assert!(acc > 0.89);
        assert!(f1 < acc, "f1 {f1} should be below accuracy {acc}");
    }

    #[test]
    fn f1_ignores_absent_classes() {
        // Three logit columns but only classes 0 and 1 occur.
        let logits = DenseMatrix::from_rows(&[vec![1.0, 0.0, -1.0], vec![0.0, 1.0, -1.0]]).unwrap();
        assert!((f1_macro(&logits, &[0, 1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_identical_rows() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert!((mean_row_cosine(&a, &a) - 1.0).abs() < 1e-12);
        let b = a.scaled(-1.0);
        assert!((mean_row_cosine(&a, &b) + 1.0).abs() < 1e-12);
    }
}
