use std::error::Error;
use std::fmt;

/// Error type for GNN construction and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GnnError {
    /// An underlying linear-algebra operation failed.
    Linalg(cirstag_linalg::LinalgError),
    /// Input/layer dimensions disagree.
    DimensionMismatch {
        /// What was being computed.
        context: &'static str,
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// Training diverged (non-finite loss or parameters).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
    /// An argument was invalid.
    InvalidArgument {
        /// Description of the violated requirement.
        reason: String,
    },
    /// `backward` was called before `forward` on a layer.
    BackwardBeforeForward {
        /// Name of the offending layer.
        layer: &'static str,
    },
}

impl fmt::Display for GnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GnnError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            GnnError::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            GnnError::Diverged { epoch } => write!(f, "training diverged at epoch {epoch}"),
            GnnError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
            GnnError::BackwardBeforeForward { layer } => {
                write!(f, "backward called before forward on {layer} layer")
            }
        }
    }
}

impl Error for GnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GnnError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cirstag_linalg::LinalgError> for GnnError {
    fn from(e: cirstag_linalg::LinalgError) -> Self {
        GnnError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = GnnError::DimensionMismatch {
            context: "gcn forward",
            expected: 8,
            actual: 4,
        };
        assert!(e.to_string().contains("gcn forward"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GnnError>();
    }
}
