//! Sequential GNN models and training loops.

use crate::layers::{
    DagPropLayer, DropoutLayer, GatLayer, GcnLayer, Layer, LinearLayer, SageLayer,
};
use crate::{cross_entropy_loss, mse_loss, Activation, Adam, GnnError, GraphContext, Param};
use cirstag_linalg::DenseMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Declarative layer description used by [`GnnModel::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LayerSpec {
    /// Graph convolution (`GcnLayer`).
    Gcn {
        /// Output width.
        dim: usize,
        /// Activation applied after aggregation.
        activation: Activation,
    },
    /// Graph attention (`GatLayer`); output width is `num_heads · head_dim`.
    Gat {
        /// Per-head output width.
        head_dim: usize,
        /// Number of attention heads (concatenated).
        num_heads: usize,
        /// Activation applied per head.
        activation: Activation,
    },
    /// GraphSAGE with mean aggregation (`SageLayer`).
    Sage {
        /// Output width.
        dim: usize,
        /// Activation.
        activation: Activation,
    },
    /// DAG propagation (`DagPropLayer`); requires a `with_dag` context.
    DagProp {
        /// Output width.
        dim: usize,
        /// Activation.
        activation: Activation,
    },
    /// Per-node dense layer (`LinearLayer`).
    Linear {
        /// Output width.
        dim: usize,
        /// Activation.
        activation: Activation,
    },
    /// Inverted dropout (identity at inference).
    Dropout {
        /// Drop probability in `[0, 1)`.
        p: f64,
    },
}

/// Options for the built-in training loops.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of full-graph gradient steps.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Decoupled weight decay (0 disables).
    pub weight_decay: f64,
    /// Global-norm gradient clip (0 disables).
    pub clip_norm: f64,
    /// Early stopping: halt when the loss has not improved by at least 0.1%
    /// (relative) for this many consecutive epochs (`None` disables).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            learning_rate: 1e-2,
            weight_decay: 0.0,
            clip_norm: 5.0,
            patience: None,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Loss after each epoch.
    pub losses: Vec<f64>,
    /// Final loss value.
    pub final_loss: f64,
}

/// A sequential graph neural network.
///
/// Layers share one [`GraphContext`]; the model exposes per-layer hidden
/// activations so CirSTAG can use the penultimate layer as the "output
/// embedding matrix" of Phase 1.
pub struct GnnModel {
    layers: Vec<Box<dyn Layer>>,
    input_dim: usize,
}

impl std::fmt::Debug for GnnModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("GnnModel")
            .field("input_dim", &self.input_dim)
            .field("layers", &names)
            .finish()
    }
}

impl GnnModel {
    /// Builds a model from layer specs with Glorot initialization seeded by
    /// `seed` (fully deterministic).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidArgument`] for empty specs or zero widths.
    pub fn new(input_dim: usize, specs: &[LayerSpec], seed: u64) -> Result<Self, GnnError> {
        if specs.is_empty() {
            return Err(GnnError::InvalidArgument {
                reason: "a model needs at least one layer".to_string(),
            });
        }
        if input_dim == 0 {
            return Err(GnnError::InvalidArgument {
                reason: "input dimension must be positive".to_string(),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(specs.len());
        let mut dim = input_dim;
        for (idx, spec) in specs.iter().enumerate() {
            match *spec {
                LayerSpec::Gcn {
                    dim: out,
                    activation,
                } => {
                    check_width(out)?;
                    layers.push(Box::new(GcnLayer::new(dim, out, activation, &mut rng)));
                    dim = out;
                }
                LayerSpec::Gat {
                    head_dim,
                    num_heads,
                    activation,
                } => {
                    check_width(head_dim)?;
                    if num_heads == 0 {
                        return Err(GnnError::InvalidArgument {
                            reason: "gat needs at least one head".to_string(),
                        });
                    }
                    layers.push(Box::new(GatLayer::new(
                        dim, head_dim, num_heads, activation, &mut rng,
                    )));
                    dim = head_dim * num_heads;
                }
                LayerSpec::Sage {
                    dim: out,
                    activation,
                } => {
                    check_width(out)?;
                    layers.push(Box::new(SageLayer::new(dim, out, activation, &mut rng)));
                    dim = out;
                }
                LayerSpec::DagProp {
                    dim: out,
                    activation,
                } => {
                    check_width(out)?;
                    layers.push(Box::new(DagPropLayer::new(dim, out, activation, &mut rng)));
                    dim = out;
                }
                LayerSpec::Linear {
                    dim: out,
                    activation,
                } => {
                    check_width(out)?;
                    layers.push(Box::new(LinearLayer::new(dim, out, activation, &mut rng)));
                    dim = out;
                }
                LayerSpec::Dropout { p } => {
                    if !(0.0..1.0).contains(&p) {
                        return Err(GnnError::InvalidArgument {
                            reason: format!("dropout probability {p} must be in [0, 1)"),
                        });
                    }
                    layers.push(Box::new(DropoutLayer::new(
                        dim,
                        p,
                        seed.wrapping_add(idx as u64 + 1),
                    )));
                }
            }
        }
        Ok(GnnModel { layers, input_dim })
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output width of the final layer.
    pub fn output_dim(&self) -> usize {
        self.layers
            .last()
            .map_or(self.input_dim, |l| l.output_dim())
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .map(|p| p.len())
            .sum()
    }

    /// Runs the forward pass; `training` enables dropout.
    ///
    /// # Errors
    ///
    /// Propagates layer dimension errors.
    pub fn forward(
        &mut self,
        ctx: &GraphContext,
        x: &DenseMatrix,
        training: bool,
    ) -> Result<DenseMatrix, GnnError> {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, ctx, training)?;
        }
        Ok(h)
    }

    /// Runs the forward pass, returning the output of every layer
    /// (`result[i]` is layer `i`'s output).
    ///
    /// # Errors
    ///
    /// Propagates layer dimension errors.
    pub fn forward_all(
        &mut self,
        ctx: &GraphContext,
        x: &DenseMatrix,
    ) -> Result<Vec<DenseMatrix>, GnnError> {
        let mut outputs = Vec::with_capacity(self.layers.len());
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, ctx, false)?;
            outputs.push(h.clone());
        }
        Ok(outputs)
    }

    /// The node-embedding matrix CirSTAG treats as the GNN's output manifold
    /// data: the activation of the *penultimate* layer (skipping dropout),
    /// or the final output for single-layer models.
    ///
    /// # Errors
    ///
    /// Propagates layer dimension errors.
    pub fn embeddings(
        &mut self,
        ctx: &GraphContext,
        x: &DenseMatrix,
    ) -> Result<DenseMatrix, GnnError> {
        let outputs = self.forward_all(ctx, x)?;
        // Walk backwards past the head and any dropout layers.
        let names: Vec<&'static str> = self.layers.iter().map(|l| l.name()).collect();
        let mut idx = names.len().saturating_sub(1);
        if idx > 0 {
            idx -= 1; // skip the output head
            while idx > 0 && names[idx] == "dropout" {
                idx -= 1;
            }
        }
        Ok(outputs[idx].clone())
    }

    /// Back-propagates ∂loss/∂output through all layers, accumulating
    /// parameter gradients.
    ///
    /// # Errors
    ///
    /// Propagates layer errors (e.g. backward before forward).
    pub fn backward(
        &mut self,
        grad_output: &DenseMatrix,
        ctx: &GraphContext,
    ) -> Result<DenseMatrix, GnnError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g, ctx)?;
        }
        Ok(g)
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Stable-order mutable access to every parameter.
    pub fn parameters(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.parameters())
            .collect()
    }

    /// Trains the model on a node-regression task with MSE loss.
    ///
    /// # Errors
    ///
    /// - Propagates loss/layer errors.
    /// - [`GnnError::Diverged`] when the loss becomes non-finite.
    pub fn fit_regression(
        &mut self,
        ctx: &GraphContext,
        x: &DenseMatrix,
        targets: &DenseMatrix,
        mask: Option<&[bool]>,
        config: &TrainConfig,
    ) -> Result<TrainReport, GnnError> {
        let mut adam = Adam::new(config.learning_rate);
        adam.weight_decay = config.weight_decay;
        adam.clip_norm = config.clip_norm;
        let mut losses = Vec::with_capacity(config.epochs);
        let mut best = f64::INFINITY;
        let mut since_best = 0usize;
        for epoch in 0..config.epochs {
            self.zero_grad();
            let pred = self.forward(ctx, x, true)?;
            let loss = mse_loss(&pred, targets, mask)?;
            if !loss.value.is_finite() {
                return Err(GnnError::Diverged { epoch });
            }
            self.backward(&loss.grad, ctx)?;
            adam.step(&mut self.parameters());
            losses.push(loss.value);
            if let Some(patience) = config.patience {
                if loss.value < best * 0.999 {
                    best = loss.value;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= patience {
                        break;
                    }
                }
            }
        }
        let final_loss = losses.last().copied().unwrap_or(f64::NAN); // cirstag-lint: allow(float-discipline) -- NaN marks a zero-epoch run in TrainReport; the JSON exporter rejects it if serialized
        Ok(TrainReport { losses, final_loss })
    }

    /// Trains the model on a node-classification task with softmax
    /// cross-entropy.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GnnModel::fit_regression`].
    pub fn fit_classification(
        &mut self,
        ctx: &GraphContext,
        x: &DenseMatrix,
        labels: &[usize],
        mask: Option<&[bool]>,
        config: &TrainConfig,
    ) -> Result<TrainReport, GnnError> {
        let mut adam = Adam::new(config.learning_rate);
        adam.weight_decay = config.weight_decay;
        adam.clip_norm = config.clip_norm;
        let mut losses = Vec::with_capacity(config.epochs);
        let mut best = f64::INFINITY;
        let mut since_best = 0usize;
        for epoch in 0..config.epochs {
            self.zero_grad();
            let logits = self.forward(ctx, x, true)?;
            let loss = cross_entropy_loss(&logits, labels, mask)?;
            if !loss.value.is_finite() {
                return Err(GnnError::Diverged { epoch });
            }
            self.backward(&loss.grad, ctx)?;
            adam.step(&mut self.parameters());
            losses.push(loss.value);
            if let Some(patience) = config.patience {
                if loss.value < best * 0.999 {
                    best = loss.value;
                    since_best = 0;
                } else {
                    since_best += 1;
                    if since_best >= patience {
                        break;
                    }
                }
            }
        }
        let final_loss = losses.last().copied().unwrap_or(f64::NAN); // cirstag-lint: allow(float-discipline) -- NaN marks a zero-epoch run in TrainReport; the JSON exporter rejects it if serialized
        Ok(TrainReport { losses, final_loss })
    }
}

fn check_width(dim: usize) -> Result<(), GnnError> {
    if dim == 0 {
        Err(GnnError::InvalidArgument {
            reason: "layer width must be positive".to_string(),
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accuracy, r2_score};
    use cirstag_graph::Graph;

    fn ring(n: usize) -> GraphContext {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        GraphContext::new(&Graph::from_edges(n, &edges).unwrap())
    }

    #[test]
    fn model_construction_and_dims() {
        let mut m = GnnModel::new(
            4,
            &[
                LayerSpec::Gcn {
                    dim: 8,
                    activation: Activation::Relu,
                },
                LayerSpec::Dropout { p: 0.1 },
                LayerSpec::Linear {
                    dim: 2,
                    activation: Activation::Identity,
                },
            ],
            1,
        )
        .unwrap();
        assert_eq!(m.input_dim(), 4);
        assert_eq!(m.output_dim(), 2);
        assert_eq!(m.num_layers(), 3);
        assert!(m.num_parameters() > 0);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(GnnModel::new(4, &[], 0).is_err());
        assert!(GnnModel::new(0, &[LayerSpec::Dropout { p: 0.1 }], 0).is_err());
        assert!(GnnModel::new(
            4,
            &[LayerSpec::Gcn {
                dim: 0,
                activation: Activation::Relu
            }],
            0
        )
        .is_err());
        assert!(GnnModel::new(4, &[LayerSpec::Dropout { p: 1.5 }], 0).is_err());
    }

    #[test]
    fn regression_overfits_small_problem() {
        let ctx = ring(8);
        let x = DenseMatrix::from_rows(
            &(0..8)
                .map(|i| vec![(i as f64) / 8.0, ((i * 3) % 5) as f64])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let y = DenseMatrix::from_rows(&(0..8).map(|i| vec![(i as f64).sin()]).collect::<Vec<_>>())
            .unwrap();
        let mut model = GnnModel::new(
            2,
            &[
                LayerSpec::Gcn {
                    dim: 16,
                    activation: Activation::Tanh,
                },
                LayerSpec::Linear {
                    dim: 1,
                    activation: Activation::Identity,
                },
            ],
            42,
        )
        .unwrap();
        let cfg = TrainConfig {
            epochs: 400,
            learning_rate: 2e-2,
            ..TrainConfig::default()
        };
        let report = model.fit_regression(&ctx, &x, &y, None, &cfg).unwrap();
        assert!(
            report.final_loss < report.losses[0] / 5.0,
            "loss did not drop"
        );
        let pred = model.forward(&ctx, &x, false).unwrap();
        assert!(r2_score(&pred, &y) > 0.8, "r2 {}", r2_score(&pred, &y));
    }

    #[test]
    fn classification_learns_two_clusters() {
        // Two rings joined by one edge; features distinguish the rings.
        let mut edges = Vec::new();
        for i in 0..6 {
            edges.push((i, (i + 1) % 6, 1.0));
        }
        for i in 0..6 {
            edges.push((6 + i, 6 + (i + 1) % 6, 1.0));
        }
        edges.push((0, 6, 0.1));
        let ctx = GraphContext::new(&Graph::from_edges(12, &edges).unwrap());
        let x = DenseMatrix::from_rows(
            &(0..12)
                .map(|i| vec![if i < 6 { 1.0 } else { -1.0 }, (i % 3) as f64 * 0.1])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let labels: Vec<usize> = (0..12).map(|i| usize::from(i >= 6)).collect();
        let mut model = GnnModel::new(
            2,
            &[
                LayerSpec::Sage {
                    dim: 8,
                    activation: Activation::Relu,
                },
                LayerSpec::Linear {
                    dim: 2,
                    activation: Activation::Identity,
                },
            ],
            7,
        )
        .unwrap();
        let cfg = TrainConfig {
            epochs: 300,
            learning_rate: 2e-2,
            ..TrainConfig::default()
        };
        model
            .fit_classification(&ctx, &x, &labels, None, &cfg)
            .unwrap();
        let logits = model.forward(&ctx, &x, false).unwrap();
        assert!(accuracy(&logits, &labels) > 0.9);
    }

    #[test]
    fn gat_model_trains() {
        let ctx = ring(10);
        let x = DenseMatrix::from_rows(&(0..10).map(|i| vec![i as f64 / 10.0]).collect::<Vec<_>>())
            .unwrap();
        let y = x.clone();
        let mut model = GnnModel::new(
            1,
            &[
                LayerSpec::Gat {
                    head_dim: 4,
                    num_heads: 2,
                    activation: Activation::Elu,
                },
                LayerSpec::Linear {
                    dim: 1,
                    activation: Activation::Identity,
                },
            ],
            3,
        )
        .unwrap();
        let cfg = TrainConfig {
            epochs: 200,
            learning_rate: 1e-2,
            ..TrainConfig::default()
        };
        let report = model.fit_regression(&ctx, &x, &y, None, &cfg).unwrap();
        assert!(report.final_loss < report.losses[0]);
    }

    #[test]
    fn embeddings_are_penultimate_activations() {
        let ctx = ring(6);
        let x = DenseMatrix::zeros(6, 3);
        let mut model = GnnModel::new(
            3,
            &[
                LayerSpec::Gcn {
                    dim: 5,
                    activation: Activation::Relu,
                },
                LayerSpec::Dropout { p: 0.2 },
                LayerSpec::Linear {
                    dim: 1,
                    activation: Activation::Identity,
                },
            ],
            0,
        )
        .unwrap();
        let emb = model.embeddings(&ctx, &x).unwrap();
        assert_eq!(emb.ncols(), 5); // skips dropout and the head
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let ctx = ring(6);
        let x =
            DenseMatrix::from_rows(&(0..6).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap();
        let y = x.clone();
        let build = || {
            GnnModel::new(
                1,
                &[
                    LayerSpec::Gcn {
                        dim: 4,
                        activation: Activation::Tanh,
                    },
                    LayerSpec::Linear {
                        dim: 1,
                        activation: Activation::Identity,
                    },
                ],
                99,
            )
            .unwrap()
        };
        let cfg = TrainConfig {
            epochs: 50,
            ..TrainConfig::default()
        };
        let mut m1 = build();
        let r1 = m1.fit_regression(&ctx, &x, &y, None, &cfg).unwrap();
        let mut m2 = build();
        let r2 = m2.fit_regression(&ctx, &x, &y, None, &cfg).unwrap();
        assert_eq!(r1.final_loss, r2.final_loss);
    }

    #[test]
    fn early_stopping_halts_on_plateau() {
        let ctx = ring(6);
        let x =
            DenseMatrix::from_rows(&(0..6).map(|i| vec![i as f64]).collect::<Vec<_>>()).unwrap();
        // Constant targets: loss bottoms out almost immediately.
        let y = DenseMatrix::zeros(6, 1);
        let mut model = GnnModel::new(
            1,
            &[LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            }],
            2,
        )
        .unwrap();
        let report = model
            .fit_regression(
                &ctx,
                &x,
                &y,
                None,
                &TrainConfig {
                    epochs: 10_000,
                    learning_rate: 5e-2,
                    patience: Some(20),
                    ..TrainConfig::default()
                },
            )
            .unwrap();
        assert!(
            report.losses.len() < 10_000,
            "ran all {} epochs",
            report.losses.len()
        );
    }

    #[test]
    fn masked_training_ignores_unmasked_nodes() {
        let ctx = ring(4);
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0], vec![4.0]]).unwrap();
        let y = DenseMatrix::from_rows(&[vec![1.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let mask = [true, false, false, false];
        let mut model = GnnModel::new(
            1,
            &[LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            }],
            5,
        )
        .unwrap();
        let cfg = TrainConfig {
            epochs: 100,
            learning_rate: 5e-2,
            ..TrainConfig::default()
        };
        let report = model
            .fit_regression(&ctx, &x, &y, Some(&mask), &cfg)
            .unwrap();
        assert!(report.final_loss < 1e-2);
    }
}
