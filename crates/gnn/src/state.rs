//! Model-state (de)serialization — PyTorch-style state dicts.
//!
//! Architectures are code (rebuild with [`crate::GnnModel::new`]); the state
//! carries only parameter tensors, in the model's stable parameter order.

use crate::{GnnError, GnnModel};

/// Serializable snapshot of one parameter tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamState {
    /// Rows of the tensor.
    pub rows: usize,
    /// Columns of the tensor.
    pub cols: usize,
    /// Row-major values.
    pub data: Vec<f64>,
}

/// Serializable snapshot of a whole model's parameters.
///
/// # Example
///
/// ```
/// use cirstag_gnn::{Activation, GnnModel, LayerSpec, ModelState};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = [LayerSpec::Linear { dim: 3, activation: Activation::Relu }];
/// let mut trained = GnnModel::new(4, &spec, 7)?;
/// let json = trained.export_state().to_json()?;
///
/// let mut fresh = GnnModel::new(4, &spec, 0)?; // different init
/// fresh.import_state(&ModelState::from_json(&json)?)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// Parameter tensors in stable model order.
    pub params: Vec<ParamState>,
}

serde::impl_serde_struct!(ParamState { rows, cols, data });
serde::impl_serde_struct!(ModelState { params });

impl ModelState {
    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidArgument`] when serialization fails
    /// (practically unreachable for finite tensors).
    pub fn to_json(&self) -> Result<String, GnnError> {
        serde_json::to_string(self).map_err(|e| GnnError::InvalidArgument {
            reason: format!("state serialization failed: {e}"),
        })
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::InvalidArgument`] for malformed input.
    pub fn from_json(text: &str) -> Result<Self, GnnError> {
        serde_json::from_str(text).map_err(|e| GnnError::InvalidArgument {
            reason: format!("state deserialization failed: {e}"),
        })
    }
}

impl GnnModel {
    /// Snapshots every parameter tensor.
    pub fn export_state(&mut self) -> ModelState {
        let params = self
            .parameters()
            .iter()
            .map(|p| ParamState {
                rows: p.value.nrows(),
                cols: p.value.ncols(),
                data: p.value.as_slice().to_vec(),
            })
            .collect();
        ModelState { params }
    }

    /// Restores parameters from a snapshot taken from an identically-shaped
    /// model.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::DimensionMismatch`] when the parameter count or
    /// any tensor shape differs, and [`GnnError::InvalidArgument`] for
    /// non-finite values.
    pub fn import_state(&mut self, state: &ModelState) -> Result<(), GnnError> {
        let mut params = self.parameters();
        if params.len() != state.params.len() {
            return Err(GnnError::DimensionMismatch {
                context: "import_state (parameter count)",
                expected: params.len(),
                actual: state.params.len(),
            });
        }
        for (p, s) in params.iter().zip(&state.params) {
            if p.value.shape() != (s.rows, s.cols) || s.data.len() != s.rows * s.cols {
                return Err(GnnError::DimensionMismatch {
                    context: "import_state (tensor shape)",
                    expected: p.value.nrows() * p.value.ncols(),
                    actual: s.data.len(),
                });
            }
            if !s.data.iter().all(|v| v.is_finite()) {
                return Err(GnnError::InvalidArgument {
                    reason: "state contains non-finite values".to_string(),
                });
            }
        }
        for (p, s) in params.iter_mut().zip(&state.params) {
            p.value.as_mut_slice().copy_from_slice(&s.data);
            p.zero_grad();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, GraphContext, LayerSpec};
    use cirstag_graph::Graph;
    use cirstag_linalg::DenseMatrix;

    fn specs() -> Vec<LayerSpec> {
        vec![
            LayerSpec::Gcn {
                dim: 6,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 2,
                activation: Activation::Identity,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let ctx = GraphContext::new(&g);
        let x = DenseMatrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![0.5, 1.0, -1.0],
            vec![0.0, 0.0, 1.0],
            vec![2.0, -1.0, 0.0],
        ])
        .unwrap();
        let mut original = GnnModel::new(3, &specs(), 11).unwrap();
        let json = original.export_state().to_json().unwrap();
        let expect = original.forward(&ctx, &x, false).unwrap();

        let mut restored = GnnModel::new(3, &specs(), 999).unwrap();
        restored
            .import_state(&ModelState::from_json(&json).unwrap())
            .unwrap();
        let got = restored.forward(&ctx, &x, false).unwrap();
        assert!(expect.max_abs_diff(&got).unwrap() < 1e-15);
    }

    #[test]
    fn wrong_architecture_rejected() {
        let mut a = GnnModel::new(3, &specs(), 1).unwrap();
        let state = a.export_state();
        let mut b = GnnModel::new(
            3,
            &[LayerSpec::Linear {
                dim: 2,
                activation: Activation::Identity,
            }],
            1,
        )
        .unwrap();
        assert!(matches!(
            b.import_state(&state),
            Err(GnnError::DimensionMismatch { .. })
        ));
        let mut c = GnnModel::new(4, &specs(), 1).unwrap();
        assert!(c.import_state(&state).is_err());
    }

    #[test]
    fn non_finite_state_rejected() {
        let mut m = GnnModel::new(3, &specs(), 1).unwrap();
        let mut state = m.export_state();
        state.params[0].data[0] = f64::NAN;
        assert!(matches!(
            m.import_state(&state),
            Err(GnnError::InvalidArgument { .. })
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(ModelState::from_json("not json").is_err());
        assert!(ModelState::from_json("{\"params\": 3}").is_err());
    }
}
