//! A from-scratch graph-neural-network framework for the CirSTAG stack.
//!
//! The paper treats GNNs as black-box simulators of EDA tasks (pre-routing
//! timing prediction \[17\]; sub-circuit classification \[4\]). Since no Rust
//! GNN ecosystem exists at the fidelity we need, this crate implements one:
//!
//! - dense parameter tensors with manual, layer-local backpropagation
//!   (Caffe-style: each [`Layer`] caches its forward activations and
//!   produces input gradients on the way back — no global tape needed for
//!   the static architectures used here);
//! - message-passing layers: [`GcnLayer`] (Kipf–Welling), [`GatLayer`]
//!   (attention, multi-head), [`SageLayer`] (mean-aggregator GraphSAGE),
//!   plus [`LinearLayer`] and [`DropoutLayer`];
//! - losses ([`mse_loss`], [`cross_entropy_loss`]) with node masks;
//! - the [`Adam`] optimizer;
//! - metrics: [`r2_score`], [`accuracy`], [`f1_macro`],
//!   [`mean_row_cosine`].
//!
//! # Example
//!
//! ```
//! use cirstag_gnn::{GnnModel, GraphContext, LayerSpec, Activation, TrainConfig};
//! use cirstag_graph::Graph;
//! use cirstag_linalg::DenseMatrix;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])?;
//! let ctx = GraphContext::new(&g);
//! let x = DenseMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]])?;
//! let y = DenseMatrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]])?;
//! let mut model = GnnModel::new(
//!     1,
//!     &[LayerSpec::Gcn { dim: 8, activation: Activation::Relu },
//!       LayerSpec::Linear { dim: 1, activation: Activation::Identity }],
//!     7,
//! )?;
//! let cfg = TrainConfig { epochs: 200, ..TrainConfig::default() };
//! model.fit_regression(&ctx, &x, &y, None, &cfg)?;
//! let pred = model.forward(&ctx, &x, false)?;
//! assert_eq!(pred.shape(), (4, 1));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod context;
mod error;
mod layers;
mod loss;
mod metrics;
mod model;
mod optim;
mod param;
mod state;

pub use activation::Activation;
pub use context::{DagInfo, GraphContext};
pub use error::GnnError;
pub use layers::{DagPropLayer, DropoutLayer, GatLayer, GcnLayer, Layer, LinearLayer, SageLayer};
pub use loss::{cross_entropy_loss, mse_loss, LossValue};
pub use metrics::{accuracy, f1_macro, mean_row_cosine, r2_score};
pub use model::{GnnModel, LayerSpec, TrainConfig, TrainReport};
pub use optim::{Adam, Sgd};
pub use param::Param;
pub use state::{ModelState, ParamState};
