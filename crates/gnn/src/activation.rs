use cirstag_linalg::DenseMatrix;

/// Element-wise activation functions used by the layers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Activation {
    /// `f(x) = x` — used for output/regression heads.
    #[default]
    Identity,
    /// Rectified linear unit, `max(0, x)`.
    Relu,
    /// Leaky ReLU with the given negative slope (GAT convention is 0.2).
    LeakyRelu(f64),
    /// Hyperbolic tangent.
    Tanh,
    /// Exponential linear unit with α = 1.
    Elu,
}

impl Activation {
    /// Applies the activation element-wise, returning a new matrix.
    pub fn forward(&self, z: &DenseMatrix) -> DenseMatrix {
        let mut out = z.clone();
        for v in out.as_mut_slice() {
            *v = self.scalar(*v);
        }
        out
    }

    /// Applies the activation to a scalar.
    #[inline]
    pub fn scalar(&self, x: f64) -> f64 {
        match *self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(slope) => {
                if x >= 0.0 {
                    x
                } else {
                    slope * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Elu => {
                if x >= 0.0 {
                    x
                } else {
                    x.exp() - 1.0
                }
            }
        }
    }

    /// Derivative evaluated at pre-activation `x`.
    #[inline]
    pub fn derivative(&self, x: f64) -> f64 {
        match *self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(slope) => {
                if x >= 0.0 {
                    1.0
                } else {
                    slope
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Elu => {
                if x >= 0.0 {
                    1.0
                } else {
                    x.exp()
                }
            }
        }
    }

    /// Multiplies `grad` element-wise by the derivative at pre-activation
    /// `z`, in place — the chain-rule step shared by all layers.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn backward_inplace(&self, z: &DenseMatrix, grad: &mut DenseMatrix) {
        assert_eq!(z.shape(), grad.shape(), "activation backward shape"); // cirstag-lint: allow(error-hygiene) -- shape mismatch is a caller bug in the training loop, not runtime data; asserted eagerly
        if *self == Activation::Identity {
            return;
        }
        for (g, x) in grad.as_mut_slice().iter_mut().zip(z.as_slice()) {
            *g *= self.derivative(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff(act: Activation, x: f64) -> f64 {
        let h = 1e-6;
        (act.scalar(x + h) - act.scalar(x - h)) / (2.0 * h)
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let acts = [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu(0.2),
            Activation::Tanh,
            Activation::Elu,
        ];
        for act in acts {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let fd = finite_diff(act, x);
                let an = act.derivative(x);
                assert!((fd - an).abs() < 1e-5, "{act:?} at {x}: {an} vs {fd}");
            }
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let z = DenseMatrix::from_rows(&[vec![-1.0, 2.0]]).unwrap();
        let out = Activation::Relu.forward(&z);
        assert_eq!(out.row(0), &[0.0, 2.0]);
    }

    #[test]
    fn backward_inplace_applies_chain_rule() {
        let z = DenseMatrix::from_rows(&[vec![-1.0, 2.0]]).unwrap();
        let mut g = DenseMatrix::from_rows(&[vec![3.0, 3.0]]).unwrap();
        Activation::Relu.backward_inplace(&z, &mut g);
        assert_eq!(g.row(0), &[0.0, 3.0]);
    }

    #[test]
    fn identity_backward_is_noop() {
        let z = DenseMatrix::from_rows(&[vec![-1.0]]).unwrap();
        let mut g = DenseMatrix::from_rows(&[vec![7.0]]).unwrap();
        Activation::Identity.backward_inplace(&z, &mut g);
        assert_eq!(g.get(0, 0), 7.0);
    }
}
