//! Optimizers over [`Param`] collections.

use crate::Param;
use cirstag_linalg::DenseMatrix;

/// Adam optimizer (Kingma–Ba) with optional decoupled weight decay and
/// gradient clipping.
///
/// State (first/second moments) is keyed by parameter *position* in the
/// `Vec<&mut Param>` handed to [`Adam::step`], so the caller must pass
/// parameters in a stable order — [`crate::GnnModel`] guarantees this.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f64,
    /// First-moment decay (default 0.9).
    pub beta1: f64,
    /// Second-moment decay (default 0.999).
    pub beta2: f64,
    /// Numerical-stability constant (default 1e-8).
    pub epsilon: f64,
    /// Decoupled weight decay coefficient (0 disables).
    pub weight_decay: f64,
    /// Global-norm gradient clip (0 disables).
    pub clip_norm: f64,
    t: u64,
    m: Vec<DenseMatrix>,
    v: Vec<DenseMatrix>,
}

impl Adam {
    /// Creates an Adam optimizer with standard β values.
    pub fn new(learning_rate: f64) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.0,
            clip_norm: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one update using the gradients currently stored on `params`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        self.t += 1;
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| DenseMatrix::zeros(p.value.nrows(), p.value.ncols()))
                .collect();
            self.v = self.m.clone();
        }
        // Optional global-norm clipping.
        let mut scale = 1.0;
        if self.clip_norm > 0.0 {
            let total: f64 = params
                .iter()
                .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f64>())
                .sum::<f64>()
                .sqrt();
            if total > self.clip_norm {
                scale = self.clip_norm / total;
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, p) in params.iter_mut().enumerate() {
            // cirstag-lint: allow(error-hygiene) -- optimizer/parameter shape drift is a programming error; asserting avoids silent state corruption
            assert_eq!(
                p.value.shape(),
                self.m[idx].shape(),
                "parameter shape changed between Adam steps"
            );
            let m = self.m[idx].as_mut_slice();
            let v = self.v[idx].as_mut_slice();
            let grads = p.grad.as_slice().to_vec();
            for (k, val) in p.value.as_mut_slice().iter_mut().enumerate() {
                let g = grads[k] * scale + self.weight_decay * *val;
                m[k] = self.beta1 * m[k] + (1.0 - self.beta1) * g;
                v[k] = self.beta2 * v[k] + (1.0 - self.beta2) * g * g;
                let mhat = m[k] / bc1;
                let vhat = v[k] / bc2;
                *val -= self.learning_rate * mhat / (vhat.sqrt() + self.epsilon);
            }
        }
    }
}

/// Plain stochastic gradient descent with optional momentum and the same
/// decoupled weight decay / clipping knobs as [`Adam`]. Useful as a
/// baseline and for fine-tuning with a stable, tuned learning rate.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient (0 disables).
    pub momentum: f64,
    /// Decoupled weight decay coefficient (0 disables).
    pub weight_decay: f64,
    /// Global-norm gradient clip (0 disables).
    pub clip_norm: f64,
    velocity: Vec<DenseMatrix>,
}

impl Sgd {
    /// Creates a plain SGD optimizer (no momentum).
    pub fn new(learning_rate: f64) -> Self {
        Sgd {
            learning_rate,
            momentum: 0.0,
            weight_decay: 0.0,
            clip_norm: 0.0,
            velocity: Vec::new(),
        }
    }

    /// Applies one update using the gradients currently stored on `params`.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list changes shape between calls.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| DenseMatrix::zeros(p.value.nrows(), p.value.ncols()))
                .collect();
        }
        let mut scale = 1.0;
        if self.clip_norm > 0.0 {
            let total: f64 = params
                .iter()
                .map(|p| p.grad.as_slice().iter().map(|g| g * g).sum::<f64>())
                .sum::<f64>()
                .sqrt();
            if total > self.clip_norm {
                scale = self.clip_norm / total;
            }
        }
        for (idx, p) in params.iter_mut().enumerate() {
            // cirstag-lint: allow(error-hygiene) -- optimizer/parameter shape drift is a programming error; asserting avoids silent state corruption
            assert_eq!(
                p.value.shape(),
                self.velocity[idx].shape(),
                "parameter shape changed between SGD steps"
            );
            let v = self.velocity[idx].as_mut_slice();
            let grads = p.grad.as_slice().to_vec();
            for (k, val) in p.value.as_mut_slice().iter_mut().enumerate() {
                let g = grads[k] * scale + self.weight_decay * *val;
                v[k] = self.momentum * v[k] + g;
                *val -= self.learning_rate * v[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)² with Adam; must land near 3.
    #[test]
    fn converges_on_quadratic() {
        let mut p = Param::zeros(1, 1);
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (x - 3.0));
            adam.step(&mut [&mut p]);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-3);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut p = Param::zeros(1, 1);
        p.value.set(0, 0, 10.0);
        let mut adam = Adam::new(0.1);
        adam.weight_decay = 0.1;
        for _ in 0..200 {
            p.zero_grad(); // gradient is zero; only decay acts
            adam.step(&mut [&mut p]);
        }
        assert!(p.value.get(0, 0).abs() < 10.0);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let mut p = Param::zeros(1, 1);
        p.grad.set(0, 0, 1e9);
        let mut adam = Adam::new(0.1);
        adam.clip_norm = 1.0;
        adam.step(&mut [&mut p]);
        // With clipping, first Adam step magnitude is ≤ lr (bias-corrected).
        assert!(p.value.get(0, 0).abs() <= 0.2);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::zeros(1, 1);
        let mut sgd = Sgd::new(0.1);
        for _ in 0..300 {
            let x = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (x - 3.0));
            sgd.step(&mut [&mut p]);
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sgd_momentum_accelerates_along_valleys() {
        // On an ill-conditioned quadratic, momentum converges in fewer steps.
        let run = |momentum: f64| {
            let mut p = Param::zeros(1, 2);
            p.value.set(0, 0, 5.0);
            p.value.set(0, 1, 5.0);
            let mut sgd = Sgd::new(0.02);
            sgd.momentum = momentum;
            let mut steps = 0;
            for _ in 0..5000 {
                let x = p.value.get(0, 0);
                let y = p.value.get(0, 1);
                if x.abs() < 1e-3 && y.abs() < 1e-3 {
                    break;
                }
                p.grad.set(0, 0, 2.0 * x); // curvature 2
                p.grad.set(0, 1, 0.08 * y); // curvature 0.08
                sgd.step(&mut [&mut p]);
                steps += 1;
            }
            steps
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn handles_multiple_params() {
        let mut a = Param::zeros(2, 2);
        let mut b = Param::zeros(1, 3);
        let mut adam = Adam::new(0.05);
        for _ in 0..300 {
            for (i, v) in a.value.clone().as_slice().iter().enumerate() {
                a.grad.as_mut_slice()[i] = 2.0 * (v - 1.0);
            }
            for (i, v) in b.value.clone().as_slice().iter().enumerate() {
                b.grad.as_mut_slice()[i] = 2.0 * (v + 2.0);
            }
            adam.step(&mut [&mut a, &mut b]);
        }
        assert!(a.value.as_slice().iter().all(|v| (v - 1.0).abs() < 1e-2));
        assert!(b.value.as_slice().iter().all(|v| (v + 2.0).abs() < 1e-2));
    }
}
