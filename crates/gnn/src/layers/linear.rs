use crate::layers::Layer;
use crate::{Activation, GnnError, GraphContext, Param};
use cirstag_linalg::DenseMatrix;
use rand::rngs::StdRng;

/// A per-node dense layer: `H' = act(H W + b)`.
///
/// No message passing — used as embedding projections and output heads.
#[derive(Debug, Clone)]
pub struct LinearLayer {
    weight: Param,
    bias: Param,
    activation: Activation,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    input: DenseMatrix,
    pre_activation: DenseMatrix,
}

impl LinearLayer {
    /// Creates a Glorot-initialized layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        LinearLayer {
            weight: Param::glorot(in_dim, out_dim, rng),
            bias: Param::zeros(1, out_dim),
            activation,
            cache: None,
        }
    }

    fn in_dim(&self) -> usize {
        self.weight.value.nrows()
    }
}

impl Layer for LinearLayer {
    fn forward(
        &mut self,
        input: &DenseMatrix,
        _ctx: &GraphContext,
        _training: bool,
    ) -> Result<DenseMatrix, GnnError> {
        if input.ncols() != self.in_dim() {
            return Err(GnnError::DimensionMismatch {
                context: "linear forward",
                expected: self.in_dim(),
                actual: input.ncols(),
            });
        }
        let mut z = input.matmul(&self.weight.value)?;
        for i in 0..z.nrows() {
            let row = z.row_mut(i);
            for (v, b) in row.iter_mut().zip(self.bias.value.row(0)) {
                *v += b;
            }
        }
        let out = self.activation.forward(&z);
        self.cache = Some(Cache {
            input: input.clone(),
            pre_activation: z,
        });
        Ok(out)
    }

    fn backward(
        &mut self,
        grad_output: &DenseMatrix,
        _ctx: &GraphContext,
    ) -> Result<DenseMatrix, GnnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(GnnError::BackwardBeforeForward { layer: "linear" })?;
        let mut dz = grad_output.clone();
        self.activation
            .backward_inplace(&cache.pre_activation, &mut dz);
        // dW += Xᵀ dZ ; db += colsum dZ ; dX = dZ Wᵀ.
        let dw = cache.input.transpose().matmul(&dz)?;
        self.weight.grad = self.weight.grad.add(&dw)?;
        for i in 0..dz.nrows() {
            for j in 0..dz.ncols() {
                let cur = self.bias.grad.get(0, j);
                self.bias.grad.set(0, j, cur + dz.get(i, j));
            }
        }
        Ok(dz.matmul(&self.weight.value.transpose())?)
    }

    fn parameters(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_dim(&self) -> usize {
        self.weight.value.ncols()
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{check_input_gradient, check_param_gradients};
    use cirstag_graph::Graph;
    use rand::SeedableRng;

    fn setup() -> (GraphContext, DenseMatrix) {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let ctx = GraphContext::new(&g);
        let x =
            DenseMatrix::from_rows(&[vec![1.0, -0.5], vec![0.3, 0.8], vec![-1.2, 0.1]]).unwrap();
        (ctx, x)
    }

    #[test]
    fn forward_shape_and_bias() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = LinearLayer::new(2, 4, Activation::Identity, &mut rng);
        layer.bias.value.set(0, 0, 10.0);
        let out = layer.forward(&x, &ctx, false).unwrap();
        assert_eq!(out.shape(), (3, 4));
        // Bias flows straight through identity activation.
        let no_bias = x.matmul(&layer.weight.value).unwrap();
        assert!((out.get(0, 0) - no_bias.get(0, 0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = LinearLayer::new(2, 3, Activation::Tanh, &mut rng);
        check_input_gradient(&mut layer, &ctx, &x, 1e-4);
        check_param_gradients(&mut layer, &ctx, &x, 1e-4);
    }

    #[test]
    fn relu_gradients() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = LinearLayer::new(2, 3, Activation::Relu, &mut rng);
        check_input_gradient(&mut layer, &ctx, &x, 1e-4);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let (ctx, _) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = LinearLayer::new(5, 3, Activation::Identity, &mut rng);
        let bad = DenseMatrix::zeros(3, 2);
        assert!(matches!(
            layer.forward(&bad, &ctx, false),
            Err(GnnError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn backward_before_forward_rejected() {
        let (ctx, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = LinearLayer::new(2, 3, Activation::Identity, &mut rng);
        let g = DenseMatrix::zeros(3, 3);
        assert!(matches!(
            layer.backward(&g, &ctx),
            Err(GnnError::BackwardBeforeForward { .. })
        ));
    }
}
