use crate::layers::Layer;
use crate::{GnnError, GraphContext, Param};
use cirstag_linalg::DenseMatrix;

/// Inverted dropout: during training each entry is zeroed with probability
/// `p` and survivors are scaled by `1/(1−p)`; at inference the layer is the
/// identity. The mask stream is deterministic in the seed, so training runs
/// are reproducible.
#[derive(Debug, Clone)]
pub struct DropoutLayer {
    p: f64,
    state: u64,
    mask: Option<DenseMatrix>,
    dim: usize,
}

impl DropoutLayer {
    /// Creates a dropout layer for width `dim` with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn new(dim: usize, p: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0, 1)"
        );
        DropoutLayer {
            p,
            state: seed ^ 0x9e37_79b9_7f4a_7c15 | 1,
            mask: None,
            dim,
        }
    }

    fn next_uniform(&mut self) -> f64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        (self.state.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Layer for DropoutLayer {
    fn forward(
        &mut self,
        input: &DenseMatrix,
        _ctx: &GraphContext,
        training: bool,
    ) -> Result<DenseMatrix, GnnError> {
        // cirstag-lint: allow(float-discipline) -- exact-zero sentinel: p = 0.0 disables dropout entirely
        if !training || self.p == 0.0 {
            self.mask = None;
            return Ok(input.clone());
        }
        let keep = 1.0 - self.p;
        let mut mask = DenseMatrix::zeros(input.nrows(), input.ncols());
        for v in mask.as_mut_slice() {
            *v = if self.next_uniform() < self.p {
                0.0
            } else {
                1.0 / keep
            };
        }
        let mut out = input.clone();
        for (o, m) in out.as_mut_slice().iter_mut().zip(mask.as_slice()) {
            *o *= m;
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(
        &mut self,
        grad_output: &DenseMatrix,
        _ctx: &GraphContext,
    ) -> Result<DenseMatrix, GnnError> {
        match &self.mask {
            None => Ok(grad_output.clone()),
            Some(mask) => {
                let mut g = grad_output.clone();
                for (o, m) in g.as_mut_slice().iter_mut().zip(mask.as_slice()) {
                    *o *= m;
                }
                Ok(g)
            }
        }
    }

    fn parameters(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn output_dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> &'static str {
        "dropout"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirstag_graph::Graph;

    fn ctx() -> GraphContext {
        GraphContext::new(&Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap())
    }

    #[test]
    fn identity_at_inference() {
        let c = ctx();
        let mut layer = DropoutLayer::new(3, 0.5, 1);
        let x = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let out = layer.forward(&x, &c, false).unwrap();
        assert_eq!(out, x);
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let c = ctx();
        let mut layer = DropoutLayer::new(100, 0.4, 2);
        let x = DenseMatrix::from_vec(2, 100, vec![1.0; 200]).unwrap();
        let out = layer.forward(&x, &c, true).unwrap();
        let zeros = out.as_slice().iter().filter(|&&v| v == 0.0).count();
        assert!((zeros as f64 / 200.0 - 0.4).abs() < 0.12, "{zeros} zeros");
        // Survivors are scaled by 1/(1-p).
        let survivor = out.as_slice().iter().find(|&&v| v != 0.0).unwrap();
        assert!((survivor - 1.0 / 0.6).abs() < 1e-12);
    }

    #[test]
    fn backward_uses_same_mask() {
        let c = ctx();
        let mut layer = DropoutLayer::new(4, 0.5, 3);
        let x = DenseMatrix::from_vec(2, 4, vec![1.0; 8]).unwrap();
        let out = layer.forward(&x, &c, true).unwrap();
        let g = layer
            .backward(&DenseMatrix::from_vec(2, 4, vec![1.0; 8]).unwrap(), &c)
            .unwrap();
        // Gradient is zero exactly where the output was zeroed.
        for (o, gi) in out.as_slice().iter().zip(g.as_slice()) {
            assert_eq!(*o == 0.0, *gi == 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = DropoutLayer::new(2, 1.0, 0);
    }
}
