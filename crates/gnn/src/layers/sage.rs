use crate::layers::Layer;
use crate::{Activation, GnnError, GraphContext, Param};
use cirstag_linalg::DenseMatrix;
use rand::rngs::StdRng;

/// GraphSAGE layer with a mean aggregator:
/// `H' = act(H W_self + (D⁻¹A H) W_neigh + b)`.
#[derive(Debug, Clone)]
pub struct SageLayer {
    w_self: Param,
    w_neigh: Param,
    bias: Param,
    activation: Activation,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    input: DenseMatrix,
    /// `D⁻¹A H`.
    aggregated: DenseMatrix,
    pre_activation: DenseMatrix,
}

impl SageLayer {
    /// Creates a Glorot-initialized layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        SageLayer {
            w_self: Param::glorot(in_dim, out_dim, rng),
            w_neigh: Param::glorot(in_dim, out_dim, rng),
            bias: Param::zeros(1, out_dim),
            activation,
            cache: None,
        }
    }

    fn in_dim(&self) -> usize {
        self.w_self.value.nrows()
    }
}

impl Layer for SageLayer {
    fn forward(
        &mut self,
        input: &DenseMatrix,
        ctx: &GraphContext,
        _training: bool,
    ) -> Result<DenseMatrix, GnnError> {
        if input.ncols() != self.in_dim() {
            return Err(GnnError::DimensionMismatch {
                context: "sage forward",
                expected: self.in_dim(),
                actual: input.ncols(),
            });
        }
        if input.nrows() != ctx.num_nodes() {
            return Err(GnnError::DimensionMismatch {
                context: "sage forward (nodes)",
                expected: ctx.num_nodes(),
                actual: input.nrows(),
            });
        }
        let aggregated = ctx.mean_adj().mul_dense(input)?;
        let self_part = input.matmul(&self.w_self.value)?;
        let neigh_part = aggregated.matmul(&self.w_neigh.value)?;
        let mut z = self_part.add(&neigh_part)?;
        for i in 0..z.nrows() {
            let row = z.row_mut(i);
            for (v, b) in row.iter_mut().zip(self.bias.value.row(0)) {
                *v += b;
            }
        }
        let out = self.activation.forward(&z);
        self.cache = Some(Cache {
            input: input.clone(),
            aggregated,
            pre_activation: z,
        });
        Ok(out)
    }

    fn backward(
        &mut self,
        grad_output: &DenseMatrix,
        ctx: &GraphContext,
    ) -> Result<DenseMatrix, GnnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(GnnError::BackwardBeforeForward { layer: "sage" })?;
        let mut dz = grad_output.clone();
        self.activation
            .backward_inplace(&cache.pre_activation, &mut dz);
        let dw_self = cache.input.transpose().matmul(&dz)?;
        self.w_self.grad = self.w_self.grad.add(&dw_self)?;
        let dw_neigh = cache.aggregated.transpose().matmul(&dz)?;
        self.w_neigh.grad = self.w_neigh.grad.add(&dw_neigh)?;
        for i in 0..dz.nrows() {
            for j in 0..dz.ncols() {
                let cur = self.bias.grad.get(0, j);
                self.bias.grad.set(0, j, cur + dz.get(i, j));
            }
        }
        // dH = dZ W_selfᵀ + (D⁻¹A)ᵀ (dZ W_neighᵀ).
        let part_self = dz.matmul(&self.w_self.value.transpose())?;
        let part_neigh = ctx
            .mean_adj()
            .transpose()
            .mul_dense(&dz.matmul(&self.w_neigh.value.transpose())?)?;
        Ok(part_self.add(&part_neigh)?)
    }

    fn parameters(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_neigh, &mut self.bias]
    }

    fn output_dim(&self) -> usize {
        self.w_self.value.ncols()
    }

    fn name(&self) -> &'static str {
        "sage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{check_input_gradient, check_param_gradients};
    use cirstag_graph::Graph;
    use rand::SeedableRng;

    fn setup() -> (GraphContext, DenseMatrix) {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 2.0), (0, 2, 1.0)]).unwrap();
        let ctx = GraphContext::new(&g);
        let x = DenseMatrix::from_rows(&[
            vec![1.0, -0.5],
            vec![0.3, 0.8],
            vec![-1.2, 0.1],
            vec![0.4, 0.4],
        ])
        .unwrap();
        (ctx, x)
    }

    #[test]
    fn forward_separates_self_and_neighbor_terms() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = SageLayer::new(2, 2, Activation::Identity, &mut rng);
        // Zero the neighbor weight: output must equal X·W_self.
        layer.w_neigh.value = DenseMatrix::zeros(2, 2);
        let out = layer.forward(&x, &ctx, false).unwrap();
        let expect = x.matmul(&layer.w_self.value).unwrap();
        assert!(out.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = SageLayer::new(2, 3, Activation::Tanh, &mut rng);
        check_input_gradient(&mut layer, &ctx, &x, 1e-4);
        check_param_gradients(&mut layer, &ctx, &x, 1e-4);
    }

    #[test]
    fn three_parameters_exposed() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = SageLayer::new(2, 3, Activation::Identity, &mut rng);
        assert_eq!(layer.parameters().len(), 3);
        assert_eq!(layer.output_dim(), 3);
        assert_eq!(layer.name(), "sage");
    }
}
