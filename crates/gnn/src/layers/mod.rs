//! Neural layers with layer-local backpropagation.

mod dagprop;
mod dropout;
mod gat;
mod gcn;
mod linear;
mod sage;

pub use dagprop::DagPropLayer;
pub use dropout::DropoutLayer;
pub use gat::GatLayer;
pub use gcn::GcnLayer;
pub use linear::LinearLayer;
pub use sage::SageLayer;

use crate::{GnnError, GraphContext, Param};
use cirstag_linalg::DenseMatrix;

/// A differentiable layer.
///
/// Layers cache whatever activations they need during [`Layer::forward`] and
/// consume those caches in [`Layer::backward`], which must therefore follow a
/// forward call on the same input. Parameter gradients *accumulate* across
/// backward calls until [`Layer::zero_grad`].
pub trait Layer {
    /// Computes the layer output for `input` (rows = nodes).
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::DimensionMismatch`] when the input width does not
    /// match the layer.
    fn forward(
        &mut self,
        input: &DenseMatrix,
        ctx: &GraphContext,
        training: bool,
    ) -> Result<DenseMatrix, GnnError>;

    /// Back-propagates `grad_output` (∂loss/∂output), accumulating parameter
    /// gradients and returning ∂loss/∂input.
    ///
    /// # Errors
    ///
    /// Returns [`GnnError::BackwardBeforeForward`] when no forward pass has
    /// been cached.
    fn backward(
        &mut self,
        grad_output: &DenseMatrix,
        ctx: &GraphContext,
    ) -> Result<DenseMatrix, GnnError>;

    /// Mutable access to the layer's trainable parameters (stable order).
    fn parameters(&mut self) -> Vec<&mut Param>;

    /// Clears accumulated gradients.
    fn zero_grad(&mut self) {
        for p in self.parameters() {
            p.zero_grad();
        }
    }

    /// Output feature width.
    fn output_dim(&self) -> usize;

    /// Human-readable layer name.
    fn name(&self) -> &'static str;
}

/// Gradient-checking helper used by the layer unit tests: compares the
/// analytic input gradient of `layer` against central finite differences of
/// the scalar loss `L = Σ out²/2` (whose output gradient is `out` itself).
#[cfg(test)]
pub(crate) fn check_input_gradient<L: Layer>(
    layer: &mut L,
    ctx: &GraphContext,
    input: &DenseMatrix,
    tol: f64,
) {
    let out = layer.forward(input, ctx, false).unwrap();
    let grad_in = layer.backward(&out, ctx).unwrap();
    let mut x = input.clone();
    let h = 1e-6;
    for i in 0..input.nrows() {
        for j in 0..input.ncols() {
            let orig = x.get(i, j);
            x.set(i, j, orig + h);
            let lp: f64 = layer
                .forward(&x, ctx, false)
                .unwrap()
                .as_slice()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x.set(i, j, orig - h);
            let lm: f64 = layer
                .forward(&x, ctx, false)
                .unwrap()
                .as_slice()
                .iter()
                .map(|v| v * v / 2.0)
                .sum();
            x.set(i, j, orig);
            let fd = (lp - lm) / (2.0 * h);
            let an = grad_in.get(i, j);
            assert!(
                (fd - an).abs() <= tol * (1.0 + fd.abs()),
                "input grad mismatch at ({i},{j}): analytic {an} vs fd {fd}"
            );
        }
    }
}

/// Gradient-checking helper for parameter gradients, same loss convention as
/// [`check_input_gradient`].
#[cfg(test)]
pub(crate) fn check_param_gradients<L: Layer>(
    layer: &mut L,
    ctx: &GraphContext,
    input: &DenseMatrix,
    tol: f64,
) {
    layer.zero_grad();
    let out = layer.forward(input, ctx, false).unwrap();
    let _ = layer.backward(&out, ctx).unwrap();
    // Snapshot analytic gradients.
    let analytic: Vec<DenseMatrix> = layer.parameters().iter().map(|p| p.grad.clone()).collect();
    let h = 1e-6;
    for (pi, an) in analytic.iter().enumerate() {
        for i in 0..an.nrows() {
            for j in 0..an.ncols() {
                let orig = {
                    let mut ps = layer.parameters();
                    let v = ps[pi].value.get(i, j);
                    ps[pi].value.set(i, j, v + h);
                    v
                };
                let lp: f64 = layer
                    .forward(input, ctx, false)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .map(|v| v * v / 2.0)
                    .sum();
                {
                    let mut ps = layer.parameters();
                    ps[pi].value.set(i, j, orig - h);
                }
                let lm: f64 = layer
                    .forward(input, ctx, false)
                    .unwrap()
                    .as_slice()
                    .iter()
                    .map(|v| v * v / 2.0)
                    .sum();
                {
                    let mut ps = layer.parameters();
                    ps[pi].value.set(i, j, orig);
                }
                let fd = (lp - lm) / (2.0 * h);
                let a = an.get(i, j);
                assert!(
                    (fd - a).abs() <= tol * (1.0 + fd.abs()),
                    "param {pi} grad mismatch at ({i},{j}): analytic {a} vs fd {fd}"
                );
            }
        }
    }
}
