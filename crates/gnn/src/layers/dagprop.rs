use crate::layers::Layer;
use crate::{Activation, GnnError, GraphContext, Param};
use cirstag_linalg::DenseMatrix;
use rand::rngs::StdRng;

/// A DAG-propagation layer in the style of pre-routing timing GNNs
/// (TimingGCN \[17\]): nodes are processed in topological order and each node
/// aggregates the *already-updated* states of its fanins,
///
/// `h_p = act(x_p·W_self + mean_{q ∈ fanin(p)} h_q·W_agg + b)`,
///
/// so one layer's receptive field spans entire source-to-sink paths —
/// exactly the long-range dependence of arrival-time propagation that plain
/// k-layer GCNs (k-hop receptive field) cannot express.
///
/// Requires a [`GraphContext`] built with [`GraphContext::with_dag`].
#[derive(Debug, Clone)]
pub struct DagPropLayer {
    w_self: Param,
    w_agg: Param,
    bias: Param,
    activation: Activation,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    input: DenseMatrix,
    /// Aggregated fanin states per node (`mean h_q`), pre-`W_agg`.
    agg: DenseMatrix,
    pre_activation: DenseMatrix,
}

impl DagPropLayer {
    /// Creates a Glorot-initialized layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        let mut w_agg = Param::glorot(out_dim, out_dim, rng);
        // Slightly contract the recurrent weight so products along deep
        // paths neither vanish nor explode at initialization.
        for v in w_agg.value.as_mut_slice() {
            *v *= 0.8;
        }
        DagPropLayer {
            w_self: Param::glorot(in_dim, out_dim, rng),
            w_agg,
            bias: Param::zeros(1, out_dim),
            activation,
            cache: None,
        }
    }

    fn in_dim(&self) -> usize {
        self.w_self.value.nrows()
    }

    fn out_dim(&self) -> usize {
        self.w_self.value.ncols()
    }
}

impl Layer for DagPropLayer {
    fn forward(
        &mut self,
        input: &DenseMatrix,
        ctx: &GraphContext,
        _training: bool,
    ) -> Result<DenseMatrix, GnnError> {
        let dag = ctx.dag().ok_or(GnnError::InvalidArgument {
            reason: "dagprop layer requires a GraphContext built with_dag".to_string(),
        })?;
        if input.ncols() != self.in_dim() {
            return Err(GnnError::DimensionMismatch {
                context: "dagprop forward",
                expected: self.in_dim(),
                actual: input.ncols(),
            });
        }
        let n = ctx.num_nodes();
        if input.nrows() != n {
            return Err(GnnError::DimensionMismatch {
                context: "dagprop forward (nodes)",
                expected: n,
                actual: input.nrows(),
            });
        }
        let d = self.out_dim();
        let xw = input.matmul(&self.w_self.value)?;
        let mut h = DenseMatrix::zeros(n, d);
        let mut agg = DenseMatrix::zeros(n, d);
        let mut z = DenseMatrix::zeros(n, d);
        for &p in &dag.topo {
            let fanin = &dag.fanin[p];
            if !fanin.is_empty() {
                let inv = 1.0 / fanin.len() as f64;
                // agg_p = mean over fanin of h_q.
                let mut acc = vec![0.0f64; d];
                for &q in fanin {
                    for (a, v) in acc.iter_mut().zip(h.row(q)) {
                        *a += v;
                    }
                }
                for (k, a) in acc.iter().enumerate() {
                    agg.set(p, k, a * inv);
                }
            }
            // z_p = xw_p + agg_p · W_agg + b.
            for k in 0..d {
                let mut v = xw.get(p, k) + self.bias.value.get(0, k);
                for j in 0..d {
                    v += agg.get(p, j) * self.w_agg.value.get(j, k);
                }
                z.set(p, k, v);
                h.set(p, k, self.activation.scalar(v));
            }
        }
        self.cache = Some(Cache {
            input: input.clone(),
            agg,
            pre_activation: z,
        });
        Ok(h)
    }

    fn backward(
        &mut self,
        grad_output: &DenseMatrix,
        ctx: &GraphContext,
    ) -> Result<DenseMatrix, GnnError> {
        let dag = ctx.dag().ok_or(GnnError::InvalidArgument {
            reason: "dagprop layer requires a GraphContext built with_dag".to_string(),
        })?;
        let cache = self
            .cache
            .as_ref()
            .ok_or(GnnError::BackwardBeforeForward { layer: "dagprop" })?;
        let n = ctx.num_nodes();
        let d = self.out_dim();
        // dh accumulates both the external gradient and the recurrent
        // contribution from downstream nodes; process in reverse topological
        // order so every dh_p is complete before converting to dz_p.
        let mut dh = grad_output.clone();
        let mut dz = DenseMatrix::zeros(n, d);
        for &p in dag.topo.iter().rev() {
            // dz_p = dh_p ⊙ act'(z_p).
            for k in 0..d {
                let g = dh.get(p, k) * self.activation.derivative(cache.pre_activation.get(p, k));
                dz.set(p, k, g);
            }
            let fanin = &dag.fanin[p];
            if !fanin.is_empty() {
                let inv = 1.0 / fanin.len() as f64;
                // dh_q += inv · dz_p · W_aggᵀ  for each fanin q.
                let mut push = vec![0.0f64; d];
                for (j, pj) in push.iter_mut().enumerate() {
                    let mut v = 0.0;
                    for k in 0..d {
                        v += dz.get(p, k) * self.w_agg.value.get(j, k);
                    }
                    *pj = v * inv;
                }
                for &q in fanin {
                    for (k, &pv) in push.iter().enumerate() {
                        let cur = dh.get(q, k);
                        dh.set(q, k, cur + pv);
                    }
                }
            }
        }
        // Parameter gradients from the assembled dZ.
        let dw_self = cache.input.transpose().matmul(&dz)?;
        self.w_self.grad = self.w_self.grad.add(&dw_self)?;
        let dw_agg = cache.agg.transpose().matmul(&dz)?;
        self.w_agg.grad = self.w_agg.grad.add(&dw_agg)?;
        for i in 0..n {
            for k in 0..d {
                let cur = self.bias.grad.get(0, k);
                self.bias.grad.set(0, k, cur + dz.get(i, k));
            }
        }
        Ok(dz.matmul(&self.w_self.value.transpose())?)
    }

    fn parameters(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_self, &mut self.w_agg, &mut self.bias]
    }

    fn output_dim(&self) -> usize {
        self.w_self.value.ncols()
    }

    fn name(&self) -> &'static str {
        "dagprop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{check_input_gradient, check_param_gradients};
    use cirstag_graph::Graph;
    use rand::SeedableRng;

    /// Chain DAG 0 → 1 → 2 → 3.
    fn chain_ctx() -> GraphContext {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        GraphContext::with_dag(&g, &[(0, 1), (1, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn requires_dag_context() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let ctx = GraphContext::new(&g);
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = DagPropLayer::new(1, 2, Activation::Identity, &mut rng);
        let x = DenseMatrix::zeros(2, 1);
        assert!(layer.forward(&x, &ctx, false).is_err());
    }

    #[test]
    fn information_reaches_full_depth() {
        // With identity-ish weights, a signal at node 0 must influence node 3
        // through a single layer (unlike a 1-hop GCN).
        let ctx = chain_ctx();
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = DagPropLayer::new(1, 1, Activation::Identity, &mut rng);
        layer.w_self.value.set(0, 0, 1.0);
        layer.w_agg.value.set(0, 0, 1.0);
        let x0 = DenseMatrix::from_rows(&[vec![0.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let x1 = DenseMatrix::from_rows(&[vec![1.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let h0 = layer.forward(&x0, &ctx, false).unwrap();
        let h1 = layer.forward(&x1, &ctx, false).unwrap();
        assert!((h1.get(3, 0) - h0.get(3, 0)).abs() > 0.99);
    }

    #[test]
    fn gradients_match_finite_differences_chain() {
        let ctx = chain_ctx();
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = DagPropLayer::new(2, 3, Activation::Tanh, &mut rng);
        let x = DenseMatrix::from_rows(&[
            vec![0.5, -0.2],
            vec![0.1, 0.9],
            vec![-0.7, 0.3],
            vec![0.2, 0.2],
        ])
        .unwrap();
        check_input_gradient(&mut layer, &ctx, &x, 5e-4);
        check_param_gradients(&mut layer, &ctx, &x, 5e-4);
    }

    #[test]
    fn gradients_match_finite_differences_diamond() {
        // Diamond DAG: 0 → {1, 2} → 3 (node 3 averages two fanins).
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)]).unwrap();
        let ctx = GraphContext::with_dag(&g, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = DagPropLayer::new(2, 2, Activation::Relu, &mut rng);
        let x = DenseMatrix::from_rows(&[
            vec![0.6, -0.1],
            vec![0.4, 0.5],
            vec![-0.3, 0.8],
            vec![0.2, -0.6],
        ])
        .unwrap();
        check_input_gradient(&mut layer, &ctx, &x, 5e-4);
        check_param_gradients(&mut layer, &ctx, &x, 5e-4);
    }

    #[test]
    fn source_nodes_use_self_term_only() {
        let ctx = chain_ctx();
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = DagPropLayer::new(1, 1, Activation::Identity, &mut rng);
        layer.w_self.value.set(0, 0, 2.0);
        layer.bias.value.set(0, 0, 0.25);
        let x = DenseMatrix::from_rows(&[vec![1.0], vec![0.0], vec![0.0], vec![0.0]]).unwrap();
        let h = layer.forward(&x, &ctx, false).unwrap();
        assert!((h.get(0, 0) - 2.25).abs() < 1e-12);
    }
}
