use crate::layers::Layer;
use crate::{Activation, GnnError, GraphContext, Param};
use cirstag_linalg::DenseMatrix;
use rand::rngs::StdRng;

/// A graph convolution layer (Kipf–Welling): `H' = act(Â H W + b)` with
/// `Â = D̃^{-1/2}(A + I)D̃^{-1/2}` taken from the [`GraphContext`].
#[derive(Debug, Clone)]
pub struct GcnLayer {
    weight: Param,
    bias: Param,
    activation: Activation,
    cache: Option<Cache>,
}

#[derive(Debug, Clone)]
struct Cache {
    /// `Â H` — the aggregated input.
    aggregated: DenseMatrix,
    pre_activation: DenseMatrix,
}

impl GcnLayer {
    /// Creates a Glorot-initialized GCN layer mapping `in_dim → out_dim`.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        GcnLayer {
            weight: Param::glorot(in_dim, out_dim, rng),
            bias: Param::zeros(1, out_dim),
            activation,
            cache: None,
        }
    }

    fn in_dim(&self) -> usize {
        self.weight.value.nrows()
    }
}

impl Layer for GcnLayer {
    fn forward(
        &mut self,
        input: &DenseMatrix,
        ctx: &GraphContext,
        _training: bool,
    ) -> Result<DenseMatrix, GnnError> {
        if input.ncols() != self.in_dim() {
            return Err(GnnError::DimensionMismatch {
                context: "gcn forward",
                expected: self.in_dim(),
                actual: input.ncols(),
            });
        }
        if input.nrows() != ctx.num_nodes() {
            return Err(GnnError::DimensionMismatch {
                context: "gcn forward (nodes)",
                expected: ctx.num_nodes(),
                actual: input.nrows(),
            });
        }
        let aggregated = ctx.norm_adj().mul_dense(input)?;
        let mut z = aggregated.matmul(&self.weight.value)?;
        for i in 0..z.nrows() {
            let row = z.row_mut(i);
            for (v, b) in row.iter_mut().zip(self.bias.value.row(0)) {
                *v += b;
            }
        }
        let out = self.activation.forward(&z);
        self.cache = Some(Cache {
            aggregated,
            pre_activation: z,
        });
        Ok(out)
    }

    fn backward(
        &mut self,
        grad_output: &DenseMatrix,
        ctx: &GraphContext,
    ) -> Result<DenseMatrix, GnnError> {
        let cache = self
            .cache
            .as_ref()
            .ok_or(GnnError::BackwardBeforeForward { layer: "gcn" })?;
        let mut dz = grad_output.clone();
        self.activation
            .backward_inplace(&cache.pre_activation, &mut dz);
        // dW += (ÂH)ᵀ dZ ; db += colsum dZ ; dH = Âᵀ (dZ Wᵀ) = Â (dZ Wᵀ)
        // (Â is symmetric).
        let dw = cache.aggregated.transpose().matmul(&dz)?;
        self.weight.grad = self.weight.grad.add(&dw)?;
        for i in 0..dz.nrows() {
            for j in 0..dz.ncols() {
                let cur = self.bias.grad.get(0, j);
                self.bias.grad.set(0, j, cur + dz.get(i, j));
            }
        }
        let dzw = dz.matmul(&self.weight.value.transpose())?;
        Ok(ctx.norm_adj().mul_dense(&dzw)?)
    }

    fn parameters(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn output_dim(&self) -> usize {
        self.weight.value.ncols()
    }

    fn name(&self) -> &'static str {
        "gcn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{check_input_gradient, check_param_gradients};
    use cirstag_graph::Graph;
    use rand::SeedableRng;

    fn setup() -> (GraphContext, DenseMatrix) {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let ctx = GraphContext::new(&g);
        let x = DenseMatrix::from_rows(&[
            vec![1.0, -0.5],
            vec![0.3, 0.8],
            vec![-1.2, 0.1],
            vec![0.4, 0.4],
        ])
        .unwrap();
        (ctx, x)
    }

    #[test]
    fn forward_aggregates_neighbors() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = GcnLayer::new(2, 2, Activation::Identity, &mut rng);
        // Identity weight makes the output exactly ÂX.
        layer.weight.value = DenseMatrix::identity(2);
        let out = layer.forward(&x, &ctx, false).unwrap();
        let expect = ctx.norm_adj().mul_dense(&x).unwrap();
        assert!(out.max_abs_diff(&expect).unwrap() < 1e-12);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = GcnLayer::new(2, 3, Activation::Tanh, &mut rng);
        check_input_gradient(&mut layer, &ctx, &x, 1e-4);
        check_param_gradients(&mut layer, &ctx, &x, 1e-4);
    }

    #[test]
    fn elu_gradients() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = GcnLayer::new(2, 2, Activation::Elu, &mut rng);
        check_input_gradient(&mut layer, &ctx, &x, 1e-4);
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let (ctx, _) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = GcnLayer::new(2, 3, Activation::Identity, &mut rng);
        let bad = DenseMatrix::zeros(7, 2);
        assert!(layer.forward(&bad, &ctx, false).is_err());
    }

    #[test]
    fn permutation_equivariance() {
        // Relabeling the graph and permuting rows of X must permute outputs.
        let g1 = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let g2 = Graph::from_edges(3, &[(2, 1, 1.0), (1, 0, 1.0)]).unwrap(); // same up to swap 0<->2
        let ctx1 = GraphContext::new(&g1);
        let ctx2 = GraphContext::new(&g2);
        let x1 = DenseMatrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let x2 = DenseMatrix::from_rows(&[vec![3.0], vec![2.0], vec![1.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = GcnLayer::new(1, 2, Activation::Relu, &mut rng);
        let o1 = layer.forward(&x1, &ctx1, false).unwrap();
        let o2 = layer.forward(&x2, &ctx2, false).unwrap();
        for j in 0..2 {
            assert!((o1.get(0, j) - o2.get(2, j)).abs() < 1e-12);
            assert!((o1.get(1, j) - o2.get(1, j)).abs() < 1e-12);
            assert!((o1.get(2, j) - o2.get(0, j)).abs() < 1e-12);
        }
    }
}
