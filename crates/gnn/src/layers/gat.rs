use crate::layers::Layer;
use crate::{Activation, GnnError, GraphContext, Param};
use cirstag_linalg::DenseMatrix;
use rand::rngs::StdRng;

const ATTN_SLOPE: f64 = 0.2;

/// A graph attention layer (Veličković et al.) with multi-head concatenation.
///
/// For each head: `e_ij = LeakyReLU(a_srcᵀ W h_i + a_dstᵀ W h_j)` over
/// `j ∈ N(i) ∪ {i}`, `α_i· = softmax(e_i·)`, `z_i = Σ_j α_ij W h_j`, and the
/// heads' activated outputs are concatenated column-wise.
#[derive(Debug, Clone)]
pub struct GatLayer {
    heads: Vec<Head>,
    activation: Activation,
    in_dim: usize,
    head_dim: usize,
}

#[derive(Debug, Clone)]
struct Head {
    weight: Param,
    attn_src: Param,
    attn_dst: Param,
    cache: Option<HeadCache>,
}

#[derive(Debug, Clone)]
struct HeadCache {
    input: DenseMatrix,
    wh: DenseMatrix,
    /// `s_i = a_srcᵀ Wh_i`, `t_i = a_dstᵀ Wh_i`.
    s: Vec<f64>,
    t: Vec<f64>,
    /// `alphas[i][k]` pairs with `ctx.neighbors()[i][k]`.
    alphas: Vec<Vec<f64>>,
    pre_activation: DenseMatrix,
}

impl GatLayer {
    /// Creates a Glorot-initialized GAT layer mapping
    /// `in_dim → num_heads · head_dim`.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads == 0`.
    pub fn new(
        in_dim: usize,
        head_dim: usize,
        num_heads: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(num_heads > 0, "a GAT layer needs at least one head");
        let heads = (0..num_heads)
            .map(|_| Head {
                weight: Param::glorot(in_dim, head_dim, rng),
                attn_src: Param::glorot(head_dim, 1, rng),
                attn_dst: Param::glorot(head_dim, 1, rng),
                cache: None,
            })
            .collect();
        GatLayer {
            heads,
            activation,
            in_dim,
            head_dim,
        }
    }

    /// Number of attention heads.
    pub fn num_heads(&self) -> usize {
        self.heads.len()
    }

    /// Attention coefficients of head `h` after the latest forward pass:
    /// `alphas[i][k]` pairs with `ctx.neighbors()[i][k]`. `None` before any
    /// forward pass.
    pub fn attention(&self, h: usize) -> Option<&Vec<Vec<f64>>> {
        self.heads
            .get(h)
            .and_then(|head| head.cache.as_ref())
            .map(|c| &c.alphas)
    }
}

fn head_forward(
    head: &mut Head,
    input: &DenseMatrix,
    ctx: &GraphContext,
    activation: Activation,
) -> Result<DenseMatrix, GnnError> {
    let n = ctx.num_nodes();
    let wh = input.matmul(&head.weight.value)?;
    let d = wh.ncols();
    let s: Vec<f64> = (0..n)
        .map(|i| {
            wh.row(i)
                .iter()
                .zip(head.attn_src.value.column(0).iter())
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect();
    let t: Vec<f64> = (0..n)
        .map(|i| {
            wh.row(i)
                .iter()
                .zip(head.attn_dst.value.column(0).iter())
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect();
    let lrelu = Activation::LeakyRelu(ATTN_SLOPE);
    let mut alphas = Vec::with_capacity(n);
    let mut z = DenseMatrix::zeros(n, d);
    for (i, nbrs) in ctx.neighbors().iter().enumerate() {
        let logits: Vec<f64> = nbrs.iter().map(|&j| lrelu.scalar(s[i] + t[j])).collect();
        let m = logits.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let mut exps: Vec<f64> = logits.iter().map(|&l| (l - m).exp()).collect();
        let total: f64 = exps.iter().sum();
        for e in &mut exps {
            *e /= total;
        }
        for (&j, &a) in nbrs.iter().zip(&exps) {
            let src = wh.row(j).to_vec();
            let dst = z.row_mut(i);
            for (o, v) in dst.iter_mut().zip(&src) {
                *o += a * v;
            }
        }
        alphas.push(exps);
    }
    let out = activation.forward(&z);
    head.cache = Some(HeadCache {
        input: input.clone(),
        wh,
        s,
        t,
        alphas,
        pre_activation: z,
    });
    Ok(out)
}

fn head_backward(
    head: &mut Head,
    grad_output: &DenseMatrix,
    ctx: &GraphContext,
    activation: Activation,
) -> Result<DenseMatrix, GnnError> {
    let cache = head
        .cache
        .as_ref()
        .ok_or(GnnError::BackwardBeforeForward { layer: "gat" })?;
    let n = ctx.num_nodes();
    let d = cache.wh.ncols();
    let mut dz = grad_output.clone();
    activation.backward_inplace(&cache.pre_activation, &mut dz);

    let lrelu = Activation::LeakyRelu(ATTN_SLOPE);
    let a_src = head.attn_src.value.column(0);
    let a_dst = head.attn_dst.value.column(0);

    let mut dwh = DenseMatrix::zeros(n, d);
    let mut ds = vec![0.0; n];
    let mut dt = vec![0.0; n];
    for (i, nbrs) in ctx.neighbors().iter().enumerate() {
        let alphas = &cache.alphas[i];
        // dα_ik = dz_i · Wh_{j_k}; dWh_j += α dz_i.
        let dzi = dz.row(i).to_vec();
        let mut dalpha = Vec::with_capacity(nbrs.len());
        for (&j, &a) in nbrs.iter().zip(alphas) {
            let whj = cache.wh.row(j);
            let da: f64 = dzi.iter().zip(whj).map(|(x, y)| x * y).sum();
            dalpha.push(da);
            let dst = dwh.row_mut(j);
            for (o, x) in dst.iter_mut().zip(&dzi) {
                *o += a * x;
            }
        }
        // Softmax backward: de_k = α_k (dα_k − Σ α dα).
        let dot: f64 = alphas.iter().zip(&dalpha).map(|(a, da)| a * da).sum();
        for ((&j, &a), &da) in nbrs.iter().zip(alphas).zip(&dalpha) {
            let de = a * (da - dot);
            let dpre = de * lrelu.derivative(cache.s[i] + cache.t[j]);
            ds[i] += dpre;
            dt[j] += dpre;
        }
    }
    // s_i = a_src · Wh_i, t_i = a_dst · Wh_i.
    for i in 0..n {
        let whi = cache.wh.row(i).to_vec();
        {
            let dst = dwh.row_mut(i);
            for k in 0..d {
                dst[k] += ds[i] * a_src[k] + dt[i] * a_dst[k];
            }
        }
        for k in 0..d {
            let cur = head.attn_src.grad.get(k, 0);
            head.attn_src.grad.set(k, 0, cur + ds[i] * whi[k]);
            let cur = head.attn_dst.grad.get(k, 0);
            head.attn_dst.grad.set(k, 0, cur + dt[i] * whi[k]);
        }
    }
    let dw = cache.input.transpose().matmul(&dwh)?;
    head.weight.grad = head.weight.grad.add(&dw)?;
    Ok(dwh.matmul(&head.weight.value.transpose())?)
}

impl Layer for GatLayer {
    fn forward(
        &mut self,
        input: &DenseMatrix,
        ctx: &GraphContext,
        _training: bool,
    ) -> Result<DenseMatrix, GnnError> {
        if input.ncols() != self.in_dim {
            return Err(GnnError::DimensionMismatch {
                context: "gat forward",
                expected: self.in_dim,
                actual: input.ncols(),
            });
        }
        if input.nrows() != ctx.num_nodes() {
            return Err(GnnError::DimensionMismatch {
                context: "gat forward (nodes)",
                expected: ctx.num_nodes(),
                actual: input.nrows(),
            });
        }
        let n = ctx.num_nodes();
        let mut out = DenseMatrix::zeros(n, self.heads.len() * self.head_dim);
        let activation = self.activation;
        for (h, head) in self.heads.iter_mut().enumerate() {
            let ho = head_forward(head, input, ctx, activation)?;
            for i in 0..n {
                for k in 0..self.head_dim {
                    out.set(i, h * self.head_dim + k, ho.get(i, k));
                }
            }
        }
        Ok(out)
    }

    fn backward(
        &mut self,
        grad_output: &DenseMatrix,
        ctx: &GraphContext,
    ) -> Result<DenseMatrix, GnnError> {
        let n = ctx.num_nodes();
        if grad_output.ncols() != self.heads.len() * self.head_dim {
            return Err(GnnError::DimensionMismatch {
                context: "gat backward",
                expected: self.heads.len() * self.head_dim,
                actual: grad_output.ncols(),
            });
        }
        let mut dinput = DenseMatrix::zeros(n, self.in_dim);
        let activation = self.activation;
        for (h, head) in self.heads.iter_mut().enumerate() {
            let mut slice = DenseMatrix::zeros(n, self.head_dim);
            for i in 0..n {
                for k in 0..self.head_dim {
                    slice.set(i, k, grad_output.get(i, h * self.head_dim + k));
                }
            }
            let di = head_backward(head, &slice, ctx, activation)?;
            dinput = dinput.add(&di)?;
        }
        Ok(dinput)
    }

    fn parameters(&mut self) -> Vec<&mut Param> {
        self.heads
            .iter_mut()
            .flat_map(|h| vec![&mut h.weight, &mut h.attn_src, &mut h.attn_dst])
            .collect()
    }

    fn output_dim(&self) -> usize {
        self.heads.len() * self.head_dim
    }

    fn name(&self) -> &'static str {
        "gat"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{check_input_gradient, check_param_gradients};
    use cirstag_graph::Graph;
    use rand::SeedableRng;

    fn setup() -> (GraphContext, DenseMatrix) {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let ctx = GraphContext::new(&g);
        let x = DenseMatrix::from_rows(&[
            vec![0.6, -0.5],
            vec![0.3, 0.8],
            vec![-0.9, 0.1],
            vec![0.4, 0.4],
        ])
        .unwrap();
        (ctx, x)
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = GatLayer::new(2, 3, 2, Activation::Elu, &mut rng);
        layer.forward(&x, &ctx, false).unwrap();
        for h in 0..2 {
            let alphas = layer.attention(h).unwrap();
            for (i, row) in alphas.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "head {h} node {i} sums to {s}");
                assert!(row.iter().all(|&a| a >= 0.0));
            }
        }
    }

    #[test]
    fn output_shape_concatenates_heads() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = GatLayer::new(2, 3, 4, Activation::Identity, &mut rng);
        let out = layer.forward(&x, &ctx, false).unwrap();
        assert_eq!(out.shape(), (4, 12));
        assert_eq!(layer.output_dim(), 12);
        assert_eq!(layer.num_heads(), 4);
    }

    #[test]
    fn gradients_match_finite_differences_single_head() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = GatLayer::new(2, 2, 1, Activation::Identity, &mut rng);
        check_input_gradient(&mut layer, &ctx, &x, 5e-4);
        check_param_gradients(&mut layer, &ctx, &x, 5e-4);
    }

    #[test]
    fn gradients_match_finite_differences_multi_head_elu() {
        let (ctx, x) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = GatLayer::new(2, 2, 2, Activation::Elu, &mut rng);
        check_input_gradient(&mut layer, &ctx, &x, 5e-4);
        check_param_gradients(&mut layer, &ctx, &x, 5e-4);
    }

    #[test]
    fn dimension_validation() {
        let (ctx, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = GatLayer::new(3, 2, 1, Activation::Identity, &mut rng);
        assert!(layer
            .forward(&DenseMatrix::zeros(4, 2), &ctx, false)
            .is_err());
        assert!(layer.backward(&DenseMatrix::zeros(4, 5), &ctx).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one head")]
    fn zero_heads_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = GatLayer::new(2, 2, 0, Activation::Identity, &mut rng);
    }
}
