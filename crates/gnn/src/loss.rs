//! Losses with node masks, returning both value and gradient.

use crate::GnnError;
use cirstag_linalg::DenseMatrix;

/// A loss evaluation: scalar value plus ∂loss/∂prediction.
#[derive(Debug, Clone)]
pub struct LossValue {
    /// Mean loss over the selected nodes.
    pub value: f64,
    /// Gradient with respect to the prediction matrix (zero outside the
    /// mask).
    pub grad: DenseMatrix,
    /// Number of nodes that contributed.
    pub count: usize,
}

fn resolve_mask(mask: Option<&[bool]>, n: usize) -> Result<Vec<bool>, GnnError> {
    match mask {
        None => Ok(vec![true; n]),
        Some(m) => {
            if m.len() != n {
                return Err(GnnError::DimensionMismatch {
                    context: "loss mask",
                    expected: n,
                    actual: m.len(),
                });
            }
            Ok(m.to_vec())
        }
    }
}

/// Mean-squared-error loss `(1 / 2|S|) Σ_{i∈S} ‖pred_i − target_i‖²` over the
/// masked node set `S` (all nodes when `mask` is `None`).
///
/// # Errors
///
/// Returns [`GnnError::DimensionMismatch`] when shapes disagree, and
/// [`GnnError::InvalidArgument`] when the mask selects no nodes.
pub fn mse_loss(
    prediction: &DenseMatrix,
    target: &DenseMatrix,
    mask: Option<&[bool]>,
) -> Result<LossValue, GnnError> {
    if prediction.shape() != target.shape() {
        return Err(GnnError::DimensionMismatch {
            context: "mse target",
            expected: prediction.nrows(),
            actual: target.nrows(),
        });
    }
    let mask = resolve_mask(mask, prediction.nrows())?;
    let count = mask.iter().filter(|&&b| b).count();
    if count == 0 {
        return Err(GnnError::InvalidArgument {
            reason: "loss mask selects no nodes".to_string(),
        });
    }
    let scale = 1.0 / count as f64;
    let mut grad = DenseMatrix::zeros(prediction.nrows(), prediction.ncols());
    let mut value = 0.0;
    for i in 0..prediction.nrows() {
        if !mask[i] {
            continue;
        }
        for j in 0..prediction.ncols() {
            let d = prediction.get(i, j) - target.get(i, j);
            value += 0.5 * d * d * scale;
            grad.set(i, j, d * scale);
        }
    }
    Ok(LossValue { value, grad, count })
}

/// Softmax cross-entropy for node classification.
///
/// `prediction` holds per-node logits (`n × num_classes`); `labels[i]` is the
/// class of node `i`. Returns the mean negative log-likelihood over the mask
/// and the gradient `softmax − onehot` (scaled by `1/|S|`).
///
/// # Errors
///
/// Returns [`GnnError::DimensionMismatch`] / [`GnnError::InvalidArgument`]
/// for shape problems, empty masks, or out-of-range labels.
pub fn cross_entropy_loss(
    prediction: &DenseMatrix,
    labels: &[usize],
    mask: Option<&[bool]>,
) -> Result<LossValue, GnnError> {
    let n = prediction.nrows();
    let c = prediction.ncols();
    if labels.len() != n {
        return Err(GnnError::DimensionMismatch {
            context: "cross entropy labels",
            expected: n,
            actual: labels.len(),
        });
    }
    if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
        return Err(GnnError::InvalidArgument {
            reason: format!("label {bad} out of range for {c} classes"),
        });
    }
    let mask = resolve_mask(mask, n)?;
    let count = mask.iter().filter(|&&b| b).count();
    if count == 0 {
        return Err(GnnError::InvalidArgument {
            reason: "loss mask selects no nodes".to_string(),
        });
    }
    let scale = 1.0 / count as f64;
    let mut grad = DenseMatrix::zeros(n, c);
    let mut value = 0.0;
    for i in 0..n {
        if !mask[i] {
            continue;
        }
        let row = prediction.row(i);
        let m = row.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
        let exps: Vec<f64> = row.iter().map(|&v| (v - m).exp()).collect();
        let total: f64 = exps.iter().sum();
        let label = labels[i];
        value -= ((exps[label] / total).max(1e-300)).ln() * scale;
        for j in 0..c {
            let p = exps[j] / total;
            let onehot = if j == label { 1.0 } else { 0.0 };
            grad.set(i, j, (p - onehot) * scale);
        }
    }
    Ok(LossValue { value, grad, count })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_for_perfect_prediction() {
        let p = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let l = mse_loss(&p, &p, None).unwrap();
        assert_eq!(l.value, 0.0);
        assert!(l.grad.as_slice().iter().all(|&g| g == 0.0));
        assert_eq!(l.count, 2);
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = DenseMatrix::from_rows(&[vec![3.0]]).unwrap();
        let t = DenseMatrix::from_rows(&[vec![1.0]]).unwrap();
        let l = mse_loss(&p, &t, None).unwrap();
        assert!((l.value - 2.0).abs() < 1e-12); // 0.5 * 2²
        assert!((l.grad.get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mse_mask_restricts() {
        let p = DenseMatrix::from_rows(&[vec![1.0], vec![100.0]]).unwrap();
        let t = DenseMatrix::from_rows(&[vec![0.0], vec![0.0]]).unwrap();
        let l = mse_loss(&p, &t, Some(&[true, false])).unwrap();
        assert!((l.value - 0.5).abs() < 1e-12);
        assert_eq!(l.grad.get(1, 0), 0.0);
        assert_eq!(l.count, 1);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let p = DenseMatrix::from_rows(&[vec![0.0, 0.0]]).unwrap();
        let l = cross_entropy_loss(&p, &[0], None).unwrap();
        assert!((l.value - (2.0_f64).ln()).abs() < 1e-12);
        // grad = softmax - onehot = [0.5-1, 0.5].
        assert!((l.grad.get(0, 0) + 0.5).abs() < 1e-12);
        assert!((l.grad.get(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let p = DenseMatrix::from_rows(&[vec![0.3, -0.2, 0.9], vec![1.0, 0.0, -1.0]]).unwrap();
        let labels = [2usize, 0];
        let base = cross_entropy_loss(&p, &labels, None).unwrap();
        let h = 1e-6;
        for i in 0..2 {
            for j in 0..3 {
                let mut pp = p.clone();
                pp.set(i, j, p.get(i, j) + h);
                let lp = cross_entropy_loss(&pp, &labels, None).unwrap().value;
                pp.set(i, j, p.get(i, j) - h);
                let lm = cross_entropy_loss(&pp, &labels, None).unwrap().value;
                let fd = (lp - lm) / (2.0 * h);
                assert!(
                    (fd - base.grad.get(i, j)).abs() < 1e-6,
                    "grad mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn validation_errors() {
        let p = DenseMatrix::zeros(2, 2);
        let t = DenseMatrix::zeros(3, 2);
        assert!(mse_loss(&p, &t, None).is_err());
        assert!(mse_loss(&p, &p, Some(&[true])).is_err());
        assert!(mse_loss(&p, &p, Some(&[false, false])).is_err());
        assert!(cross_entropy_loss(&p, &[0], None).is_err());
        assert!(cross_entropy_loss(&p, &[0, 5], None).is_err());
    }
}
