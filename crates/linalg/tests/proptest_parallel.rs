//! Bit-for-bit parity between the parallel and serial matmul paths.
//!
//! `DenseMatrix::matmul` dispatches to a row-parallel kernel above
//! `PAR_FLOP_THRESHOLD` and falls back to `matmul_serial` below it (or when
//! the pool has one thread). The parallel path must not merely be close —
//! it must produce the exact same bits, because pipeline determinism across
//! thread counts is a documented contract. Shapes here straddle the flop
//! threshold so both dispatch branches are exercised.

use cirstag_linalg::{par, vecops, DenseMatrix};
use proptest::prelude::*;

const MAX_DIM: usize = 44;

/// Deterministic matrix fill from a seed (SplitMix64), so arbitrary shapes
/// can share one fixed-size entropy source.
fn fill(rows: usize, cols: usize, mut seed: u64) -> DenseMatrix {
    let mut data = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        // Uniform in [-4, 4), with occasional exact zeros to hit the
        // kernel's zero-skip branch.
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        data.push(if z.is_multiple_of(13) {
            0.0
        } else {
            8.0 * u - 4.0
        });
    }
    DenseMatrix::from_vec(rows, cols, data).expect("sized")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parallel_matmul_bit_identical_to_serial(
        m in 1usize..=MAX_DIM,
        k in 1usize..=MAX_DIM,
        n in 1usize..=MAX_DIM,
        seed in 0u64..1_000_000,
    ) {
        // Force a multi-thread pool so the size check is the only thing
        // deciding between the parallel and serial kernels.
        par::set_num_threads(4);
        let a = fill(m, k, seed);
        let b = fill(k, n, seed ^ 0xDEAD_BEEF);
        let fused = a.matmul(&b).unwrap();
        let reference = a.matmul_serial(&b).unwrap();
        prop_assert_eq!(fused, reference);
    }

    #[test]
    fn parallel_mul_vec_bit_identical_to_dot_rows(
        m in 1usize..=MAX_DIM,
        k in 1usize..=MAX_DIM,
        seed in 0u64..1_000_000,
    ) {
        par::set_num_threads(4);
        let a = fill(m, k, seed);
        let x: Vec<f64> = fill(1, k, seed ^ 0x00C0_FFEE).row(0).to_vec();
        let y = a.mul_vec(&x).unwrap();
        for i in 0..m {
            // Row i is defined as vecops::dot(row, x) on both paths.
            prop_assert_eq!(y[i], vecops::dot(a.row(i), &x), "row {}", i);
        }
    }
}

/// Shapes pinned to the exact dispatch boundary: one flop below the
/// threshold (serial branch) and at/above it (parallel branch).
#[test]
fn matmul_agrees_at_the_flop_threshold_boundary() {
    par::set_num_threads(4);
    // The dispatch cost model is m·k·n multiply–adds against a 64·1024
    // threshold: with m = n = 32, k = 64 sits exactly on it, k = 63 just
    // under (serial branch), k = 65 just over (parallel branch).
    for k in [63usize, 64, 65] {
        let a = fill(32, k, 42);
        let b = fill(k, 32, 1337);
        assert_eq!(
            a.matmul(&b).unwrap(),
            a.matmul_serial(&b).unwrap(),
            "divergence at k = {k}"
        );
    }
}
