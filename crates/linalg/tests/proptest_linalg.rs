//! Property-based tests for the linear-algebra primitives.

use cirstag_linalg::{jacobi_eigen, tridiag_eigen, CooMatrix, CsrMatrix, DenseMatrix};
use proptest::prelude::*;

fn arb_dense(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).expect("sized"))
}

fn arb_triplets(n: usize) -> impl Strategy<Value = Vec<(usize, usize, f64)>> {
    proptest::collection::vec((0..n, 0..n, -5.0f64..5.0), 0..4 * n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involutive(a in arb_dense(5, 7)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_is_associative(a in arb_dense(3, 4), b in arb_dense(4, 5), c in arb_dense(5, 2)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        prop_assert!(left.max_abs_diff(&right).unwrap() < 1e-9);
    }

    #[test]
    fn matmul_transpose_identity(a in arb_dense(4, 6), b in arb_dense(6, 3)) {
        // (AB)ᵀ = BᵀAᵀ
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-10);
    }

    #[test]
    fn csr_matches_dense_spmv(trips in arb_triplets(8), x in proptest::collection::vec(-3.0f64..3.0, 8)) {
        let csr = CsrMatrix::from_triplets(8, 8, &trips).unwrap();
        let dense = csr.to_dense();
        let y_sparse = csr.mul_vec(&x);
        let y_dense = dense.mul_vec(&x).unwrap();
        for (a, b) in y_sparse.iter().zip(&y_dense) {
            prop_assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn csr_transpose_matches_dense(trips in arb_triplets(7)) {
        let csr = CsrMatrix::from_triplets(7, 7, &trips).unwrap();
        let lhs = csr.transpose().to_dense();
        let rhs = csr.to_dense().transpose();
        prop_assert!(lhs.max_abs_diff(&rhs).unwrap() < 1e-12);
    }

    #[test]
    fn coo_duplicate_accumulation(entries in proptest::collection::vec((0usize..4, 0usize..4, -2.0f64..2.0), 1..24)) {
        let mut coo = CooMatrix::new(4, 4);
        let mut expect = [[0.0f64; 4]; 4];
        for &(i, j, v) in &entries {
            coo.push(i, j, v).unwrap();
            expect[i][j] += v;
        }
        let csr = coo.to_csr();
        for i in 0..4 {
            for j in 0..4 {
                prop_assert!((csr.get(i, j) - expect[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn jacobi_eigendecomposition_reconstructs(a in arb_dense(5, 5)) {
        // Symmetrize, decompose, reconstruct: A = V diag(λ) Vᵀ.
        let sym = a.add(&a.transpose()).unwrap().scaled(0.5);
        let (vals, vecs) = jacobi_eigen(&sym).unwrap();
        let mut lam = DenseMatrix::zeros(5, 5);
        for (i, &v) in vals.iter().enumerate() {
            lam.set(i, i, v);
        }
        let rebuilt = vecs.matmul(&lam).unwrap().matmul(&vecs.transpose()).unwrap();
        prop_assert!(rebuilt.max_abs_diff(&sym).unwrap() < 1e-8);
    }

    #[test]
    fn jacobi_trace_and_frobenius_preserved(a in arb_dense(4, 4)) {
        let sym = a.add(&a.transpose()).unwrap().scaled(0.5);
        let (vals, _) = jacobi_eigen(&sym).unwrap();
        let trace: f64 = (0..4).map(|i| sym.get(i, i)).sum();
        prop_assert!((vals.iter().sum::<f64>() - trace).abs() < 1e-9);
        let fro2: f64 = sym.as_slice().iter().map(|v| v * v).sum();
        let spec2: f64 = vals.iter().map(|v| v * v).sum();
        prop_assert!((fro2 - spec2).abs() < 1e-8 * (1.0 + fro2));
    }

    #[test]
    fn tridiag_eigen_matches_jacobi(
        diag in proptest::collection::vec(-5.0f64..5.0, 6),
        off in proptest::collection::vec(-3.0f64..3.0, 5)
    ) {
        let t = tridiag_eigen(&diag, &off).unwrap();
        let mut dense = DenseMatrix::zeros(6, 6);
        for i in 0..6 {
            dense.set(i, i, diag[i]);
        }
        for i in 0..5 {
            dense.set(i, i + 1, off[i]);
            dense.set(i + 1, i, off[i]);
        }
        let (jv, _) = jacobi_eigen(&dense).unwrap();
        for (a, b) in t.eigenvalues.iter().zip(&jv) {
            prop_assert!((a - b).abs() < 1e-8, "{} vs {}", a, b);
        }
    }
}
