//! Bitwise parity pins for the `simd` fast paths.
//!
//! The AVX2 kernels promise results **bit-identical** to the scalar
//! kernels — not merely close. These tests rebuild each product with an
//! independent scalar reference that replays the documented accumulation
//! order (per row, left to right over stored nonzeros, multiply then add)
//! and compare every output through `f64::to_bits`, so an FMA contraction,
//! a reassociated sum, or a `-0.0` flipped to `+0.0` by a masked lane all
//! fail loudly.
//!
//! The suite runs regardless of whether the host actually has AVX2: without
//! it the dispatch falls back to the scalar loops and parity holds
//! trivially, while on an AVX2 host (the expected case) the vector lanes
//! are exercised across row counts straddling the 4-row grouping, ragged
//! row lengths, empty rows, negative zeros, and panel widths straddling the
//! 4-lane strips.

#![cfg(feature = "simd")]

use cirstag_linalg::{CooMatrix, CsrMatrix, DenseMatrix};

/// Deterministic xorshift so the fixtures need no RNG dependency.
struct XorShift(u64);

impl XorShift {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform-ish in [-1, 1), with an occasional exact `-0.0` or `0.0` so
    /// signed-zero handling is actually exercised.
    fn next_f64(&mut self) -> f64 {
        let r = self.next_u64();
        match r % 17 {
            0 => 0.0,
            1 => -0.0,
            _ => (r >> 11) as f64 / (1u64 << 52) as f64 - 1.0,
        }
    }
}

/// Random CSR matrix with ragged rows: row `i` holds `(i * 7 + seed) % 9`
/// nonzeros (so some rows are empty) at distinct random columns.
fn ragged_csr(nrows: usize, ncols: usize, seed: u64) -> CsrMatrix {
    let mut rng = XorShift(seed | 1);
    let mut coo = CooMatrix::new(nrows, ncols);
    for i in 0..nrows {
        let nnz_row = ((i as u64 * 7 + seed) % 9) as usize;
        let mut cols: Vec<usize> = (0..nnz_row)
            .map(|_| (rng.next_u64() as usize) % ncols)
            .collect();
        cols.sort_unstable();
        cols.dedup();
        for c in cols {
            coo.push(i, c, rng.next_f64()).expect("in-bounds push");
        }
    }
    coo.to_csr()
}

fn random_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = XorShift(seed | 1);
    (0..n).map(|_| rng.next_f64()).collect()
}

/// Independent spmv reference: the documented scalar accumulation order.
fn spmv_reference(m: &CsrMatrix, x: &[f64]) -> Vec<f64> {
    let (nrows, _) = m.shape();
    let mut y = vec![0.0; nrows];
    for i in 0..nrows {
        let (cols, vals) = m.row(i);
        let mut acc = 0.0;
        for (&c, &v) in cols.iter().zip(vals) {
            acc += v * x[c];
        }
        y[i] = acc;
    }
    y
}

/// Independent spmm reference: per output row, zero then accumulate each
/// nonzero's strip left to right.
fn spmm_reference(m: &CsrMatrix, x: &[f64], k: usize) -> Vec<f64> {
    let (nrows, _) = m.shape();
    let mut y = vec![0.0; nrows * k];
    for i in 0..nrows {
        let (cols, vals) = m.row(i);
        let out_row = &mut y[i * k..(i + 1) * k];
        for (&c, &v) in cols.iter().zip(vals) {
            for (d, &s) in out_row.iter_mut().zip(&x[c * k..c * k + k]) {
                *d += v * s;
            }
        }
    }
    y
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: slot {i} differs: {g:?} (0x{:016x}) vs {w:?} (0x{:016x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

#[test]
fn spmv_matches_scalar_reference_bitwise_across_row_counts() {
    // Sizes straddle the 4-row SIMD grouping (tails of 0..=3 rows).
    for &n in &[1usize, 2, 3, 4, 5, 7, 8, 17, 64, 101] {
        let m = ragged_csr(n, n.max(3), 42 + n as u64);
        let x = random_vec(n.max(3), 7 + n as u64);
        let y = m.mul_vec(&x);
        assert_bits_eq(&y, &spmv_reference(&m, &x), &format!("spmv n={n}"));
    }
}

#[test]
fn spmv_parallel_path_matches_reference_bitwise() {
    // Dense-ish matrix above SPMV_PAR_NNZ_THRESHOLD (16 * 1024 nonzeros)
    // so the rayon chunked path runs the SIMD row groups too.
    let n = 200;
    let mut rng = XorShift(99);
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        for c in 0..n / 2 {
            coo.push(i, c * 2, rng.next_f64()).expect("push");
        }
    }
    let m = coo.to_csr();
    assert!(
        m.nnz() >= 16 * 1024,
        "workload must cross the parallel threshold"
    );
    let x = random_vec(n, 3);
    let y = m.mul_vec(&x);
    assert_bits_eq(&y, &spmv_reference(&m, &x), "parallel spmv");
}

#[test]
fn spmv_signed_zero_rows_survive_masked_lanes() {
    // Short rows holding exact signed zeros sit next to longer rows, so
    // their lanes spend most steps masked off. Whatever sign the scalar
    // accumulation produces, the SIMD lane must reproduce it bit-for-bit
    // (the masked update is a blend, not an `acc + 0.0`, precisely so
    // masked steps cannot perturb a lane's zero sign).
    let mut coo = CooMatrix::new(4, 4);
    coo.push(0, 0, -0.0).expect("push");
    for c in 0..4 {
        coo.push(1, c, 1.5 + c as f64).expect("push");
        coo.push(2, c, -2.5 * c as f64).expect("push");
    }
    coo.push(3, 3, 4.0).expect("push");
    let m = coo.to_csr();
    for x0 in [1.0, -1.0, -0.0, 0.0] {
        let x = vec![x0, 1.0, 1.0, 1.0];
        let y = m.mul_vec(&x);
        assert_bits_eq(&y, &spmv_reference(&m, &x), "signed-zero spmv");
    }
}

#[test]
fn spmm_matches_scalar_reference_bitwise_across_widths() {
    // Panel widths straddle the 4-lane strips (tails of 0..=3 columns).
    for &k in &[1usize, 2, 3, 4, 5, 8, 11, 64] {
        let n = 23;
        let m = ragged_csr(n, n, 5 + k as u64);
        let x = random_vec(n * k, 13 + k as u64);
        let mut y = vec![0.0; n * k];
        m.mul_panel_into(&x, &mut y, k);
        assert_bits_eq(&y, &spmm_reference(&m, &x, k), &format!("spmm k={k}"));
    }
}

#[test]
fn spmm_dense_interface_matches_reference_bitwise() {
    let n = 37;
    let k = 6;
    let m = ragged_csr(n, n, 77);
    let x = DenseMatrix::from_vec(n, k, random_vec(n * k, 21)).expect("shape");
    let out = m.mul_dense(&x).expect("spmm");
    assert_bits_eq(
        out.as_slice(),
        &spmm_reference(&m, x.as_slice(), k),
        "mul_dense",
    );
}

#[test]
fn dist2_sq4_matches_scalar_reference_bitwise() {
    use cirstag_linalg::vecops;

    // Scalar reference replaying the documented accumulation: per lane,
    // left to right, `(x − y)·(x − y)` then add — no FMA, no reassociation.
    fn reference(a: &[f64], b: [&[f64]; 4]) -> [f64; 4] {
        let mut out = [0.0f64; 4];
        for (lane, c) in b.iter().enumerate() {
            let mut acc = 0.0f64;
            for (x, y) in a.iter().zip(c.iter()) {
                let d = x - y;
                acc += d * d;
            }
            out[lane] = acc;
        }
        out
    }

    // Lengths straddle any unrolling and include the empty slice; the
    // fixture mixes in exact signed zeros.
    for &len in &[0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100] {
        let mut rng = XorShift(0xD157 + len as u64);
        let a: Vec<f64> = (0..len).map(|_| rng.next_f64()).collect();
        let rows: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..len).map(|_| rng.next_f64()).collect())
            .collect();
        let b = [
            rows[0].as_slice(),
            rows[1].as_slice(),
            rows[2].as_slice(),
            rows[3].as_slice(),
        ];
        let got = vecops::dist2_sq4(&a, b);
        let want = reference(&a, b);
        for lane in 0..4 {
            assert_eq!(
                got[lane].to_bits(),
                want[lane].to_bits(),
                "dist2_sq4 lane {lane} diverged at len {len}: {} vs {}",
                got[lane],
                want[lane]
            );
        }
    }

    // A lane identical to the query must come back exactly +0.0.
    let mut rng = XorShift(99);
    let a: Vec<f64> = (0..12).map(|_| rng.next_f64()).collect();
    let got = vecops::dist2_sq4(&a, [&a, &a, &a, &a]);
    for lane in 0..4 {
        assert_eq!(got[lane].to_bits(), 0.0f64.to_bits());
    }
}
