use std::error::Error;
use std::fmt;

/// Error type for linear-algebra operations.
///
/// Every fallible public function in this crate returns `Result<_, LinalgError>`.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand, `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand, `(rows, cols)`.
        right: (usize, usize),
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending `(row, col)` index.
        index: (usize, usize),
        /// The matrix shape `(rows, cols)`.
        shape: (usize, usize),
    },
    /// An iterative algorithm failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input contained a non-finite (NaN or infinite) value.
    NonFinite {
        /// Description of where the non-finite value was observed.
        context: &'static str,
    },
    /// An argument was invalid for a reason not covered by the other variants.
    InvalidArgument {
        /// Description of the requirement that was violated.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            LinalgError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            LinalgError::NonFinite { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            LinalgError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn no_convergence_mentions_algorithm() {
        let e = LinalgError::NoConvergence {
            algorithm: "lanczos",
            iterations: 50,
        };
        assert!(e.to_string().contains("lanczos"));
        assert!(e.to_string().contains("50"));
    }
}
