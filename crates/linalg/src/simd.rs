//! AVX2 fast paths for the CSR kernels (`simd` cargo feature).
//!
//! Contract: **bit-identical results** to the scalar kernels in `sparse.rs`.
//! Nothing here is allowed to reassociate a sum or contract a
//! multiply-then-add into an FMA, because the η-score rankings downstream
//! compare floats for exact reproducibility across feature sets.
//!
//! Three shapes keep that promise while still vectorizing:
//!
//! - [`axpy`] (spmm panel strips): `dst[j] += v * src[j]` is elementwise —
//!   lanes never interact — so a 4-wide multiply-then-add performs exactly
//!   the scalar op per element, just four elements at a time.
//! - [`spmv_rows`]: vectorizing *within* one CSR row would change the
//!   accumulation order, so instead four **rows** share one vector and each
//!   lane replays its own row's scalar left-to-right accumulation. Rows of
//!   different lengths are handled with masked gathers plus a blend, so a
//!   lane that has exhausted its row keeps its accumulator untouched
//!   (a blend, not `+ 0.0`, which would flip a `-0.0` partial sum).
//! - [`dist2_sq4`] (kNN distance inner loop): the same lane-per-row trick
//!   for squared distances — one query against four equal-length candidate
//!   rows, each lane replaying `dist2_sq`'s scalar subtract → square → add
//!   sequence left to right.
//!
//! This module is the only unsafe code in the workspace: the crate root
//! relaxes `forbid(unsafe_code)` to `deny(unsafe_code)` only when the
//! feature is on, the `#[allow(unsafe_code)]` grants below are scoped to
//! single functions, and `cirstag-lint`'s `unsafe-safety` rule verifies
//! that every unsafe block and function carries a SAFETY rationale.
//!
//! Dispatch is total: every entry point signals `false`/`None` when the
//! AVX2 path is unavailable (non-x86_64 target, or the CPU lacks AVX2 at
//! runtime), and the caller runs its scalar loop — so enabling the feature
//! on any host is safe and never changes results.

/// `dst[j] += v * src[j]` over the common prefix, 4 lanes at a time.
///
/// Returns `false` (having written nothing) when the AVX2 path is
/// unavailable or the slices disagree in length; the caller must then run
/// the scalar strip loop.
#[allow(unsafe_code)]
pub(crate) fn axpy(v: f64, src: &[f64], dst: &mut [f64]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if src.len() == dst.len() && x86::avx2_available() {
        // SAFETY: AVX2 availability was checked on this line's condition,
        // which is `axpy_avx2`'s only target-feature precondition.
        unsafe { x86::axpy_avx2(v, src, dst) };
        return true;
    }
    let _ = (v, src, dst);
    false
}

/// Squared distances from `a` to four candidate rows, one lane per
/// candidate — the kNN distance inner loop. Each lane replays
/// `vecops::dist2_sq`'s scalar accumulation exactly: left to right over the
/// dimensions, `(x − y)·(x − y)` then add, no FMA, so the quad is
/// bit-identical to four scalar calls.
///
/// Returns `None` (having computed nothing) when the AVX2 path is
/// unavailable or any candidate's length differs from `a`'s; the caller
/// must then run the scalar loop (which owns the length-mismatch panic
/// contract).
#[allow(unsafe_code)]
pub(crate) fn dist2_sq4(a: &[f64], b: [&[f64]; 4]) -> Option<[f64; 4]> {
    #[cfg(target_arch = "x86_64")]
    if b.iter().all(|c| c.len() == a.len()) && x86::avx2_available() {
        // SAFETY: AVX2 availability was checked on this line's condition,
        // and all four candidate slices were checked equal in length to
        // `a`, which is `dist2_sq4_avx2`'s only other precondition.
        return Some(unsafe { x86::dist2_sq4_avx2(a, b) });
    }
    let _ = (a, b);
    None
}

/// SpMV over a row window: `y[r] = Σ values[k] · x[col_idx[k]]` for each
/// row `r`, where `row_ptr` is the window `&csr.row_ptr[base..=base + n]`
/// (so `row_ptr.len() == y.len() + 1`) and its entries index the matrix's
/// full `col_idx`/`values` arrays.
///
/// Each SIMD lane accumulates one row in the row's scalar order (multiply
/// then add per nonzero, no FMA), so the result is bit-identical to
/// `CsrMatrix::mul_vec_row`. Returns `false` (having written nothing) when
/// the AVX2 path is unavailable or the window is malformed; the caller must
/// then run the scalar row loop.
///
/// The unsafe gathers below rely on the `CsrMatrix` representation
/// invariants: `row_ptr` is monotone with entries bounded by
/// `values.len() == col_idx.len()`, and every stored column index is
/// `< ncols == x.len()` (enforced at construction by `CooMatrix::push` /
/// `to_csr` and never weakened afterwards).
#[allow(unsafe_code)]
pub(crate) fn spmv_rows(
    row_ptr: &[usize],
    col_idx: &[usize],
    values: &[f64],
    x: &[f64],
    y: &mut [f64],
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if row_ptr.len() != y.len() + 1 || !x86::avx2_available() {
            return false;
        }
        let n = y.len();
        let mut i = 0usize;
        while i + 4 <= n {
            let Some((lo, hi)) = bounds4(row_ptr, i) else {
                return false;
            };
            // SAFETY: AVX2 was detected above. `lo`/`hi` come straight
            // from the CSR row pointers, so the gather bounds hold by the
            // representation invariants spelled out in the doc comment.
            let quad = unsafe { x86::spmv_rows4(lo, hi, col_idx, values, x) };
            y[i..i + 4].copy_from_slice(&quad);
            i += 4;
        }
        // Tail rows (< 4) replay the same scalar accumulation the vector
        // lanes perform, which is also exactly `mul_vec_row`'s loop.
        while i < n {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            let mut acc = 0.0;
            for (&c, &v) in col_idx[lo..hi].iter().zip(&values[lo..hi]) {
                acc += v * x[c];
            }
            y[i] = acc;
            i += 1;
        }
        true
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (row_ptr, col_idx, values, x, y);
        false
    }
}

/// Start/end offsets of rows `i..i + 4` as `i64` lanes for the gather
/// index vectors. `None` if an offset exceeds `i64::MAX` (impossible for a
/// real matrix, but the conversion stays checked rather than `as`-cast).
#[cfg(target_arch = "x86_64")]
fn bounds4(row_ptr: &[usize], i: usize) -> Option<([i64; 4], [i64; 4])> {
    let mut lo = [0i64; 4];
    let mut hi = [0i64; 4];
    for l in 0..4 {
        lo[l] = i64::try_from(row_ptr[i + l]).ok()?;
        hi[l] = i64::try_from(row_ptr[i + l + 1]).ok()?;
    }
    Some((lo, hi))
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m256i, _mm256_add_epi64, _mm256_add_pd, _mm256_blendv_pd, _mm256_castsi256_pd,
        _mm256_cmpgt_epi64, _mm256_loadu_pd, _mm256_mask_i64gather_epi64, _mm256_mask_i64gather_pd,
        _mm256_mul_pd, _mm256_set1_epi64x, _mm256_set1_pd, _mm256_set_epi64x, _mm256_set_pd,
        _mm256_setzero_pd, _mm256_setzero_si256, _mm256_storeu_pd, _mm256_sub_pd,
    };

    /// Runtime AVX2 probe (cached by the standard library).
    pub(super) fn avx2_available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// 4-wide `dst[j] += v * src[j]` with a scalar tail.
    ///
    /// Per element this is one multiply followed by one add — the same two
    /// IEEE-754 operations, in the same order, as the scalar strip loop —
    /// so the result is bit-identical.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the caller checks
    /// [`avx2_available`]), and `src.len()` must equal `dst.len()`.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(v: f64, src: &[f64], dst: &mut [f64]) {
        let n = dst.len();
        let vv = _mm256_set1_pd(v);
        let mut j = 0usize;
        while j + 4 <= n {
            // SAFETY: `j + 4 <= n` and the caller guarantees
            // `src.len() == dst.len() == n`, so both unaligned 4-lane
            // accesses stay in bounds.
            unsafe {
                let s = _mm256_loadu_pd(src.as_ptr().add(j));
                let d = _mm256_loadu_pd(dst.as_ptr().add(j));
                _mm256_storeu_pd(
                    dst.as_mut_ptr().add(j),
                    _mm256_add_pd(d, _mm256_mul_pd(vv, s)),
                );
            }
            j += 4;
        }
        while j < n {
            dst[j] += v * src[j];
            j += 1;
        }
    }

    /// Four squared distances in lockstep: lane `l` accumulates
    /// `Σ_j (a[j] − b[l][j])²` left to right, subtract → multiply → add per
    /// dimension (no FMA) — the exact operation sequence of the scalar
    /// `dist2_sq` loop, so each lane is bit-identical to its scalar call.
    /// The four candidate loads per dimension are scalar (`_mm256_set_pd`);
    /// the win is the 4-wide subtract/multiply/add that follows.
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the caller checks [`avx2_available`]),
    /// and every `b[l].len()` must equal `a.len()`.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dist2_sq4_avx2(a: &[f64], b: [&[f64]; 4]) -> [f64; 4] {
        let mut acc = _mm256_setzero_pd();
        let [b0, b1, b2, b3] = b;
        for (j, &x) in a.iter().enumerate() {
            let xv = _mm256_set1_pd(x);
            let yv = _mm256_set_pd(b3[j], b2[j], b1[j], b0[j]);
            let diff = _mm256_sub_pd(xv, yv);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
        }
        let mut out = [0.0f64; 4];
        // SAFETY: `out` is exactly four `f64`s, matching the 256-bit
        // unaligned store.
        unsafe { _mm256_storeu_pd(out.as_mut_ptr(), acc) };
        out
    }

    /// Four CSR rows in lockstep: lane `l` accumulates row `l`'s dot
    /// product `Σ values[k] · x[col_idx[k]]` for `k` in `lo[l]..hi[l]`,
    /// left to right, multiply then add (no FMA). Lanes whose rows are
    /// exhausted are masked out of the gathers and *blended* out of the
    /// accumulator update, so their partial sums pass through every step
    /// untouched (adding a masked `0.0` instead would turn a `-0.0`
    /// partial sum into `+0.0`).
    ///
    /// # Safety
    ///
    /// The CPU must support AVX2 (the caller checks [`avx2_available`]),
    /// and for each lane `l`: `lo[l] <= hi[l] <= values.len() ==
    /// col_idx.len()`, with `col_idx[k] < x.len()` for every `k` in
    /// `lo[l]..hi[l]` — the `CsrMatrix` representation invariants.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn spmv_rows4(
        lo: [i64; 4],
        hi: [i64; 4],
        col_idx: &[usize],
        values: &[f64],
        x: &[f64],
    ) -> [f64; 4] {
        let [lo0, lo1, lo2, lo3] = lo;
        let [hi0, hi1, hi2, hi3] = hi;
        let start = _mm256_set_epi64x(lo3, lo2, lo1, lo0);
        let end = _mm256_set_epi64x(hi3, hi2, hi1, hi0);
        let zero = _mm256_setzero_pd();
        let zero_i: __m256i = _mm256_setzero_si256();
        let mut acc = zero;
        let steps = lo
            .iter()
            .zip(&hi)
            .map(|(&l, &h)| h.saturating_sub(l))
            .max()
            .unwrap_or(0);
        let mut t = 0i64;
        while t < steps {
            let idx = _mm256_add_epi64(start, _mm256_set1_epi64x(t));
            // Lane active while its cursor is before the row end.
            let mask_i = _mm256_cmpgt_epi64(end, idx);
            let mask = _mm256_castsi256_pd(mask_i);
            // SAFETY: active lanes have `lo[l] + t < hi[l] <=
            // values.len() == col_idx.len()`; masked-off lanes perform no
            // memory access (vgatherqpd/vpgatherqq semantics). `col_idx`
            // holds `usize` values, identical in layout to `i64` on
            // x86_64 and `< x.len() < i64::MAX`, so reading them as `i64`
            // lanes is exact.
            let (vals, cols) = unsafe {
                (
                    _mm256_mask_i64gather_pd::<8>(zero, values.as_ptr(), idx, mask),
                    _mm256_mask_i64gather_epi64::<8>(zero_i, col_idx.as_ptr().cast(), idx, mask_i),
                )
            };
            // SAFETY: active lanes gathered a stored column index, which
            // is `< x.len()` by the CSR invariant; masked-off lanes (whose
            // `cols` lane is the zero source value) access no memory.
            let xv = unsafe { _mm256_mask_i64gather_pd::<8>(zero, x.as_ptr(), cols, mask) };
            let prod = _mm256_mul_pd(vals, xv);
            acc = _mm256_blendv_pd(acc, _mm256_add_pd(acc, prod), mask);
            t += 1;
        }
        let mut out = [0.0f64; 4];
        // SAFETY: `out` is exactly four `f64`s, matching the 256-bit
        // unaligned store.
        unsafe { _mm256_storeu_pd(out.as_mut_ptr(), acc) };
        out
    }
}
