//! Dense and sparse linear-algebra primitives for the CirSTAG stack.
//!
//! This crate is deliberately dependency-free: everything the higher layers
//! need — dense row-major matrices, CSR/COO sparse matrices, vector kernels,
//! a symmetric tridiagonal eigensolver (used by the Lanczos iteration in
//! `cirstag-solver`), and a small dense symmetric eigensolver (Jacobi
//! rotations) — is implemented here from scratch.
//!
//! # Example
//!
//! ```
//! use cirstag_linalg::{CooMatrix, DenseMatrix};
//!
//! # fn main() -> Result<(), cirstag_linalg::LinalgError> {
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 2.0)?;
//! coo.push(1, 1, 3.0)?;
//! coo.push(2, 2, 4.0)?;
//! let csr = coo.to_csr();
//! let y = csr.mul_vec(&[1.0, 1.0, 1.0]);
//! assert_eq!(y, vec![2.0, 3.0, 4.0]);
//! let eye = DenseMatrix::identity(3);
//! assert_eq!(eye.get(1, 1), 1.0);
//! # Ok(())
//! # }
//! ```

// `unsafe` is banned outright in the default build. The `simd` feature
// relaxes the ban to `deny` so the `simd` module alone can carry scoped
// `#[allow(unsafe_code)]` for its AVX2 intrinsics; every such block is
// required (and lint-checked) to carry a `// SAFETY:` rationale.
#![cfg_attr(not(feature = "simd"), forbid(unsafe_code))]
#![cfg_attr(feature = "simd", deny(unsafe_code))]
#![warn(missing_docs)]

pub mod audit;
mod dense;
mod error;
pub mod fail;
pub mod par;
mod qr;
#[cfg(feature = "simd")]
mod simd;
mod sparse;
mod symeig;
mod tridiag;
pub mod vecops;

pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use qr::{least_squares, qr_decompose, QrDecomposition};
pub use sparse::{CooMatrix, CsrMatrix};
pub use symeig::jacobi_eigen;
pub use tridiag::{tridiag_eigen, TridiagEigen};
