use crate::{DenseMatrix, LinalgError};

/// Eigendecomposition of a symmetric tridiagonal matrix.
///
/// Produced by [`tridiag_eigen`]; consumed by the Lanczos eigensolver in
/// `cirstag-solver` to convert the Lanczos tridiagonal into Ritz pairs.
#[derive(Debug, Clone)]
pub struct TridiagEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvector matrix: column `j` (i.e. `eigenvectors.column(j)`) is the
    /// unit eigenvector for `eigenvalues[j]`.
    pub eigenvectors: DenseMatrix,
}

/// Computes all eigenpairs of the symmetric tridiagonal matrix with main
/// diagonal `diag` and off-diagonal `offdiag` (`offdiag.len() == diag.len() - 1`).
///
/// Uses the implicit QL algorithm with Wilkinson shifts — O(n²) per sweep,
/// O(n³) total including eigenvector accumulation, which is fine for the
/// small (≤ a few hundred) tridiagonals produced by Lanczos.
///
/// # Errors
///
/// - [`LinalgError::InvalidArgument`] when `offdiag.len() + 1 != diag.len()`
///   (except that both may be empty).
/// - [`LinalgError::NoConvergence`] when a single eigenvalue fails to
///   converge in 50 QL sweeps (practically unreachable for finite input).
/// - [`LinalgError::NonFinite`] when the input contains NaN or ±∞.
pub fn tridiag_eigen(diag: &[f64], offdiag: &[f64]) -> Result<TridiagEigen, LinalgError> {
    let n = diag.len();
    if n == 0 {
        return Ok(TridiagEigen {
            eigenvalues: Vec::new(),
            eigenvectors: DenseMatrix::zeros(0, 0),
        });
    }
    if offdiag.len() + 1 != n {
        return Err(LinalgError::InvalidArgument {
            reason: format!(
                "offdiag length {} must be diag length {} minus one",
                offdiag.len(),
                n
            ),
        });
    }
    if !crate::vecops::all_finite(diag) || !crate::vecops::all_finite(offdiag) {
        return Err(LinalgError::NonFinite {
            context: "tridiag_eigen input",
        });
    }

    let mut d = diag.to_vec();
    // e is padded with a trailing zero per the classic tqli formulation.
    let mut e: Vec<f64> = offdiag.to_vec();
    e.push(0.0);
    let mut z = DenseMatrix::identity(n);

    for l in 0..n {
        let mut iter = 0usize;
        loop {
            // Find a small off-diagonal element to split the problem.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > 50 {
                return Err(LinalgError::NoConvergence {
                    algorithm: "tridiagonal QL",
                    iterations: 50,
                });
            }
            // Wilkinson shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                // cirstag-lint: allow(float-discipline) -- exact-zero off-diagonal test from the EISPACK tql2 recurrence
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    f = z.get(k, i + 1);
                    let zki = z.get(k, i);
                    z.set(k, i + 1, s * zki + c * f);
                    z.set(k, i, c * zki - s * f);
                }
            }
            // cirstag-lint: allow(float-discipline) -- exact-zero off-diagonal test from the EISPACK tql2 recurrence
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending, permuting eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].total_cmp(&d[b]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut eigenvectors = DenseMatrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            eigenvectors.set(i, new_j, z.get(i, old_j));
        }
    }
    Ok(TridiagEigen {
        eigenvalues,
        eigenvectors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tridiag_dense(diag: &[f64], off: &[f64]) -> DenseMatrix {
        let n = diag.len();
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, diag[i]);
        }
        for i in 0..off.len() {
            m.set(i, i + 1, off[i]);
            m.set(i + 1, i, off[i]);
        }
        m
    }

    #[test]
    fn one_by_one() {
        let r = tridiag_eigen(&[7.0], &[]).unwrap();
        assert_eq!(r.eigenvalues, vec![7.0]);
        assert_eq!(r.eigenvectors.get(0, 0).abs(), 1.0);
    }

    #[test]
    fn two_by_two_known() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let r = tridiag_eigen(&[2.0, 2.0], &[1.0]).unwrap();
        assert!((r.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((r.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn diagonal_matrix_returns_sorted_diagonal() {
        let r = tridiag_eigen(&[3.0, 1.0, 2.0], &[0.0, 0.0]).unwrap();
        assert_eq!(r.eigenvalues, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn path_laplacian_eigenvalues() {
        // Laplacian of the path graph P4: eigenvalues 2 - 2cos(kπ/4), k=0..3.
        let diag = [1.0, 2.0, 2.0, 1.0];
        let off = [-1.0, -1.0, -1.0];
        let r = tridiag_eigen(&diag, &off).unwrap();
        for (k, &lam) in r.eigenvalues.iter().enumerate() {
            let expect = 2.0 - 2.0 * (std::f64::consts::PI * k as f64 / 4.0).cos();
            assert!((lam - expect).abs() < 1e-10, "k={k}: {lam} vs {expect}");
        }
    }

    #[test]
    fn eigenpairs_satisfy_definition() {
        let diag = [4.0, 1.0, -2.0, 3.0, 0.5];
        let off = [0.5, -1.5, 2.0, 0.1];
        let r = tridiag_eigen(&diag, &off).unwrap();
        let a = tridiag_dense(&diag, &off);
        for j in 0..diag.len() {
            let v = r.eigenvectors.column(j);
            let av = a.mul_vec(&v).unwrap();
            for i in 0..diag.len() {
                assert!(
                    (av[i] - r.eigenvalues[j] * v[i]).abs() < 1e-9,
                    "residual too large at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let diag = [1.0, 2.0, 3.0, 4.0];
        let off = [1.0, 1.0, 1.0];
        let r = tridiag_eigen(&diag, &off).unwrap();
        let q = &r.eigenvectors;
        let qtq = q.transpose().matmul(q).unwrap();
        assert!(qtq.max_abs_diff(&DenseMatrix::identity(4)).unwrap() < 1e-10);
    }

    #[test]
    fn rejects_bad_lengths_and_nan() {
        assert!(tridiag_eigen(&[1.0, 2.0], &[]).is_err());
        assert!(tridiag_eigen(&[f64::NAN], &[]).is_err());
    }

    #[test]
    fn empty_input_ok() {
        let r = tridiag_eigen(&[], &[]).unwrap();
        assert!(r.eigenvalues.is_empty());
    }
}
