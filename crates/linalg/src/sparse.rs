use crate::{par, DenseMatrix, LinalgError};

/// Minimum multiply–add count before the panel spmm fans row blocks out
/// across the thread pool; mirrors the dense-matmul threshold.
const PANEL_PAR_FLOP_THRESHOLD: usize = 64 * 1024;

/// Rows per parallel chunk in the panel spmm. Each chunk is produced by
/// exactly one thread with the serial row kernel, so chunking never changes
/// results.
const PANEL_ROW_CHUNK: usize = 32;

/// Minimum nonzero count before the spmv fans row blocks out across the
/// thread pool. A matrix–vector product does one multiply–add per nonzero,
/// so below this the dispatch overhead dominates any speedup.
const SPMV_PAR_NNZ_THRESHOLD: usize = 16 * 1024;

/// Rows per parallel chunk in the spmv. As with the panel product, each
/// chunk is produced by one thread with the serial row kernel, so results
/// are bit-identical at every thread count.
const SPMV_ROW_CHUNK: usize = 256;

/// `dst[j] += v * src[j]`: the panel kernel's per-nonzero strip update.
/// With the `simd` feature enabled (and AVX2 present at runtime) the
/// 4-wide path performs the identical per-element multiply-then-add (no
/// FMA), so results stay bit-identical to this scalar loop.
fn strip_axpy(v: f64, src: &[f64], dst: &mut [f64]) {
    #[cfg(feature = "simd")]
    if crate::simd::axpy(v, src, dst) {
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += v * s;
    }
}

/// A sparse matrix in coordinate (triplet) format, used for assembly.
///
/// Duplicate entries are allowed and are summed when converting to CSR,
/// which makes `CooMatrix` a convenient accumulator for Laplacian assembly.
///
/// # Example
///
/// ```
/// use cirstag_linalg::CooMatrix;
///
/// # fn main() -> Result<(), cirstag_linalg::LinalgError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 1.0)?;
/// coo.push(0, 0, 2.0)?; // duplicates are summed
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    vals: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows × ncols` COO matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with reserved capacity for `nnz` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, nnz: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(nnz),
            cols: Vec::with_capacity(nnz),
            vals: Vec::with_capacity(nnz),
        }
    }

    /// Appends the entry `(i, j) += v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] when `(i, j)` is outside the
    /// matrix shape.
    pub fn push(&mut self, i: usize, j: usize, v: f64) -> Result<(), LinalgError> {
        if i >= self.nrows || j >= self.ncols {
            return Err(LinalgError::IndexOutOfBounds {
                index: (i, j),
                shape: (self.nrows, self.ncols),
            });
        }
        self.rows.push(i);
        self.cols.push(j);
        self.vals.push(v);
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored triplets (before duplicate merging).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Converts to CSR, summing duplicate entries and dropping explicit zeros.
    pub fn to_csr(&self) -> CsrMatrix {
        // Count entries per row.
        let mut counts = vec![0usize; self.nrows];
        for &r in &self.rows {
            counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; self.nrows + 1];
        for i in 0..self.nrows {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        // Scatter into per-row buckets.
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut next = row_ptr.clone();
        for k in 0..self.nnz() {
            let r = self.rows[k];
            let slot = next[r];
            col_idx[slot] = self.cols[k];
            values[slot] = self.vals[k];
            next[r] += 1;
        }
        // Sort each row by column and merge duplicates / drop zeros.
        let mut out_ptr = Vec::with_capacity(self.nrows + 1);
        let mut out_cols = Vec::with_capacity(self.nnz());
        let mut out_vals = Vec::with_capacity(self.nnz());
        out_ptr.push(0usize);
        for r in 0..self.nrows {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            let mut entries: Vec<(usize, f64)> = col_idx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            entries.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < entries.len() {
                let c = entries[i].0;
                let mut v = 0.0;
                while i < entries.len() && entries[i].0 == c {
                    v += entries[i].1;
                    i += 1;
                }
                // cirstag-lint: allow(float-discipline) -- exact-zero drop keeps the CSR canonical: explicit zeros are never stored
                if v != 0.0 {
                    out_cols.push(c);
                    out_vals.push(v);
                }
            }
            out_ptr.push(out_cols.len());
        }
        CsrMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: out_ptr,
            col_idx: out_cols,
            values: out_vals,
        }
    }
}

/// A sparse matrix in compressed sparse row (CSR) format.
///
/// CSR is the operational format: sparse matrix–vector products (`spmv`) and
/// sparse–dense products (`spmm`) run directly on it. Construct via
/// [`CooMatrix::to_csr`] or [`CsrMatrix::from_triplets`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix directly from `(row, col, value)` triplets.
    ///
    /// Duplicates are summed; explicit zeros are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::IndexOutOfBounds`] for any triplet outside the
    /// given shape.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, LinalgError> {
        let mut coo = CooMatrix::with_capacity(nrows, ncols, triplets.len());
        for &(i, j, v) in triplets {
            coo.push(i, j, v)?;
        }
        Ok(coo.to_csr())
    }

    /// Creates an `n × n` identity in CSR form.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Creates a diagonal matrix from the given entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            nrows: n,
            ncols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the stored value at `(i, j)`, or `0.0` when absent.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        let (cols, vals) = self.row(i);
        match cols.binary_search(&j) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        }
    }

    /// Borrows the column indices and values of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.nrows, "row index out of bounds");
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates over all stored entries as `(row, col, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }

    /// Sparse matrix–vector product `self * x`.
    ///
    /// Infallible convenience form of [`CsrMatrix::try_mul_vec`] for call
    /// sites whose dimensions are correct by construction.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "mul_vec: dimension mismatch");
        let mut y = vec![0.0; self.nrows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Checked sparse matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.ncols`.
    pub fn try_mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let mut y = vec![0.0; self.nrows];
        self.try_mul_vec_into(x, &mut y)?;
        Ok(y)
    }

    /// Sparse matrix–vector product into a caller-provided buffer
    /// (`y ← self * x`), avoiding allocation in inner loops.
    ///
    /// Infallible convenience form of [`CsrMatrix::try_mul_vec_into`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols` or `y.len() != self.nrows`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "mul_vec_into: x dimension mismatch"); // cirstag-lint: allow(error-hygiene) -- documented panic contract of the infallible convenience form; try_mul_vec_into is the checked API
        assert_eq!(y.len(), self.nrows, "mul_vec_into: y dimension mismatch"); // cirstag-lint: allow(error-hygiene) -- documented panic contract of the infallible convenience form; try_mul_vec_into is the checked API
        self.mul_vec_kernel(x, y);
    }

    /// Checked in-place sparse matrix–vector product `y ← self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.ncols`
    /// or `y.len() != self.nrows`.
    pub fn try_mul_vec_into(&self, x: &[f64], y: &mut [f64]) -> Result<(), LinalgError> {
        if x.len() != self.ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_vec (input)",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        if y.len() != self.nrows {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_vec (output)",
                left: self.shape(),
                right: (y.len(), 1),
            });
        }
        self.mul_vec_kernel(x, y);
        Ok(())
    }

    /// Computes output row `i` of the matrix–vector product. Shared by the
    /// serial and parallel spmv paths so they agree bit-for-bit; the
    /// per-nonzero accumulation order matches the historical serial loop.
    fn mul_vec_row(&self, i: usize, x: &[f64]) -> f64 {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        let mut acc = 0.0;
        for (&c, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
            acc += v * x[c];
        }
        acc
    }

    /// Computes output rows `base..base + out.len()` of the product.
    /// Shared by the serial and parallel spmv paths. With the `simd`
    /// feature enabled (and AVX2 present at runtime) this takes the 4-row
    /// vectorized fast path, which is bit-identical to the scalar loop by
    /// construction: each SIMD lane replays one row's scalar left-to-right
    /// accumulation, multiply then add, no FMA.
    fn mul_vec_rows(&self, base: usize, x: &[f64], out: &mut [f64]) {
        #[cfg(feature = "simd")]
        if crate::simd::spmv_rows(
            &self.row_ptr[base..base + out.len() + 1],
            &self.col_idx,
            &self.values,
            x,
            out,
        ) {
            return;
        }
        for (off, slot) in out.iter_mut().enumerate() {
            *slot = self.mul_vec_row(base + off, x);
        }
    }

    fn mul_vec_kernel(&self, x: &[f64], y: &mut [f64]) {
        if self.nrows == 0 {
            return;
        }
        // cirstag-lint: allow(nondeterminism) -- threshold picks between serial and parallel paths that are bit-identical by construction
        if self.nnz() < SPMV_PAR_NNZ_THRESHOLD || par::current_num_threads() <= 1 {
            self.mul_vec_rows(0, x, y);
            return;
        }
        par::chunks_mut(y, SPMV_ROW_CHUNK, |ci, chunk| {
            self.mul_vec_rows(ci * SPMV_ROW_CHUNK, x, chunk);
        });
    }

    /// Sparse–dense product `self * m`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.ncols != m.nrows()`.
    pub fn mul_dense(&self, m: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        let mut out = DenseMatrix::zeros(self.nrows, m.ncols());
        self.mul_dense_into(m, &mut out)?;
        Ok(out)
    }

    /// Sparse–dense product into a caller-provided matrix (`out ← self * m`),
    /// avoiding allocation in inner loops.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.ncols != m.nrows()`
    /// or `out` is not `self.nrows × m.ncols()`.
    pub fn mul_dense_into(
        &self,
        m: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), LinalgError> {
        if self.ncols != m.nrows() {
            return Err(LinalgError::ShapeMismatch {
                op: "spmm",
                left: self.shape(),
                right: m.shape(),
            });
        }
        if out.shape() != (self.nrows, m.ncols()) {
            return Err(LinalgError::ShapeMismatch {
                op: "spmm (output)",
                left: (self.nrows, m.ncols()),
                right: out.shape(),
            });
        }
        let ncols = m.ncols();
        self.panel_kernel(m.as_slice(), out.as_mut_slice(), ncols);
        Ok(())
    }

    /// Blocked spmm: multiplies this matrix by a row-major `ncols`-wide dense
    /// panel (`x[i * ncols + j]` holds entry `(i, j)`), writing the product
    /// into `y` with the same layout.
    ///
    /// One CSR traversal advances all `ncols` columns in lockstep: each
    /// nonzero is read once and applied to a contiguous `ncols`-wide strip,
    /// which is what makes the block solvers amortize memory traffic across
    /// right-hand sides. Per output row the accumulation order equals
    /// [`CsrMatrix::mul_dense`] exactly, and large products are row-blocked
    /// across the thread pool with one thread per block, so results are
    /// bit-identical at every thread count.
    ///
    /// Infallible convenience form of [`CsrMatrix::try_mul_panel_into`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols * ncols` or
    /// `y.len() != self.nrows * ncols`.
    pub fn mul_panel_into(&self, x: &[f64], y: &mut [f64], ncols: usize) {
        // cirstag-lint: allow(error-hygiene) -- documented panic contract of the infallible convenience form; try_mul_panel_into is the checked API
        assert_eq!(
            x.len(),
            self.ncols * ncols,
            "mul_panel_into: x dimension mismatch"
        );
        // cirstag-lint: allow(error-hygiene) -- documented panic contract of the infallible convenience form; try_mul_panel_into is the checked API
        assert_eq!(
            y.len(),
            self.nrows * ncols,
            "mul_panel_into: y dimension mismatch"
        );
        self.panel_kernel(x, y, ncols);
    }

    /// Checked blocked spmm `y ← self * x` over row-major `ncols`-wide
    /// panels. See [`CsrMatrix::mul_panel_into`] for layout and determinism
    /// guarantees.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when
    /// `x.len() != self.ncols * ncols` or `y.len() != self.nrows * ncols`.
    pub fn try_mul_panel_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        ncols: usize,
    ) -> Result<(), LinalgError> {
        if x.len() != self.ncols * ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "spmm (input)",
                left: (self.ncols, ncols),
                right: (x.len(), 1),
            });
        }
        if y.len() != self.nrows * ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "spmm (output)",
                left: (self.nrows, ncols),
                right: (y.len(), 1),
            });
        }
        self.panel_kernel(x, y, ncols);
        Ok(())
    }

    /// Accumulates output row `i` of the panel product into `out_row`
    /// (`out_row.len() == k`). Shared by the serial and parallel paths so
    /// they agree bit-for-bit; the per-nonzero order matches the historical
    /// `mul_dense` loop.
    fn panel_row_kernel(&self, i: usize, x: &[f64], out_row: &mut [f64], k: usize) {
        out_row.fill(0.0);
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        for (&c, &v) in self.col_idx[lo..hi].iter().zip(&self.values[lo..hi]) {
            strip_axpy(v, &x[c * k..c * k + k], out_row);
        }
    }

    fn panel_kernel(&self, x: &[f64], y: &mut [f64], k: usize) {
        if k == 0 || self.nrows == 0 {
            return;
        }
        let flops = self.nnz() * k;
        // cirstag-lint: allow(nondeterminism) -- threshold picks between serial and parallel paths that are bit-identical by construction
        if flops < PANEL_PAR_FLOP_THRESHOLD || par::current_num_threads() <= 1 {
            for (i, out_row) in y.chunks_mut(k).enumerate() {
                self.panel_row_kernel(i, x, out_row, k);
            }
            return;
        }
        par::chunks_mut(y, PANEL_ROW_CHUNK * k, |ci, chunk| {
            let base = ci * PANEL_ROW_CHUNK;
            for (off, out_row) in chunk.chunks_mut(k).enumerate() {
                self.panel_row_kernel(base + off, x, out_row, k);
            }
        });
    }

    /// Returns the transpose in CSR form.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols];
        for &c in &self.col_idx {
            counts[c] += 1;
        }
        let mut row_ptr = vec![0usize; self.ncols + 1];
        for i in 0..self.ncols {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = row_ptr.clone();
        for i in 0..self.nrows {
            let (cols, vals) = self.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                let slot = next[j];
                col_idx[slot] = i;
                values[slot] = v;
                next[j] += 1;
            }
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Extracts the main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.nrows.min(self.ncols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// Returns `true` when the matrix equals its transpose up to `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        if t.row_ptr != self.row_ptr || t.col_idx != self.col_idx {
            // Sparsity patterns differ; fall back to a value-wise comparison.
            return self.iter().all(|(i, j, v)| (v - t.get(i, j)).abs() <= tol)
                && t.iter().all(|(i, j, v)| (v - self.get(i, j)).abs() <= tol);
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Computes the quadratic form `xᵀ self x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match the (square) matrix dimension.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        let y = self.mul_vec(x);
        crate::vecops::dot(x, &y)
    }

    /// Scales every stored value by `alpha` in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Returns `self + alpha * I`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] when the matrix is not square.
    pub fn add_scaled_identity(&self, alpha: f64) -> Result<CsrMatrix, LinalgError> {
        if self.nrows != self.ncols {
            return Err(LinalgError::InvalidArgument {
                reason: "add_scaled_identity requires a square matrix".to_string(),
            });
        }
        let mut coo = CooMatrix::with_capacity(self.nrows, self.ncols, self.nnz() + self.nrows);
        for (i, j, v) in self.iter() {
            coo.push(i, j, v)?;
        }
        for i in 0..self.nrows {
            coo.push(i, i, alpha)?;
        }
        Ok(coo.to_csr())
    }

    /// Converts to a dense matrix (for small problems and tests).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.nrows, self.ncols);
        for (i, j, v) in self.iter() {
            m.set(i, j, v);
        }
        m
    }

    /// Checks the CSR structural invariants every kernel in this crate
    /// assumes: `row_ptr` has `nrows + 1` monotone entries ending at `nnz`,
    /// every column index is in bounds, columns are strictly increasing
    /// within each row (sorted, no duplicates), and all stored values are
    /// finite.
    ///
    /// This is the audit entry point of the `validate` feature cascade — the
    /// kernels themselves never re-check these invariants on hot paths.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn well_formed(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(format!(
                "row_ptr has {} entries, expected nrows + 1 = {}",
                self.row_ptr.len(),
                self.nrows + 1
            ));
        }
        if self.row_ptr.first().copied() != Some(0) {
            return Err("row_ptr does not start at 0".to_string());
        }
        if self.row_ptr.last().copied() != Some(self.values.len()) {
            return Err(format!(
                "row_ptr ends at {:?} but nnz = {}",
                self.row_ptr.last(),
                self.values.len()
            ));
        }
        if self.col_idx.len() != self.values.len() {
            return Err(format!(
                "col_idx has {} entries but values has {}",
                self.col_idx.len(),
                self.values.len()
            ));
        }
        for i in 0..self.nrows {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            if lo > hi {
                return Err(format!("row_ptr decreases at row {i} ({lo} > {hi})"));
            }
            let mut prev: Option<usize> = None;
            for k in lo..hi {
                let j = self.col_idx[k];
                if j >= self.ncols {
                    return Err(format!(
                        "row {i} stores column {j}, out of bounds for ncols = {}",
                        self.ncols
                    ));
                }
                if prev.is_some_and(|p| p >= j) {
                    return Err(format!(
                        "row {i} columns are not strictly increasing at entry {k} \
                         ({:?} then {j})",
                        prev
                    ));
                }
                if !self.values[k].is_finite() {
                    return Err(format!(
                        "row {i}, column {j} stores a non-finite value {}",
                        self.values[k]
                    ));
                }
                prev = Some(j);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn coo_push_bounds_checked() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(coo.push(2, 0, 1.0).is_err());
        assert!(coo.push(0, 2, 1.0).is_err());
        assert!(coo.push(1, 1, 1.0).is_ok());
    }

    #[test]
    fn duplicates_summed_zeros_dropped() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(0, 0, 2.0).unwrap();
        coo.push(1, 1, 5.0).unwrap();
        coo.push(1, 1, -5.0).unwrap();
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 3.0);
        assert_eq!(csr.nnz(), 1); // the cancelled entry is dropped
    }

    #[test]
    fn spmv_known() {
        let m = sample();
        let y = m.mul_vec(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn spmv_into_matches_alloc() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        m.mul_vec_into(&x, &mut y);
        assert_eq!(y, m.mul_vec(&x));
    }

    #[test]
    fn checked_spmv_matches_and_rejects_mismatch() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.try_mul_vec(&x).unwrap(), m.mul_vec(&x));
        assert!(matches!(
            m.try_mul_vec(&[1.0, 2.0]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let mut short = vec![0.0; 2];
        assert!(matches!(
            m.try_mul_vec_into(&x, &mut short),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn spmm_matches_dense() {
        let m = sample();
        let d = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let out = m.mul_dense(&d).unwrap();
        let dense_out = m.to_dense().matmul(&d).unwrap();
        assert!(out.max_abs_diff(&dense_out).unwrap() < 1e-14);
    }

    #[test]
    fn get_binary_search_pins_sorted_duplicate_free_rows() {
        // CSR construction sorts each row and merges duplicates, so `get`
        // may binary-search the column slice. Pin that contract: on a matrix
        // whose rows are sorted and duplicate-free by construction, `get`
        // returns every stored value and exact zero for every absent slot.
        let m = CsrMatrix::from_triplets(
            4,
            6,
            &[
                (0, 5, 1.5),
                (0, 0, -2.0),
                (0, 3, 4.0),
                (1, 2, 7.0),
                (3, 1, -1.0),
                (3, 4, 9.0),
            ],
        )
        .unwrap();
        // Rows are strictly increasing in column index (the invariant that
        // licenses binary search).
        assert!(m.well_formed().is_ok());
        let dense = m.to_dense();
        for i in 0..4 {
            for j in 0..6 {
                assert_eq!(m.get(i, j), dense.get(i, j), "mismatch at ({i}, {j})");
            }
        }
        // Row 2 is empty: every probe hits the Err arm of the search.
        for j in 0..6 {
            assert_eq!(m.get(2, j), 0.0);
        }
    }

    #[test]
    fn panel_spmm_matches_mul_dense_bitwise() {
        // Deterministic pseudo-random 9x9 matrix with ~40% fill.
        let mut trips = Vec::new();
        let mut state = 0x1234_5678_u64;
        for i in 0..9 {
            for j in 0..9 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                if state >> 62 != 0 {
                    trips.push((i, j, ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5));
                }
            }
        }
        let m = CsrMatrix::from_triplets(9, 9, &trips).unwrap();
        for k in [1usize, 3, 7] {
            let mut panel = vec![0.0; 9 * k];
            for (idx, v) in panel.iter_mut().enumerate() {
                *v = (idx as f64).sin();
            }
            let d = DenseMatrix::from_vec(9, k, panel.clone()).unwrap();
            let reference = m.mul_dense(&d).unwrap();
            let mut y = vec![1.0; 9 * k]; // nonzero garbage: kernel must overwrite
            m.mul_panel_into(&panel, &mut y, k);
            assert_eq!(y.as_slice(), reference.as_slice(), "k = {k}");
            let mut y2 = vec![0.0; 9 * k];
            m.try_mul_panel_into(&panel, &mut y2, k).unwrap();
            assert_eq!(y2.as_slice(), reference.as_slice());
        }
    }

    #[test]
    fn panel_spmm_rejects_bad_shapes() {
        let m = sample();
        let x = vec![0.0; 6];
        let mut y = vec![0.0; 5];
        assert!(matches!(
            m.try_mul_panel_into(&x, &mut y, 2),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        let mut y_short = vec![0.0; 6];
        assert!(matches!(
            m.try_mul_panel_into(&x[..4], &mut y_short, 2),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        // Zero-width panels are a no-op, not an error.
        assert!(m.try_mul_panel_into(&[], &mut [], 0).is_ok());
    }

    #[test]
    fn mul_dense_into_matches_and_rejects_bad_output() {
        let m = sample();
        let d = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let reference = m.mul_dense(&d).unwrap();
        let mut out = DenseMatrix::zeros(3, 2);
        m.mul_dense_into(&d, &mut out).unwrap();
        assert_eq!(out, reference);
        let mut bad = DenseMatrix::zeros(2, 2);
        assert!(matches!(
            m.mul_dense_into(&d, &mut bad),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
        assert_eq!(m.transpose().get(0, 2), 4.0);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sample().diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 2.0), (1, 0, 2.0), (0, 0, 1.0)]).unwrap();
        assert!(sym.is_symmetric(1e-12));
        assert!(!sample().is_symmetric(1e-12));
    }

    #[test]
    fn quadratic_form_known() {
        let m = CsrMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(m.quadratic_form(&[1.0, 1.0, 1.0]), 6.0);
    }

    #[test]
    fn identity_and_diagonal_constructors() {
        let i = CsrMatrix::identity(3);
        assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let d = CsrMatrix::from_diagonal(&[2.0, 4.0]);
        assert_eq!(d.mul_vec(&[1.0, 1.0]), vec![2.0, 4.0]);
    }

    #[test]
    fn add_scaled_identity_shifts_diagonal() {
        let m = sample();
        let shifted = m.add_scaled_identity(10.0).unwrap();
        assert_eq!(shifted.get(0, 0), 11.0);
        assert_eq!(shifted.get(1, 1), 13.0);
        assert_eq!(shifted.get(0, 2), 2.0);
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = sample();
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries.len(), 5);
        assert!(entries.contains(&(2, 0, 4.0)));
    }

    #[test]
    fn empty_matrix_is_usable() {
        let m = CooMatrix::new(0, 0).to_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.mul_vec(&[]), Vec::<f64>::new());
    }

    #[test]
    fn well_formed_accepts_valid_matrices() {
        assert!(sample().well_formed().is_ok());
        assert!(CsrMatrix::identity(4).well_formed().is_ok());
        assert!(CooMatrix::new(0, 0).to_csr().well_formed().is_ok());
    }

    #[test]
    fn well_formed_rejects_non_finite_values() {
        let mut m = sample();
        m.scale(f64::NAN);
        let err = m.well_formed().unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }

    #[test]
    fn well_formed_rejects_structural_corruption() {
        // Direct construction (same module, private fields) lets the test
        // produce states `from_triplets` can never emit.
        let out_of_bounds = CsrMatrix {
            nrows: 2,
            ncols: 2,
            row_ptr: vec![0, 1, 2],
            col_idx: vec![0, 5],
            values: vec![1.0, 2.0],
        };
        assert!(out_of_bounds
            .well_formed()
            .unwrap_err()
            .contains("out of bounds"));

        let duplicate_cols = CsrMatrix {
            nrows: 1,
            ncols: 3,
            row_ptr: vec![0, 2],
            col_idx: vec![1, 1],
            values: vec![1.0, 2.0],
        };
        assert!(duplicate_cols
            .well_formed()
            .unwrap_err()
            .contains("strictly increasing"));

        let bad_ptr = CsrMatrix {
            nrows: 2,
            ncols: 2,
            row_ptr: vec![0, 2, 1],
            col_idx: vec![0, 1],
            values: vec![1.0, 2.0],
        };
        assert!(bad_ptr.well_formed().is_err());

        let truncated_ptr = CsrMatrix {
            nrows: 2,
            ncols: 2,
            row_ptr: vec![0, 1],
            col_idx: vec![0],
            values: vec![1.0],
        };
        assert!(truncated_ptr.well_formed().unwrap_err().contains("row_ptr"));
    }
}
