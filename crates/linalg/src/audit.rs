//! Runtime invariant audits backing the workspace `validate` feature.
//!
//! These checks are deliberately *spot checks*: cheap enough to run at phase
//! boundaries in debug and `validate` builds (a handful of sparse
//! matrix–vector products), strong enough to catch the corruption classes
//! the paper's math cannot survive — asymmetric or indefinite Laplacians
//! (Eq. 5 requires `L = Σ w_pq e_pq e_pqᵀ ⪰ 0`), malformed CSR storage, and
//! non-finite weights. The helpers compile unconditionally; *callers* gate
//! them behind `#[cfg(any(feature = "validate", debug_assertions))]` so
//! release builds pay nothing.

use crate::CsrMatrix;

/// Number of deterministic probe vectors used by [`psd_spot_check`].
const PSD_PROBES: usize = 4;

/// Relative tolerance for the symmetry and PSD spot checks.
pub const AUDIT_TOL: f64 = 1e-8;

/// Deterministic xorshift probe generator — audits must never perturb the
/// pipeline's seeded randomness or depend on ambient entropy.
fn probe_vector(n: usize, probe: usize) -> Vec<f64> {
    // cirstag-lint: allow(cast-truncation) -- probe index: lossless usize -> u64 on 64-bit hosts, and any wrap only reseeds the mix
    let mut state = 0x9e37_79b9_7f4a_7c15u64 ^ ((probe as u64 + 1) << 17);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Map to [-1, 1); exact powers of two keep this bit-reproducible.
            (state >> 11) as f64 / (1u64 << 52) as f64 - 1.0
        })
        .collect()
}

/// Audits a graph Laplacian at a phase boundary: CSR well-formedness,
/// squareness, symmetry, and positive semidefiniteness (spot-checked with
/// [`PSD_PROBES`] deterministic probe vectors).
///
/// Returns every violation found, empty when the matrix passes. Violations
/// are ordered structural-first so the most fundamental failure leads.
pub fn laplacian_violations(l: &CsrMatrix, context: &str) -> Vec<String> {
    let mut out = Vec::new();
    if let Err(e) = l.well_formed() {
        out.push(format!("{context}: CSR malformed: {e}"));
        // Structural corruption makes the numeric checks meaningless (and
        // potentially panicky) — stop here.
        return out;
    }
    let (nr, nc) = l.shape();
    if nr != nc {
        out.push(format!("{context}: Laplacian is {nr}x{nc}, not square"));
        return out;
    }
    // Scale-aware tolerance: |L|_max spans ~1/epsilon for manifold weights.
    let scale = l
        .iter()
        .map(|(_, _, v)| v.abs())
        .fold(1.0f64, |a, b| a.max(b));
    if !l.is_symmetric(AUDIT_TOL * scale) {
        out.push(format!(
            "{context}: Laplacian is not symmetric (tol {:.1e})",
            AUDIT_TOL * scale
        ));
    }
    if let Err(e) = psd_spot_check(l, scale) {
        out.push(format!("{context}: {e}"));
    }
    out
}

/// Spot-checks positive semidefiniteness: `xᵀLx ≥ -tol·scale·n` for a fixed
/// set of deterministic probe vectors. A true PSD matrix passes for every
/// `x`; a clearly indefinite one fails with high probability per probe.
///
/// # Errors
///
/// Returns a description of the first probe whose quadratic form is
/// negative beyond tolerance.
pub fn psd_spot_check(l: &CsrMatrix, scale: f64) -> Result<(), String> {
    let n = l.nrows();
    if n == 0 {
        return Ok(());
    }
    let floor = -AUDIT_TOL * scale * n as f64;
    for probe in 0..PSD_PROBES {
        let x = probe_vector(n, probe);
        let q = l.quadratic_form(&x);
        // `is_nan` is checked explicitly: values are already known finite
        // from `well_formed`, but a probe product could still overflow.
        if q.is_nan() || q < floor {
            return Err(format!(
                "quadratic form xᵀLx = {q:.3e} below the PSD floor {floor:.3e} \
                 on probe {probe} (matrix is not positive semidefinite)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    /// Path-graph Laplacian on n nodes: tridiagonal, symmetric, PSD.
    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push(i, i, 1.0).unwrap();
            coo.push(i + 1, i + 1, 1.0).unwrap();
            coo.push(i, i + 1, -1.0).unwrap();
            coo.push(i + 1, i, -1.0).unwrap();
        }
        coo.to_csr()
    }

    #[test]
    fn clean_laplacian_passes() {
        assert!(laplacian_violations(&path_laplacian(12), "test").is_empty());
    }

    #[test]
    fn nan_values_fail_structural_check() {
        let mut l = path_laplacian(6);
        l.scale(f64::NAN);
        let v = laplacian_violations(&l, "test");
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("CSR malformed"), "{v:?}");
    }

    #[test]
    fn asymmetric_matrix_flagged() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 5.0).unwrap();
        coo.push(1, 0, -5.0).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.push(2, 2, 1.0).unwrap();
        let v = laplacian_violations(&coo.to_csr(), "test");
        assert!(v.iter().any(|m| m.contains("not symmetric")), "{v:?}");
    }

    #[test]
    fn negative_definite_matrix_flagged() {
        let l = CsrMatrix::from_diagonal(&[-1.0, -2.0, -3.0, -4.0]);
        let v = laplacian_violations(&l, "test");
        assert!(v.iter().any(|m| m.contains("PSD floor")), "{v:?}");
    }

    #[test]
    fn non_square_flagged() {
        let mut coo = CooMatrix::new(2, 3);
        coo.push(0, 0, 1.0).unwrap();
        let v = laplacian_violations(&coo.to_csr(), "test");
        assert!(v.iter().any(|m| m.contains("not square")), "{v:?}");
    }

    #[test]
    fn probes_are_deterministic() {
        assert_eq!(probe_vector(8, 0), probe_vector(8, 0));
        assert_ne!(probe_vector(8, 0), probe_vector(8, 1));
    }
}
