//! Workspace-wide parallel execution helpers.
//!
//! This module is the single seam between the CirSTAG crates and the
//! underlying thread pool. It exists in every build: with the `parallel`
//! feature (the default) the helpers fan work out across a persistent rayon
//! pool; without it they run the same code serially. Call sites are written
//! once against this API and are oblivious to the feature state.
//!
//! # Determinism contract
//!
//! Every helper assigns work item `i` a fixed output slot `i` and performs no
//! cross-item reductions, so results are **bit-identical** for any thread
//! count, including the serial build. Callers must uphold the same rule: a
//! closure passed here must depend only on its index (and shared read-only
//! state), never on execution order.

/// Sets the worker-thread count for all subsequent parallel sections.
///
/// `0` means "use all available cores". Values above the core count are
/// honoured (oversubscription), which keeps multi-thread determinism tests
/// meaningful on small machines. In serial builds this is a no-op.
pub fn set_num_threads(n: usize) {
    #[cfg(feature = "parallel")]
    rayon::set_num_threads(n);
    #[cfg(not(feature = "parallel"))]
    let _ = n;
}

/// Number of threads parallel sections will use (`1` in serial builds).
pub fn current_num_threads() -> usize {
    #[cfg(feature = "parallel")]
    {
        rayon::current_num_threads()
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Computes `f(i)` for every `i in 0..n`, returning results in index order.
pub fn map_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    #[cfg(feature = "parallel")]
    {
        rayon::par_map_indexed(n, f)
    }
    #[cfg(not(feature = "parallel"))]
    {
        (0..n).map(f).collect()
    }
}

/// Fallible variant of [`map_indexed`]: returns all results in index order,
/// or the error of the lowest-indexed failing item (deterministic regardless
/// of which thread hit an error first).
///
/// # Errors
///
/// Propagates the first error by item index.
pub fn try_map_indexed<T, E, F>(n: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    #[cfg(feature = "parallel")]
    {
        rayon::par_map_indexed(n, f).into_iter().collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        (0..n).map(f).collect()
    }
}

/// Calls `f(chunk_index, chunk)` on consecutive `chunk_len`-sized pieces of
/// `data` (last chunk may be shorter). Chunks are disjoint, so `f` needs no
/// synchronisation.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
pub fn chunks_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be non-zero"); // cirstag-lint: allow(error-hygiene) -- documented panic contract; every call site passes a nonzero constant chunk length
    #[cfg(feature = "parallel")]
    {
        rayon::par_chunks_mut(data, chunk_len, f);
    }
    #[cfg(not(feature = "parallel"))]
    {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_order() {
        let v = map_indexed(100, |i| i * i);
        assert_eq!(v, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let r: Result<Vec<usize>, usize> =
            try_map_indexed(50, |i| if i % 7 == 3 { Err(i) } else { Ok(i) });
        assert_eq!(r.unwrap_err(), 3);
    }

    #[test]
    fn chunks_cover_all_elements() {
        let mut data = vec![0u32; 37];
        chunks_mut(&mut data, 5, |ci, chunk| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (ci * 5 + j) as u32;
            }
        });
        assert_eq!(data, (0..37).collect::<Vec<u32>>());
    }
}
