//! Householder QR decomposition and least-squares solving for small dense
//! systems (model-fit diagnostics, subspace orthonormalization).

use crate::{DenseMatrix, LinalgError};

/// A thin QR decomposition `A = Q R` with `Q` (m × n) having orthonormal
/// columns and `R` (n × n) upper triangular, computed by Householder
/// reflections (numerically stable for the modest sizes used here).
#[derive(Debug, Clone)]
pub struct QrDecomposition {
    /// Orthonormal factor (m × n).
    pub q: DenseMatrix,
    /// Upper-triangular factor (n × n).
    pub r: DenseMatrix,
}

/// Computes the thin QR decomposition of `a` (requires `m ≥ n`).
///
/// # Errors
///
/// - [`LinalgError::InvalidArgument`] when `a` has more columns than rows.
/// - [`LinalgError::NonFinite`] when `a` contains NaN or ±∞.
///
/// # Example
///
/// ```
/// use cirstag_linalg::{qr_decompose, DenseMatrix};
///
/// # fn main() -> Result<(), cirstag_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]])?;
/// let qr = qr_decompose(&a)?;
/// let rebuilt = qr.q.matmul(&qr.r)?;
/// assert!(rebuilt.max_abs_diff(&a)? < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn qr_decompose(a: &DenseMatrix) -> Result<QrDecomposition, LinalgError> {
    let m = a.nrows();
    let n = a.ncols();
    if n > m {
        return Err(LinalgError::InvalidArgument {
            reason: format!("thin QR requires rows ≥ cols, got {m}x{n}"),
        });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite {
            context: "qr_decompose input",
        });
    }
    // Work on a copy; accumulate Householder vectors.
    let mut r_full = a.clone();
    let mut vs: Vec<Vec<f64>> = Vec::with_capacity(n);
    for k in 0..n {
        // Householder vector for column k below the diagonal.
        let mut v: Vec<f64> = (k..m).map(|i| r_full.get(i, k)).collect();
        let alpha = -v[0].signum() * v.iter().map(|x| x * x).sum::<f64>().sqrt(); // cirstag-lint: allow(no-panic-in-lib) -- v spans rows k..m with k < n <= m, so it is never empty
        if alpha.abs() < 1e-300 {
            vs.push(vec![0.0; m - k]);
            continue;
        }
        v[0] -= alpha; // cirstag-lint: allow(no-panic-in-lib) -- v spans rows k..m with k < n <= m, so it is never empty
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-300 {
            vs.push(vec![0.0; m - k]);
            continue;
        }
        // Apply H = I − 2 v vᵀ / ‖v‖² to the remaining columns.
        for j in k..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * r_full.get(i, j)).sum();
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                let cur = r_full.get(i, j);
                r_full.set(i, j, cur - scale * v[i - k]);
            }
        }
        vs.push(v);
    }
    // Extract R (top n × n block).
    let mut r = DenseMatrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            r.set(i, j, r_full.get(i, j));
        }
    }
    // Form thin Q by applying reflections to the first n identity columns,
    // in reverse order.
    let mut q = DenseMatrix::zeros(m, n);
    for j in 0..n {
        q.set(j, j, 1.0);
    }
    for k in (0..n).rev() {
        let v = &vs[k];
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-300 {
            continue;
        }
        for j in 0..n {
            let dot: f64 = (k..m).map(|i| v[i - k] * q.get(i, j)).sum();
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                let cur = q.get(i, j);
                q.set(i, j, cur - scale * v[i - k]);
            }
        }
    }
    Ok(QrDecomposition { q, r })
}

/// Solves the least-squares problem `min ‖A x − b‖₂` via QR.
///
/// # Errors
///
/// - Propagates [`qr_decompose`] failures.
/// - [`LinalgError::ShapeMismatch`] when `b.len() != a.nrows()`.
/// - [`LinalgError::InvalidArgument`] when `A` is rank-deficient (a zero
///   pivot on `R`'s diagonal).
pub fn least_squares(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if b.len() != a.nrows() {
        return Err(LinalgError::ShapeMismatch {
            op: "least_squares",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let qr = qr_decompose(a)?;
    let n = a.ncols();
    // y = Qᵀ b.
    let y: Vec<f64> = (0..n)
        .map(|j| (0..a.nrows()).map(|i| qr.q.get(i, j) * b[i]).sum())
        .collect();
    // Back-substitute R x = y.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for j in (i + 1)..n {
            acc -= qr.r.get(i, j) * x[j];
        }
        let pivot = qr.r.get(i, i);
        if pivot.abs() < 1e-12 {
            return Err(LinalgError::InvalidArgument {
                reason: format!("rank-deficient system: zero pivot at column {i}"),
            });
        }
        x[i] = acc / pivot;
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q_has_orthonormal_columns() {
        let a = DenseMatrix::from_rows(&[
            vec![2.0, -1.0, 0.5],
            vec![1.0, 3.0, -2.0],
            vec![0.0, 1.0, 1.0],
            vec![4.0, 0.5, 2.0],
        ])
        .unwrap();
        let qr = qr_decompose(&a).unwrap();
        let qtq = qr.q.transpose().matmul(&qr.q).unwrap();
        assert!(qtq.max_abs_diff(&DenseMatrix::identity(3)).unwrap() < 1e-12);
    }

    #[test]
    fn r_is_upper_triangular_and_reconstructs() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let qr = qr_decompose(&a).unwrap();
        assert_eq!(qr.r.get(1, 0), 0.0);
        let rebuilt = qr.q.matmul(&qr.r).unwrap();
        assert!(rebuilt.max_abs_diff(&a).unwrap() < 1e-12);
    }

    #[test]
    fn least_squares_fits_line() {
        // Fit y = 2x + 1 exactly.
        let a = DenseMatrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0]]).unwrap();
        let b = [1.0, 3.0, 5.0];
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn least_squares_minimizes_residual_for_overdetermined() {
        // Noisy line: the LS residual must be orthogonal to the columns.
        let a = DenseMatrix::from_rows(&[
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![2.0, 1.0],
            vec![3.0, 1.0],
        ])
        .unwrap();
        let b = [0.9, 3.2, 4.8, 7.1];
        let x = least_squares(&a, &b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        let residual: Vec<f64> = ax.iter().zip(&b).map(|(p, t)| p - t).collect();
        for j in 0..2 {
            let col = a.column(j);
            let dot: f64 = col.iter().zip(&residual).map(|(c, r)| c * r).sum();
            assert!(dot.abs() < 1e-10, "residual not orthogonal to column {j}");
        }
    }

    #[test]
    fn validation() {
        let wide = DenseMatrix::zeros(2, 3);
        assert!(qr_decompose(&wide).is_err());
        let a = DenseMatrix::from_rows(&[vec![1.0], vec![f64::NAN]]).unwrap();
        assert!(qr_decompose(&a).is_err());
        let ok = DenseMatrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        assert!(least_squares(&ok, &[1.0, 2.0, 3.0]).is_err());
        // Rank-deficient: duplicated column.
        let rd = DenseMatrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0], vec![3.0, 3.0]]).unwrap();
        assert!(least_squares(&rd, &[1.0, 2.0, 3.0]).is_err());
    }
}
