//! Deterministic failpoint injection for resilience testing.
//!
//! A failpoint is a named site in the numeric stack (e.g. `solver/lanczos`)
//! that tests can *arm* with a [`FailAction`]. Instrumented code calls
//! [`check`] (or [`trigger`]) at the site; when the point is armed the site
//! reacts — returning its typed failure, corrupting its output with a NaN,
//! or stalling — exactly as if the underlying numerics had misbehaved. This
//! makes every rung of the pipeline's fallback ladders drivable from tests
//! without flaky timing tricks or adversarial fixtures.
//!
//! Naming scheme: `<stage>/<site>`, with the stage matching the pipeline
//! phase or solver that hosts the site (`solver/lanczos`, `solver/geig`,
//! `solver/cg`, `solver/cg-block-column`, `solver/dense-solve`,
//! `solver/dense-geig`, `phase1/nan`, `phase1/stall`, `phase2/stall`,
//! `phase3/nan`, `phase3/stall`).
//!
//! The whole registry is compiled out unless the `failpoints` cargo feature
//! is enabled: without it [`check`] is an inline `None` and the arming API
//! is absent, so production builds carry zero overhead and zero risk of
//! accidental injection. The registry is process-global; tests that arm
//! failpoints must serialize themselves (the armed state is shared across
//! threads) and disarm afterwards.

/// What an armed failpoint makes the instrumented site do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// The site reports its typed failure (e.g. `NoConvergence`).
    Error,
    /// The site corrupts its output with a NaN.
    Nan,
    /// The site sleeps this many milliseconds before continuing.
    StallMs(u64),
}

#[cfg(feature = "failpoints")]
mod registry {
    use super::FailAction;
    use std::collections::HashMap; // cirstag-lint: allow(determinism) -- registry is keyed lookup only and never iterated, so map order cannot leak into results
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Entry {
        action: FailAction,
        /// Remaining firings; `usize::MAX` means "always".
        remaining: usize,
        hits: usize,
    }

    // cirstag-lint: allow(determinism) -- registry is keyed lookup only and never iterated, so map order cannot leak into results
    fn map() -> MutexGuard<'static, HashMap<String, Entry>> {
        static MAP: OnceLock<Mutex<HashMap<String, Entry>>> = OnceLock::new(); // cirstag-lint: allow(determinism) -- registry is keyed lookup only and never iterated, so map order cannot leak into results
        MAP.get_or_init(|| Mutex::new(HashMap::new())) // cirstag-lint: allow(determinism) -- registry is keyed lookup only and never iterated, so map order cannot leak into results
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Arms `name` to fire `action` the next `times` times it is checked.
    pub fn arm(name: &str, action: FailAction, times: usize) {
        map().insert(
            name.to_string(),
            Entry {
                action,
                remaining: times,
                hits: 0,
            },
        );
    }

    /// Arms `name` to fire `action` on every check until disarmed.
    pub fn arm_always(name: &str, action: FailAction) {
        arm(name, action, usize::MAX);
    }

    /// Disarms `name` (no-op when not armed).
    pub fn disarm(name: &str) {
        map().remove(name);
    }

    /// Disarms every failpoint in the process.
    pub fn reset() {
        map().clear();
    }

    /// How many times `name` has fired since it was last armed.
    pub fn hits(name: &str) -> usize {
        map().get(name).map_or(0, |e| e.hits)
    }

    pub(super) fn check(name: &str) -> Option<FailAction> {
        let mut m = map();
        let e = m.get_mut(name)?;
        if e.remaining == 0 {
            return None;
        }
        if e.remaining != usize::MAX {
            e.remaining -= 1;
        }
        e.hits += 1;
        Some(e.action)
    }
}

#[cfg(feature = "failpoints")]
pub use registry::{arm, arm_always, disarm, hits, reset};

/// Consults the registry for `name`, consuming one firing when armed.
///
/// Always `None` when the `failpoints` feature is disabled.
#[inline]
pub fn check(name: &str) -> Option<FailAction> {
    #[cfg(feature = "failpoints")]
    {
        registry::check(name)
    }
    #[cfg(not(feature = "failpoints"))]
    {
        let _ = name;
        None
    }
}

/// Like [`check`], but handles [`FailAction::StallMs`] in place (the caller
/// only ever sees `Error` or `Nan`). Use at sites that cannot meaningfully
/// stall themselves.
#[inline]
pub fn trigger(name: &str) -> Option<FailAction> {
    match check(name) {
        Some(FailAction::StallMs(ms)) => {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            None
        }
        other => other,
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// The registry is process-global, so these tests serialize themselves.
    fn serial() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn unarmed_is_none() {
        let _g = serial();
        reset();
        assert_eq!(check("nope/never"), None);
        assert_eq!(hits("nope/never"), 0);
    }

    #[test]
    fn fires_exactly_n_times() {
        let _g = serial();
        reset();
        arm("t/a", FailAction::Error, 2);
        assert_eq!(check("t/a"), Some(FailAction::Error));
        assert_eq!(check("t/a"), Some(FailAction::Error));
        assert_eq!(check("t/a"), None);
        assert_eq!(hits("t/a"), 2);
        reset();
    }

    #[test]
    fn arm_always_until_disarm() {
        let _g = serial();
        reset();
        arm_always("t/b", FailAction::Nan);
        for _ in 0..5 {
            assert_eq!(check("t/b"), Some(FailAction::Nan));
        }
        disarm("t/b");
        assert_eq!(check("t/b"), None);
        reset();
    }

    #[test]
    fn trigger_absorbs_stall() {
        let _g = serial();
        reset();
        arm("t/c", FailAction::StallMs(1), 1);
        let t0 = std::time::Instant::now();
        assert_eq!(trigger("t/c"), None);
        assert!(t0.elapsed() >= std::time::Duration::from_millis(1));
        assert_eq!(hits("t/c"), 1);
        reset();
    }
}
