use crate::{DenseMatrix, LinalgError};

/// Computes all eigenpairs of a small dense symmetric matrix via cyclic
/// Jacobi rotations.
///
/// Returns `(eigenvalues, eigenvectors)` with eigenvalues ascending and
/// eigenvector `j` stored in column `j`. Intended for matrices up to a few
/// hundred rows (embedding dimensions, Gram matrices); use the Lanczos path
/// in `cirstag-solver` for large sparse operators.
///
/// # Errors
///
/// - [`LinalgError::InvalidArgument`] when `a` is not square or not symmetric
///   within `1e-8` relative tolerance.
/// - [`LinalgError::NonFinite`] when the input contains NaN or ±∞.
/// - [`LinalgError::NoConvergence`] when off-diagonal mass fails to vanish in
///   100 sweeps.
///
/// # Example
///
/// ```
/// use cirstag_linalg::{jacobi_eigen, DenseMatrix};
///
/// # fn main() -> Result<(), cirstag_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let (vals, _vecs) = jacobi_eigen(&a)?;
/// assert!((vals[0] - 1.0).abs() < 1e-10);
/// assert!((vals[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn jacobi_eigen(a: &DenseMatrix) -> Result<(Vec<f64>, DenseMatrix), LinalgError> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(LinalgError::InvalidArgument {
            reason: format!(
                "jacobi_eigen requires a square matrix, got {}x{}",
                n,
                a.ncols()
            ),
        });
    }
    if !a.all_finite() {
        return Err(LinalgError::NonFinite {
            context: "jacobi_eigen input",
        });
    }
    let scale = a.frobenius_norm().max(1.0);
    for i in 0..n {
        for j in (i + 1)..n {
            if (a.get(i, j) - a.get(j, i)).abs() > 1e-8 * scale {
                return Err(LinalgError::InvalidArgument {
                    reason: "jacobi_eigen requires a symmetric matrix".to_string(),
                });
            }
        }
    }
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);
    let max_sweeps = 100;
    for _sweep in 0..max_sweeps {
        // Sum of squares of strictly upper-triangular entries.
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m.get(i, j) * m.get(i, j);
            }
        }
        if off.sqrt() <= 1e-13 * scale {
            return Ok(sorted_pairs(&m, &v));
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.abs() <= 1e-300 {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, θ) on both sides of m and
                // accumulate it into v.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    Err(LinalgError::NoConvergence {
        algorithm: "jacobi eigensolver",
        iterations: max_sweeps,
    })
}

fn sorted_pairs(m: &DenseMatrix, v: &DenseMatrix) -> (Vec<f64>, DenseMatrix) {
    let n = m.nrows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| m.get(a, a).total_cmp(&m.get(b, b)));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let mut vecs = DenseMatrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vecs.set(i, new_j, v.get(i, old_j));
        }
    }
    (eigenvalues, vecs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let (vals, _) = jacobi_eigen(&a).unwrap();
        assert_eq!(vals, vec![1.0, 3.0]);
    }

    #[test]
    fn residuals_small_on_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 8;
        let mut a = DenseMatrix::zeros(n, n);
        let mut x = 1234567u64;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a.set(i, j, v);
                a.set(j, i, v);
            }
        }
        let (vals, vecs) = jacobi_eigen(&a).unwrap();
        for j in 0..n {
            let v = vecs.column(j);
            let av = a.mul_vec(&v).unwrap();
            for i in 0..n {
                assert!((av[i] - vals[j] * v[i]).abs() < 1e-9);
            }
        }
        // Sorted ascending.
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = DenseMatrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -1.0],
            vec![0.5, -1.0, 2.0],
        ])
        .unwrap();
        let (_, q) = jacobi_eigen(&a).unwrap();
        let qtq = q.transpose().matmul(&q).unwrap();
        assert!(qtq.max_abs_diff(&DenseMatrix::identity(3)).unwrap() < 1e-10);
    }

    #[test]
    fn trace_preserved() {
        let a = DenseMatrix::from_rows(&[vec![5.0, 2.0], vec![2.0, -1.0]]).unwrap();
        let (vals, _) = jacobi_eigen(&a).unwrap();
        assert!((vals.iter().sum::<f64>() - 4.0).abs() < 1e-10);
    }

    #[test]
    fn rejects_nonsquare_and_asymmetric() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(jacobi_eigen(&a).is_err());
        let b = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0]]).unwrap();
        assert!(jacobi_eigen(&b).is_err());
    }

    #[test]
    fn rejects_nan() {
        let a = DenseMatrix::from_rows(&[vec![f64::NAN, 0.0], vec![0.0, 1.0]]).unwrap();
        assert!(matches!(
            jacobi_eigen(&a),
            Err(LinalgError::NonFinite { .. })
        ));
    }
}
