use crate::par;
use crate::vecops;
use crate::LinalgError;
use std::fmt;

/// Minimum multiply–add count before `matmul`/`mul_vec` fan rows out across
/// the thread pool; below this, thread handoff costs more than the math.
const PAR_FLOP_THRESHOLD: usize = 64 * 1024;

/// Rows of the right-hand operand processed per cache tile in the blocked
/// matmul: a tile of `MATMUL_K_TILE × ncols` doubles of `other` stays hot in
/// L2 while every output row in the current block consumes it.
const MATMUL_K_TILE: usize = 64;

/// Output rows per parallel chunk in the blocked matmul.
const MATMUL_ROW_CHUNK: usize = 16;

/// Accumulates one output row of `a * other` into `out_row` (ikj order: the
/// inner loop is contiguous in both `other` and `out_row`). Shared by the
/// serial and parallel matmul paths so they agree bit-for-bit.
fn matmul_row_kernel(a_row: &[f64], other: &DenseMatrix, out_row: &mut [f64]) {
    for (k, &a) in a_row.iter().enumerate() {
        // cirstag-lint: allow(float-discipline) -- bitwise sparsity skip, not a tolerance comparison; any nonzero must multiply
        if a == 0.0 {
            continue;
        }
        for (o, &b) in out_row.iter_mut().zip(other.row(k)) {
            *o += a * b;
        }
    }
}

/// Cache-blocked kernel for a block of output rows starting at `first_row`.
///
/// Tiles the shared `k` dimension so each `MATMUL_K_TILE`-row strip of
/// `other` is reused across every output row in the block instead of being
/// streamed from memory once per row. Per output element the accumulation
/// still runs over `k` in ascending order with the same exact-zero skip as
/// [`matmul_row_kernel`], so the result is bit-identical to the unblocked
/// kernel for any tile size, row blocking, or thread count.
fn matmul_block_kernel(
    a: &DenseMatrix,
    other: &DenseMatrix,
    first_row: usize,
    out_chunk: &mut [f64],
) {
    let ncols_out = other.ncols;
    let kdim = a.ncols;
    let mut kb = 0;
    while kb < kdim {
        let ke = (kb + MATMUL_K_TILE).min(kdim);
        for (local, out_row) in out_chunk.chunks_mut(ncols_out).enumerate() {
            let a_row = a.row(first_row + local);
            for (off, &av) in a_row[kb..ke].iter().enumerate() {
                // cirstag-lint: allow(float-discipline) -- bitwise sparsity skip, must match matmul_row_kernel exactly
                if av == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(other.row(kb + off)) {
                    *o += av * b;
                }
            }
        }
        kb = ke;
    }
}

/// A dense, row-major matrix of `f64` values.
///
/// `DenseMatrix` is the workhorse for embedding matrices (nodes × dimensions)
/// and for the small dense problems inside the eigensolvers. Storage is a
/// single contiguous `Vec<f64>`; row `i` occupies
/// `data[i * ncols .. (i + 1) * ncols]`.
///
/// # Example
///
/// ```
/// use cirstag_linalg::DenseMatrix;
///
/// # fn main() -> Result<(), cirstag_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// let b = a.transpose();
/// let c = a.matmul(&b)?;
/// assert_eq!(c.get(0, 0), 5.0); // [1,2]·[1,2]
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] when `data.len() != nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != nrows * ncols {
            return Err(LinalgError::InvalidArgument {
                reason: format!(
                    "buffer length {} does not match {}x{} shape",
                    data.len(),
                    nrows,
                    ncols
                ),
            });
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Creates a matrix from a slice of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] when rows have differing lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            if r.len() != ncols {
                return Err(LinalgError::InvalidArgument {
                    reason: format!("row length {} differs from first row {}", r.len(), ncols),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Creates a matrix from a list of equal-length columns.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidArgument`] when columns have differing lengths.
    pub fn from_columns(cols: &[Vec<f64>]) -> Result<Self, LinalgError> {
        let ncols = cols.len();
        let nrows = cols.first().map_or(0, Vec::len);
        let mut m = Self::zeros(nrows, ncols);
        for (j, c) in cols.iter().enumerate() {
            if c.len() != nrows {
                return Err(LinalgError::InvalidArgument {
                    reason: format!(
                        "column length {} differs from first column {}",
                        c.len(),
                        nrows
                    ),
                });
            }
            for (i, &v) in c.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        Ok(m)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Reads the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        self.data[i * self.ncols + j]
    }

    /// Writes the entry at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds"); // cirstag-lint: allow(error-hygiene) -- documented panic contract of the infallible indexing API
        self.data[i * self.ncols + j] = v;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.nrows, "row index out of bounds");
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.nrows, "row index out of bounds");
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Copies column `j` into a new `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= ncols`.
    pub fn column(&self, j: usize) -> Vec<f64> {
        assert!(j < self.ncols, "column index out of bounds");
        (0..self.nrows).map(|i| self.get(i, j)).collect()
    }

    /// Borrows the backing row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the backing row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the backing buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// Cache-blocked: the shared `k` dimension is tiled so strips of `other`
    /// stay L2-resident across output rows, and large products are
    /// row-blocked across the thread pool (see [`crate::par`]) with one
    /// thread per block. Per output element the accumulation order matches
    /// [`DenseMatrix::matmul_serial`], so the result is bit-identical for
    /// every tile size and thread count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.ncols != other.nrows`.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Matrix–matrix product into a caller-provided matrix
    /// (`out ← self * other`), avoiding allocation in inner loops.
    ///
    /// Same cache-blocked kernel and bit-identity guarantees as
    /// [`DenseMatrix::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.ncols != other.nrows`
    /// or `out` is not `self.nrows × other.ncols`.
    pub fn matmul_into(
        &self,
        other: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<(), LinalgError> {
        if self.ncols != other.nrows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        if out.shape() != (self.nrows, other.ncols) {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul (output)",
                left: (self.nrows, other.ncols),
                right: out.shape(),
            });
        }
        out.data.fill(0.0);
        if self.nrows == 0 || other.ncols == 0 {
            return Ok(());
        }
        let flops = self.nrows * self.ncols * other.ncols;
        // cirstag-lint: allow(nondeterminism) -- threshold picks between serial and parallel paths that are bit-identical by construction
        if flops < PAR_FLOP_THRESHOLD || par::current_num_threads() <= 1 {
            matmul_block_kernel(self, other, 0, &mut out.data);
            return Ok(());
        }
        let ncols_out = other.ncols;
        par::chunks_mut(&mut out.data, MATMUL_ROW_CHUNK * ncols_out, |ci, chunk| {
            matmul_block_kernel(self, other, ci * MATMUL_ROW_CHUNK, chunk);
        });
        Ok(())
    }

    /// Reference serial matrix–matrix product; always runs on the calling
    /// thread. [`DenseMatrix::matmul`] must agree with this bit-for-bit.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.ncols != other.nrows`.
    pub fn matmul_serial(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.ncols != other.nrows {
            return Err(LinalgError::ShapeMismatch {
                op: "matmul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            matmul_row_kernel(self.row(i), other, out.row_mut(i));
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x`.
    ///
    /// Large products compute rows in parallel; row `i` is always exactly
    /// `dot(self.row(i), x)`, so results are bit-identical for every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.ncols {
            return Err(LinalgError::ShapeMismatch {
                op: "mul_vec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        // cirstag-lint: allow(nondeterminism) -- threshold picks between serial and parallel paths that are bit-identical by construction
        if self.nrows * self.ncols < PAR_FLOP_THRESHOLD || par::current_num_threads() <= 1 {
            return Ok((0..self.nrows)
                .map(|i| vecops::dot(self.row(i), x))
                .collect());
        }
        Ok(par::map_indexed(self.nrows, |i| {
            vecops::dot(self.row(i), x)
        }))
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the shapes differ.
    pub fn add(&self, other: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "add",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        })
    }

    /// Returns `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> DenseMatrix {
        let data = self.data.iter().map(|a| alpha * a).collect();
        DenseMatrix {
            nrows: self.nrows,
            ncols: self.ncols,
            data,
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        vecops::norm2(&self.data)
    }

    /// Returns `true` when every entry is finite.
    pub fn all_finite(&self) -> bool {
        vecops::all_finite(&self.data)
    }

    /// Returns the maximum absolute difference from `other`, for testing.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when the shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> Result<f64, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "max_abs_diff",
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs())))
    }

    /// Iterates over rows as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.ncols.max(1))
    }
}

impl Default for DenseMatrix {
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.nrows, self.ncols)?;
        let show = self.nrows.min(8);
        for i in 0..show {
            let cols = self.ncols.min(8);
            let entries: Vec<String> = (0..cols)
                .map(|j| format!("{:10.4}", self.get(i, j)))
                .collect();
            let ellipsis = if self.ncols > cols { " …" } else { "" };
            writeln!(f, "[{}{}]", entries.join(" "), ellipsis)?;
        }
        if self.nrows > show {
            writeln!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = DenseMatrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = DenseMatrix::identity(3);
        assert_eq!(i.get(0, 0), 1.0);
        assert_eq!(i.get(0, 1), 0.0);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_and_columns_agree() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_columns(&[vec![1.0, 3.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(DenseMatrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_serial_reference() {
        // Odd shapes exercise ragged k-tiles and row blocks; sprinkled exact
        // zeros exercise the sparsity skip both kernels must share.
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state >> 61 == 0 {
                0.0
            } else {
                ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
            }
        };
        let a = DenseMatrix::from_vec(37, 91, (0..37 * 91).map(|_| next()).collect()).unwrap();
        let b = DenseMatrix::from_vec(91, 29, (0..91 * 29).map(|_| next()).collect()).unwrap();
        let reference = a.matmul_serial(&b).unwrap();
        let blocked = a.matmul(&b).unwrap();
        assert_eq!(blocked.as_slice(), reference.as_slice());
        let mut into = DenseMatrix::from_vec(37, 29, vec![1.0; 37 * 29]).unwrap();
        a.matmul_into(&b, &mut into).unwrap();
        assert_eq!(into.as_slice(), reference.as_slice());
        let mut bad = DenseMatrix::zeros(5, 5);
        assert!(matches!(
            a.matmul_into(&b, &mut bad),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn mul_vec_matches_matmul() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let y = a.mul_vec(&[1.0, 1.0]).unwrap();
        assert_eq!(y, vec![3.0, 7.0]);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn add_and_scale() {
        let a = DenseMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = a.scaled(2.0);
        let c = a.add(&b).unwrap();
        assert_eq!(c.row(0), &[3.0, 6.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = DenseMatrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn rows_iterator_counts() {
        let a = DenseMatrix::zeros(4, 2);
        assert_eq!(a.rows().count(), 4);
    }

    #[test]
    fn display_is_nonempty() {
        let a = DenseMatrix::identity(2);
        assert!(!format!("{a}").is_empty());
    }
}
