//! Free-function kernels over `&[f64]` slices.
//!
//! These are the hot inner loops shared by the solvers and embeddings; they
//! operate on plain slices so callers can use `Vec<f64>`, matrix rows, or any
//! other contiguous storage without conversion.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean (ℓ2) norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// ℓ1 norm of a slice.
#[inline]
pub fn norm1(a: &[f64]) -> f64 {
    a.iter().map(|x| x.abs()).sum()
}

/// ℓ∞ norm (maximum absolute entry) of a slice; `0.0` for an empty slice.
#[inline]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, x| m.max(x.abs()))
}

/// `y ← y + alpha * x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch"); // cirstag-lint: allow(error-hygiene) -- documented panic contract of the hot-path axpy kernel
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x ← alpha * x`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Squared Euclidean distance between two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dist2_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dist2_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Squared Euclidean distances from `a` to four candidate rows at once —
/// the kNN distance inner loop. Lane `l` replays [`dist2_sq`]'s scalar
/// accumulation for `b[l]` exactly (left to right, `(x − y)·(x − y)` then
/// add, no FMA), so the result is bit-identical to four scalar calls
/// whether or not the AVX2 fast path (behind the `simd` feature) runs.
///
/// # Panics
///
/// Panics if any candidate's length differs from `a`'s.
#[inline]
pub fn dist2_sq4(a: &[f64], b: [&[f64]; 4]) -> [f64; 4] {
    #[cfg(feature = "simd")]
    if let Some(out) = crate::simd::dist2_sq4(a, b) {
        return out;
    }
    let [b0, b1, b2, b3] = b;
    [
        dist2_sq(a, b0),
        dist2_sq(a, b1),
        dist2_sq(a, b2),
        dist2_sq(a, b3),
    ]
}

/// Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    dist2_sq(a, b).sqrt()
}

/// Arithmetic mean of a slice; `0.0` for an empty slice.
#[inline]
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Subtracts the mean from every entry, making the slice orthogonal to the
/// all-ones vector. Used to project onto the range of a connected-graph
/// Laplacian.
#[inline]
pub fn center(a: &mut [f64]) {
    let m = mean(a);
    for x in a.iter_mut() {
        *x -= m;
    }
}

/// Normalizes the slice to unit ℓ2 norm, returning the original norm.
///
/// Leaves the slice untouched (and returns `0.0`) when the norm is zero or
/// non-finite, so callers can detect breakdown.
#[inline]
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > 0.0 && n.is_finite() {
        scale(1.0 / n, a);
        n
    } else {
        0.0
    }
}

/// Cosine similarity between two vectors; `0.0` when either is all-zero.
#[inline]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let na = norm2(a);
    let nb = norm2(b);
    // cirstag-lint: allow(float-discipline) -- exact-zero norm sentinel: only an all-zero vector has norm exactly 0.0
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Returns `true` when every entry is finite.
#[inline]
pub fn all_finite(a: &[f64]) -> bool {
    a.iter().all(|x| x.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&a), 4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = [1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, [-3.0, 6.0]);
    }

    #[test]
    fn distances() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(dist2_sq(&a, &b), 25.0);
        assert_eq!(dist2(&a, &b), 5.0);
    }

    #[test]
    fn center_makes_mean_zero() {
        let mut a = [1.0, 2.0, 3.0, 6.0];
        center(&mut a);
        assert!(mean(&a).abs() < 1e-15);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut a = [3.0, 4.0];
        let n = normalize(&mut a);
        assert_eq!(n, 5.0);
        assert!((norm2(&a) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut a = [0.0, 0.0];
        assert_eq!(normalize(&mut a), 0.0);
        assert_eq!(a, [0.0, 0.0]);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(cosine_similarity(&a, &a), 1.0);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        let c = [-1.0, 0.0];
        assert_eq!(cosine_similarity(&a, &c), -1.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
