//! Spanning-tree (support-graph) preconditioning for Laplacian systems.

use crate::workspace::SolverWorkspace;
use crate::{Preconditioner, SolverError};
use cirstag_graph::{low_stretch_tree, Graph};
use cirstag_linalg::vecops;

/// A support-graph preconditioner `M = L_T⁺` where `T` is a low-stretch
/// spanning tree of the graph (Vaidya-style).
///
/// Applying the preconditioner is an *exact* `O(n)` solve of the tree
/// Laplacian by leaf elimination: an up-sweep accumulates the right-hand
/// side toward the root, a down-sweep recovers potentials, and the result is
/// centered onto the range of the Laplacian. The PCG iteration count is then
/// governed by the tree's total stretch rather than by the (possibly huge)
/// edge-weight dynamic range — the practical stand-in for the nearly-linear
/// Laplacian solvers the paper cites.
///
/// # Example
///
/// ```
/// use cirstag_graph::Graph;
/// use cirstag_solver::{conjugate_gradient, CgOptions, CsrOperator, TreePreconditioner};
///
/// # fn main() -> Result<(), cirstag_solver::SolverError> {
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)])?;
/// let pre = TreePreconditioner::new(&g, 1)?;
/// let lap = g.laplacian();
/// let op = CsrOperator::new(&lap);
/// let b = [1.0, -1.0, 1.0, -1.0];
/// let result = conjugate_gradient(&op, &b, &pre, CgOptions::default())?;
/// assert!(result.converged);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreePreconditioner {
    /// parent[v] — tree parent (root points to itself).
    parent: Vec<usize>,
    /// Weight of the edge to the parent (roots: 0).
    parent_weight: Vec<f64>,
    /// Nodes in BFS order from the roots (parents precede children).
    order: Vec<usize>,
    /// Component index per node (forests solve per component).
    component: Vec<usize>,
    num_components: usize,
}

impl TreePreconditioner {
    /// Builds the preconditioner from a low-stretch spanning tree of `g`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Graph`] when `g` is disconnected.
    pub fn new(g: &Graph, seed: u64) -> Result<Self, SolverError> {
        let tree = low_stretch_tree(g, seed)?;
        Ok(Self::from_tree_graph(tree.as_graph()))
    }

    /// Builds the preconditioner from an explicit tree/forest graph.
    pub fn from_tree_graph(tree: &Graph) -> Self {
        let n = tree.num_nodes();
        let mut parent = vec![usize::MAX; n];
        let mut parent_weight = vec![0.0f64; n];
        let mut order = Vec::with_capacity(n);
        let mut component = vec![0usize; n];
        let mut num_components = 0usize;
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            parent[s] = s;
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                component[u] = num_components;
                for (v, w) in tree.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        parent[v] = u;
                        parent_weight[v] = w;
                        queue.push_back(v);
                    }
                }
            }
            num_components += 1;
        }
        TreePreconditioner {
            parent,
            parent_weight,
            order,
            component,
            num_components,
        }
    }

    /// Projects each component of `x` to mean zero (the forest Laplacian's
    /// nullspace is spanned by per-component indicators).
    fn center_per_component(&self, x: &mut [f64]) {
        if self.num_components <= 1 {
            vecops::center(x);
            return;
        }
        let mut sums = vec![0.0f64; self.num_components];
        let mut counts = vec![0usize; self.num_components];
        for (v, &c) in self.component.iter().enumerate() {
            sums[c] += x[v];
            counts[c] += 1;
        }
        for (v, &c) in self.component.iter().enumerate() {
            x[v] -= sums[c] / counts[c].max(1) as f64;
        }
    }

    /// Dimension of the preconditioner.
    pub fn dim(&self) -> usize {
        self.parent.len()
    }

    /// Exact solve `L_T z = r` (both projected to mean zero).
    ///
    /// Kirchhoff on a tree: the current through the edge `(v, parent)` equals
    /// the total injection inside `v`'s subtree, so
    /// `z_v = z_parent + subtree_sum(v) / w(v, parent)`.
    fn tree_solve(&self, r: &[f64], z: &mut [f64]) {
        let n = r.len();
        // Up-sweep: per-node subtree sums of the centered rhs.
        let mut acc = r.to_vec();
        self.center_per_component(&mut acc);
        let mut subtree = vec![0.0f64; n];
        for &v in self.order.iter().rev() {
            subtree[v] = acc[v];
            let p = self.parent[v];
            if p != v {
                acc[p] += acc[v];
            }
        }
        // Down-sweep: potentials relative to each root, then re-center.
        for &v in &self.order {
            let p = self.parent[v];
            z[v] = if p == v {
                0.0
            } else {
                z[p] + subtree[v] / self.parent_weight[v]
            };
        }
        self.center_per_component(z);
    }

    /// Panel form of [`TreePreconditioner::center_per_component`]: projects
    /// every column of the row-major `k`-wide panel to per-component mean
    /// zero. Column-wise bit-identical to the vector form (same summation
    /// and subtraction order per column).
    fn center_per_component_panel(&self, x: &mut [f64], k: usize, ws: &mut SolverWorkspace) {
        let n = self.dim();
        if n == 0 {
            return;
        }
        if self.num_components <= 1 {
            let mut sums = ws.take(k);
            for row in x.chunks_exact(k) {
                for (s, &v) in sums.iter_mut().zip(row) {
                    *s += v;
                }
            }
            for s in sums.iter_mut() {
                *s /= n as f64;
            }
            for row in x.chunks_exact_mut(k) {
                for (v, &m) in row.iter_mut().zip(sums.iter()) {
                    *v -= m;
                }
            }
            ws.put(sums);
            return;
        }
        let nc = self.num_components;
        let mut sums = ws.take(nc * k);
        let mut counts = ws.take(nc);
        for (v, &c) in self.component.iter().enumerate() {
            // f64 counts stay exact for any realistic node count and match
            // the vector form's `counts[c].max(1) as f64` bitwise.
            counts[c] += 1.0;
            for (s, &val) in sums[c * k..c * k + k].iter_mut().zip(&x[v * k..v * k + k]) {
                *s += val;
            }
        }
        for (v, &c) in self.component.iter().enumerate() {
            let denom = counts[c].max(1.0);
            for (xv, &s) in x[v * k..v * k + k].iter_mut().zip(&sums[c * k..c * k + k]) {
                *xv -= s / denom;
            }
        }
        ws.put(counts);
        ws.put(sums);
    }

    /// Panel form of [`TreePreconditioner::tree_solve`]: one up-sweep and
    /// one down-sweep advance all `k` columns together, with scratch drawn
    /// from the workspace so steady-state applications never allocate.
    /// Column `j` performs the exact operation sequence of `tree_solve` on
    /// column `j` alone.
    fn tree_solve_panel(&self, r: &[f64], z: &mut [f64], k: usize, ws: &mut SolverWorkspace) {
        let n = self.dim();
        let mut acc = ws.take(n * k);
        acc.copy_from_slice(r);
        self.center_per_component_panel(&mut acc, k, ws);
        let mut subtree = ws.take(n * k);
        for &v in self.order.iter().rev() {
            let p = self.parent[v];
            subtree[v * k..v * k + k].copy_from_slice(&acc[v * k..v * k + k]);
            if p != v {
                for j in 0..k {
                    let av = acc[v * k + j];
                    acc[p * k + j] += av;
                }
            }
        }
        for &v in &self.order {
            let p = self.parent[v];
            if p == v {
                z[v * k..v * k + k].fill(0.0);
            } else {
                let w = self.parent_weight[v];
                for j in 0..k {
                    z[v * k + j] = z[p * k + j] + subtree[v * k + j] / w;
                }
            }
        }
        self.center_per_component_panel(z, k, ws);
        ws.put(subtree);
        ws.put(acc);
    }
}

impl Preconditioner for TreePreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolverError> {
        if r.len() != self.dim() || z.len() != self.dim() {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim(),
                actual: r.len().max(z.len()),
            });
        }
        self.tree_solve(r, z);
        Ok(())
    }

    fn apply_panel(
        &self,
        r: &[f64],
        z: &mut [f64],
        ncols: usize,
        ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        if r.len() != self.dim() * ncols || z.len() != self.dim() * ncols {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim() * ncols,
                actual: r.len().max(z.len()),
            });
        }
        if ncols == 0 {
            return Ok(());
        }
        self.tree_solve_panel(r, z, ncols, ws);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conjugate_gradient, CgOptions, CsrOperator, JacobiPreconditioner};

    #[test]
    fn tree_solve_is_exact_on_a_tree() {
        // For a tree graph, PCG with the tree preconditioner converges in
        // one iteration (M = A exactly, up to the nullspace).
        let tree =
            Graph::from_edges(5, &[(0, 1, 2.0), (1, 2, 0.5), (1, 3, 4.0), (3, 4, 1.0)]).unwrap();
        let pre = TreePreconditioner::from_tree_graph(&tree);
        let lap = tree.laplacian();
        let mut b = vec![1.0, -2.0, 0.5, 0.25, 0.25];
        cirstag_linalg::vecops::center(&mut b);
        let mut z = vec![0.0; 5];
        pre.apply(&b, &mut z).unwrap();
        let lz = lap.mul_vec(&z);
        for (a, c) in lz.iter().zip(&b) {
            assert!(
                (a - c).abs() < 1e-10,
                "tree solve residual {}",
                (a - c).abs()
            );
        }
    }

    #[test]
    fn beats_jacobi_on_wide_weight_range() {
        // Ring + random chords with weights spanning 6 orders of magnitude —
        // the regime where Jacobi-PCG stalls.
        let n = 200;
        let mut edges = Vec::new();
        for i in 0..n {
            let w = if i % 3 == 0 { 1e3 } else { 1.0 };
            edges.push((i, (i + 1) % n, w));
        }
        for i in (0..n).step_by(7) {
            edges.push((i, (i * 13 + 29) % n, 1e-3));
        }
        let g = Graph::from_edges(n, &edges).unwrap();
        let lap = g.laplacian();
        let op = CsrOperator::new(&lap);
        let mut b: Vec<f64> = (0..n).map(|i| ((i * 37) % 23) as f64 - 11.0).collect();
        cirstag_linalg::vecops::center(&mut b);
        let opts = CgOptions {
            tol: 1e-8,
            max_iter: 5000,
        };
        let jac = JacobiPreconditioner::from_matrix(&lap);
        let r_jac = conjugate_gradient(&op, &b, &jac, opts).unwrap();
        let tree = TreePreconditioner::new(&g, 3).unwrap();
        let r_tree = conjugate_gradient(&op, &b, &tree, opts).unwrap();
        assert!(r_tree.converged);
        assert!(
            r_tree.iterations <= r_jac.iterations,
            "tree {} vs jacobi {}",
            r_tree.iterations,
            r_jac.iterations
        );
    }

    #[test]
    fn solution_satisfies_system_on_grid() {
        let side = 10;
        let mut edges = Vec::new();
        for i in 0..side {
            for j in 0..side {
                let id = i * side + j;
                if j + 1 < side {
                    edges.push((id, id + 1, 1.0 + (id % 5) as f64));
                }
                if i + 1 < side {
                    edges.push((id, id + side, 1.0));
                }
            }
        }
        let g = Graph::from_edges(side * side, &edges).unwrap();
        let lap = g.laplacian();
        let op = CsrOperator::new(&lap);
        let mut b: Vec<f64> = (0..side * side).map(|i| (i % 7) as f64 - 3.0).collect();
        cirstag_linalg::vecops::center(&mut b);
        let tree = TreePreconditioner::new(&g, 1).unwrap();
        let res = conjugate_gradient(
            &op,
            &b,
            &tree,
            CgOptions {
                tol: 1e-10,
                max_iter: 500,
            },
        )
        .unwrap();
        assert!(res.converged, "residual {}", res.residual_norm);
        let lx = lap.mul_vec(&res.x);
        for (a, c) in lx.iter().zip(&b) {
            assert!((a - c).abs() < 1e-7);
        }
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(TreePreconditioner::new(&g, 0).is_err());
    }

    #[test]
    fn forest_solve_is_exact_per_component() {
        // Two disjoint paths: the tree solve must satisfy L z = r̄ with the
        // rhs centered within each component.
        let forest = Graph::from_edges(5, &[(0, 1, 2.0), (1, 2, 1.0), (3, 4, 4.0)]).unwrap();
        let pre = TreePreconditioner::from_tree_graph(&forest);
        let lap = forest.laplacian();
        // rhs centered per component: comp {0,1,2} and comp {3,4}.
        let b = [1.0, 0.5, -1.5, 2.0, -2.0];
        let mut z = vec![0.0; 5];
        pre.apply(&b, &mut z).unwrap();
        let lz = lap.mul_vec(&z);
        for (i, (a, c)) in lz.iter().zip(&b).enumerate() {
            assert!((a - c).abs() < 1e-10, "entry {i}: {a} vs {c}");
        }
    }

    #[test]
    fn panel_apply_is_bit_identical_to_columnwise_apply() {
        use crate::workspace::SolverWorkspace;
        // Connected graph (single component) and a forest (multi-component)
        // both must satisfy the panel contract exactly.
        let connected = Graph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (1, 2, 0.5),
                (2, 3, 4.0),
                (3, 4, 1.0),
                (4, 5, 3.0),
                (5, 0, 0.25),
            ],
        )
        .unwrap();
        let forest = Graph::from_edges(5, &[(0, 1, 2.0), (1, 2, 1.0), (3, 4, 4.0)]).unwrap();
        for (g, n) in [
            (TreePreconditioner::new(&connected, 7).unwrap(), 6),
            (TreePreconditioner::from_tree_graph(&forest), 5),
        ] {
            let k = 3usize;
            let mut panel = vec![0.0; n * k];
            for (idx, v) in panel.iter_mut().enumerate() {
                *v = ((idx * 37 + 11) % 19) as f64 - 9.0;
            }
            let mut ws = SolverWorkspace::new();
            let mut z_panel = vec![0.0; n * k];
            g.apply_panel(&panel, &mut z_panel, k, &mut ws).unwrap();
            for j in 0..k {
                let col: Vec<f64> = (0..n).map(|i| panel[i * k + j]).collect();
                let mut z_col = vec![0.0; n];
                g.apply(&col, &mut z_col).unwrap();
                for i in 0..n {
                    assert!(
                        z_panel[i * k + j].to_bits() == z_col[i].to_bits(),
                        "column {j}, row {i}: {} vs {}",
                        z_panel[i * k + j],
                        z_col[i]
                    );
                }
            }
            // A warmed workspace must not allocate again.
            let misses = ws.misses();
            g.apply_panel(&panel, &mut z_panel, k, &mut ws).unwrap();
            assert_eq!(ws.misses(), misses);
        }
    }

    #[test]
    fn application_is_linear() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (3, 0, 0.5)]).unwrap();
        let pre = TreePreconditioner::new(&g, 2).unwrap();
        let a = [1.0, -1.0, 2.0, -2.0];
        let b = [0.5, 0.5, -0.5, -0.5];
        let mut za = vec![0.0; 4];
        let mut zb = vec![0.0; 4];
        let mut zab = vec![0.0; 4];
        pre.apply(&a, &mut za).unwrap();
        pre.apply(&b, &mut zb).unwrap();
        let ab: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        pre.apply(&ab, &mut zab).unwrap();
        for i in 0..4 {
            assert!((zab[i] - za[i] - zb[i]).abs() < 1e-12);
        }
    }
}
