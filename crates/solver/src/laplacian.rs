//! Deflated solver for connected-graph Laplacian systems.

use crate::{
    conjugate_gradient, CgOptions, CsrOperator, JacobiPreconditioner, Preconditioner, SolverError,
    TreePreconditioner,
};
use cirstag_graph::{Graph, GraphError};
use cirstag_linalg::vecops;
use cirstag_linalg::CsrMatrix;

/// Solves `L x = b` for the Laplacian of a *connected* graph.
///
/// The Laplacian of a connected graph has a one-dimensional nullspace spanned
/// by the all-ones vector. This solver restricts the system to the orthogonal
/// complement: the right-hand side is centered (projected to mean zero) and a
/// Jacobi-preconditioned CG iteration runs entirely inside the range of `L`,
/// returning the mean-zero (minimum-norm) solution. This realizes the
/// pseudoinverse application `x = L⁺ b` used throughout Phases 2–3.
///
/// # Example
///
/// ```
/// use cirstag_graph::Graph;
/// use cirstag_solver::LaplacianSolver;
///
/// # fn main() -> Result<(), cirstag_solver::SolverError> {
/// // Two resistors of 1 Ω in series: R_eff(0, 2) = 2 Ω.
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?;
/// let solver = LaplacianSolver::new(&g)?;
/// let r = solver.effective_resistance(0, 2)?;
/// assert!((r - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LaplacianSolver {
    laplacian: CsrMatrix,
    preconditioner: PreconditionerKind,
    options: CgOptions,
}

#[derive(Debug, Clone)]
enum PreconditionerKind {
    Jacobi(JacobiPreconditioner),
    Tree(TreePreconditioner),
}

impl Preconditioner for PreconditionerKind {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            PreconditionerKind::Jacobi(p) => p.apply(r, z),
            PreconditionerKind::Tree(p) => p.apply(r, z),
        }
    }
}

impl LaplacianSolver {
    /// Builds a solver for the Laplacian of `g` with default CG options.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Graph`] wrapping
    /// [`GraphError::Disconnected`] when `g` is not connected (the nullspace
    /// deflation below assumes a single component).
    pub fn new(g: &Graph) -> Result<Self, SolverError> {
        Self::with_options(g, CgOptions::default())
    }

    /// Builds a solver with explicit CG options.
    ///
    /// # Errors
    ///
    /// Same as [`LaplacianSolver::new`].
    pub fn with_options(g: &Graph, options: CgOptions) -> Result<Self, SolverError> {
        if !g.is_connected() {
            return Err(GraphError::Disconnected.into());
        }
        let laplacian = g.laplacian();
        let preconditioner =
            PreconditionerKind::Jacobi(JacobiPreconditioner::from_matrix(&laplacian));
        Ok(LaplacianSolver {
            laplacian,
            preconditioner,
            options,
        })
    }

    /// Builds a solver preconditioned by a low-stretch spanning tree
    /// ([`TreePreconditioner`]) — dramatically more robust than Jacobi on
    /// graphs whose edge weights span many orders of magnitude, such as the
    /// kNN manifolds of Phase 2.
    ///
    /// # Errors
    ///
    /// Same as [`LaplacianSolver::new`].
    pub fn with_tree_preconditioner(g: &Graph, options: CgOptions) -> Result<Self, SolverError> {
        if !g.is_connected() {
            return Err(GraphError::Disconnected.into());
        }
        let laplacian = g.laplacian();
        let preconditioner = PreconditionerKind::Tree(TreePreconditioner::new(g, 0x7e3)?);
        Ok(LaplacianSolver {
            laplacian,
            preconditioner,
            options,
        })
    }

    /// Dimension of the system (number of graph nodes).
    #[inline]
    pub fn dim(&self) -> usize {
        self.laplacian.nrows()
    }

    /// Borrows the assembled Laplacian.
    #[inline]
    pub fn laplacian(&self) -> &CsrMatrix {
        &self.laplacian
    }

    /// Solves `L x = b`, returning the mean-zero solution.
    ///
    /// `b` is centered internally, so right-hand sides with a nonzero mean
    /// are interpreted as their projection onto the range of `L`.
    ///
    /// # Errors
    ///
    /// - [`SolverError::DimensionMismatch`] when `b.len() != self.dim()`.
    /// - [`SolverError::NoConvergence`] when CG fails to reach tolerance.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        if b.len() != self.dim() {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim(),
                actual: b.len(),
            });
        }
        let mut rhs = b.to_vec();
        vecops::center(&mut rhs);
        let op = CsrOperator::new(&self.laplacian);
        let result = conjugate_gradient(&op, &rhs, &self.preconditioner, self.options)?;
        if !result.converged {
            return Err(SolverError::NoConvergence {
                algorithm: "laplacian pcg",
                iterations: result.iterations,
                residual: result.residual_norm,
            });
        }
        let mut x = result.x;
        // Round-off can leak a small component along the nullspace; remove it
        // so the result is exactly the pseudoinverse image.
        vecops::center(&mut x);
        Ok(x)
    }

    /// Effective resistance between nodes `p` and `q`:
    /// `R_eff(p, q) = (e_p − e_q)ᵀ L⁺ (e_p − e_q)`.
    ///
    /// # Errors
    ///
    /// - [`SolverError::InvalidArgument`] when `p` or `q` is out of bounds.
    /// - Propagates solve failures.
    pub fn effective_resistance(&self, p: usize, q: usize) -> Result<f64, SolverError> {
        let n = self.dim();
        if p >= n || q >= n {
            return Err(SolverError::InvalidArgument {
                reason: format!("node pair ({p}, {q}) out of bounds for {n} nodes"),
            });
        }
        if p == q {
            return Ok(0.0);
        }
        let mut b = vec![0.0; n];
        b[p] = 1.0;
        b[q] = -1.0;
        let x = self.solve(&b)?;
        Ok(x[p] - x[q])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_satisfies_system() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 3.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        let mut b = vec![1.0, -0.5, 2.0, -2.5];
        vecops::center(&mut b);
        let x = s.solve(&b).unwrap();
        let lx = s.laplacian().mul_vec(&x);
        for (a, c) in lx.iter().zip(&b) {
            assert!((a - c).abs() < 1e-7, "residual entry {}", (a - c).abs());
        }
        assert!(vecops::mean(&x).abs() < 1e-12);
    }

    #[test]
    fn series_resistors() {
        let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 4.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        // R = 1/2 + 1/4.
        assert!((s.effective_resistance(0, 2).unwrap() - 0.75).abs() < 1e-8);
    }

    #[test]
    fn parallel_resistors_via_cycle() {
        // Triangle of unit resistors: R_eff across one edge = 2/3.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        assert!((s.effective_resistance(0, 1).unwrap() - 2.0 / 3.0).abs() < 1e-8);
    }

    #[test]
    fn resistance_is_symmetric_and_zero_on_diagonal() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5), (3, 0, 1.5)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        let r01 = s.effective_resistance(0, 1).unwrap();
        let r10 = s.effective_resistance(1, 0).unwrap();
        assert!((r01 - r10).abs() < 1e-9);
        assert_eq!(s.effective_resistance(2, 2).unwrap(), 0.0);
    }

    #[test]
    fn resistance_bounded_by_direct_edge() {
        // With an edge (p, q) present, R_eff ≤ 1/w.
        let g =
            Graph::from_edges(4, &[(0, 1, 2.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        assert!(s.effective_resistance(0, 1).unwrap() <= 0.5 + 1e-9);
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(LaplacianSolver::new(&g).is_err());
    }

    #[test]
    fn bounds_checked() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        assert!(s.effective_resistance(0, 5).is_err());
        assert!(s.solve(&[1.0]).is_err());
    }

    #[test]
    fn uncentered_rhs_is_projected() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        // b with nonzero mean: solver should treat it as centered.
        let x = s.solve(&[2.0, 1.0, 1.0]).unwrap();
        let lx = s.laplacian().mul_vec(&x);
        let centered = [2.0 - 4.0 / 3.0, 1.0 - 4.0 / 3.0, 1.0 - 4.0 / 3.0];
        for (a, c) in lx.iter().zip(&centered) {
            assert!((a - c).abs() < 1e-8);
        }
    }
}
