//! Deflated solver for connected-graph Laplacian systems, with an optional
//! preconditioner fallback ladder.

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::{
    conjugate_gradient_block_into, conjugate_gradient_into, CgOptions, CgStats, CsrOperator,
    JacobiPreconditioner, Preconditioner, SolverError, SolverWorkspace, TreePreconditioner,
};
use cirstag_graph::{Graph, GraphError};
use cirstag_linalg::vecops;
use cirstag_linalg::{jacobi_eigen, CsrMatrix, DenseMatrix};

/// A rung of the Laplacian solver's preconditioner fallback ladder, ordered
/// from cheapest to most robust.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LadderRung {
    /// Unpreconditioned CG.
    Identity,
    /// Jacobi (diagonal) preconditioned CG — the historical default.
    Jacobi,
    /// Low-stretch spanning-tree preconditioned CG.
    Tree,
    /// Direct dense pseudoinverse solve via a full eigendecomposition.
    Dense,
}

impl LadderRung {
    /// Stable lower-case name used in diagnostics and fallback events.
    pub fn name(self) -> &'static str {
        match self {
            LadderRung::Identity => "identity",
            LadderRung::Jacobi => "jacobi",
            LadderRung::Tree => "tree",
            LadderRung::Dense => "dense",
        }
    }

    /// The next, more robust rung (`None` past the dense solve).
    pub fn next(self) -> Option<LadderRung> {
        match self {
            LadderRung::Identity => Some(LadderRung::Jacobi),
            LadderRung::Jacobi => Some(LadderRung::Tree),
            LadderRung::Tree => Some(LadderRung::Dense),
            LadderRung::Dense => None,
        }
    }
}

/// One escalation step taken by the solver's fallback ladder.
#[derive(Debug, Clone)]
pub struct SolveEvent {
    /// Rung that failed.
    pub from: LadderRung,
    /// Rung the solver escalated to.
    pub to: LadderRung,
    /// Human-readable failure cause (the underlying error message).
    pub cause: String,
    /// Residual norm at the point of failure, when the failure reported one.
    pub residual: Option<f64>,
    /// Wall-clock milliseconds spent on the failing rung.
    pub elapsed_ms: u64,
}

/// Cached dense eigendecomposition backing the terminal ladder rung.
#[derive(Debug)]
struct DenseEigen {
    eigenvalues: Vec<f64>,
    eigenvectors: DenseMatrix,
}

#[derive(Debug, Clone)]
struct LadderState {
    rung: LadderRung,
    jacobi: Option<Arc<JacobiPreconditioner>>,
    tree: Option<Arc<TreePreconditioner>>,
    dense: Option<Arc<DenseEigen>>,
    events: Vec<SolveEvent>,
    warnings: Vec<String>,
}

/// Preconditioner view for a single CG rung.
enum RungPreconditioner {
    Identity,
    Jacobi(Arc<JacobiPreconditioner>),
    Tree(Arc<TreePreconditioner>),
}

impl Preconditioner for RungPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolverError> {
        match self {
            RungPreconditioner::Identity => {
                if r.len() != z.len() {
                    return Err(SolverError::DimensionMismatch {
                        expected: r.len(),
                        actual: z.len(),
                    });
                }
                z.copy_from_slice(r);
                Ok(())
            }
            RungPreconditioner::Jacobi(p) => p.apply(r, z),
            RungPreconditioner::Tree(p) => p.apply(r, z),
        }
    }

    fn apply_panel(
        &self,
        r: &[f64],
        z: &mut [f64],
        ncols: usize,
        ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        match self {
            RungPreconditioner::Identity => {
                if r.len() != z.len() {
                    return Err(SolverError::DimensionMismatch {
                        expected: r.len(),
                        actual: z.len(),
                    });
                }
                z.copy_from_slice(r);
                Ok(())
            }
            RungPreconditioner::Jacobi(p) => p.apply_panel(r, z, ncols, ws),
            RungPreconditioner::Tree(p) => p.apply_panel(r, z, ncols, ws),
        }
    }
}

/// Solves `L x = b` for the Laplacian of a *connected* graph.
///
/// The Laplacian of a connected graph has a one-dimensional nullspace spanned
/// by the all-ones vector. This solver restricts the system to the orthogonal
/// complement: the right-hand side is centered (projected to mean zero) and a
/// preconditioned CG iteration runs entirely inside the range of `L`,
/// returning the mean-zero (minimum-norm) solution. This realizes the
/// pseudoinverse application `x = L⁺ b` used throughout Phases 2–3.
///
/// # Fallback ladder
///
/// Constructed via [`LaplacianSolver::with_ladder`], the solver escalates
/// through progressively more robust strategies whenever a solve fails:
/// unpreconditioned CG → Jacobi → low-stretch tree → direct dense
/// eigendecomposition. Escalation is *sticky* (later solves start at the rung
/// that last succeeded) and every step is recorded as a [`SolveEvent`]
/// retrievable through [`LaplacianSolver::take_events`]. The historical
/// constructors ([`LaplacianSolver::new`],
/// [`LaplacianSolver::with_tree_preconditioner`]) pin the solver to a single
/// rung and fail fast, preserving their exact pre-ladder behavior.
///
/// # Example
///
/// ```
/// use cirstag_graph::Graph;
/// use cirstag_solver::LaplacianSolver;
///
/// # fn main() -> Result<(), cirstag_solver::SolverError> {
/// // Two resistors of 1 Ω in series: R_eff(0, 2) = 2 Ω.
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?;
/// let solver = LaplacianSolver::new(&g)?;
/// let r = solver.effective_resistance(0, 2)?;
/// assert!((r - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct LaplacianSolver {
    laplacian: CsrMatrix,
    graph: Graph,
    options: CgOptions,
    escalate: bool,
    state: Mutex<LadderState>,
    workspace: Mutex<SolverWorkspace>,
}

impl Clone for LaplacianSolver {
    fn clone(&self) -> Self {
        let state = self.lock().clone();
        LaplacianSolver {
            laplacian: self.laplacian.clone(),
            graph: self.graph.clone(),
            options: self.options,
            escalate: self.escalate,
            state: Mutex::new(state),
            // Scratch buffers are cheap to re-warm; clones start cold rather
            // than duplicating pooled allocations.
            workspace: Mutex::new(SolverWorkspace::new()),
        }
    }
}

impl LaplacianSolver {
    /// Builds a solver for the Laplacian of `g` with default CG options.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::Graph`] wrapping
    /// [`GraphError::Disconnected`] when `g` is not connected (the nullspace
    /// deflation below assumes a single component).
    pub fn new(g: &Graph) -> Result<Self, SolverError> {
        Self::with_options(g, CgOptions::default())
    }

    /// Builds a solver with explicit CG options.
    ///
    /// # Errors
    ///
    /// Same as [`LaplacianSolver::new`].
    pub fn with_options(g: &Graph, options: CgOptions) -> Result<Self, SolverError> {
        Self::build(g, options, LadderRung::Jacobi, false)
    }

    /// Builds a solver preconditioned by a low-stretch spanning tree
    /// ([`TreePreconditioner`]) — dramatically more robust than Jacobi on
    /// graphs whose edge weights span many orders of magnitude, such as the
    /// kNN manifolds of Phase 2.
    ///
    /// # Errors
    ///
    /// Same as [`LaplacianSolver::new`].
    pub fn with_tree_preconditioner(g: &Graph, options: CgOptions) -> Result<Self, SolverError> {
        Self::build(g, options, LadderRung::Tree, false)
    }

    /// Builds an *escalating* solver that starts at `start` and climbs the
    /// fallback ladder ([`LadderRung::Identity`] → Jacobi → tree → dense) on
    /// each solve failure instead of surfacing the first error.
    ///
    /// # Errors
    ///
    /// Same as [`LaplacianSolver::new`], plus preconditioner construction
    /// failures for the starting rung.
    pub fn with_ladder(
        g: &Graph,
        options: CgOptions,
        start: LadderRung,
    ) -> Result<Self, SolverError> {
        Self::build(g, options, start, true)
    }

    fn build(
        g: &Graph,
        options: CgOptions,
        start: LadderRung,
        escalate: bool,
    ) -> Result<Self, SolverError> {
        if !g.is_connected() {
            return Err(GraphError::Disconnected.into());
        }
        let laplacian = g.laplacian();
        let mut state = LadderState {
            rung: start,
            jacobi: None,
            tree: None,
            dense: None,
            events: Vec::new(),
            warnings: Vec::new(),
        };
        // Build the starting preconditioner eagerly so constructor-time
        // failures (and the Jacobi clamp warning) surface immediately —
        // matching the historical constructors exactly.
        match start {
            LadderRung::Jacobi => {
                let jacobi = JacobiPreconditioner::from_matrix(&laplacian);
                if jacobi.clamped_entries() > 0 {
                    state.warnings.push(format!(
                        "jacobi preconditioner clamped {} non-positive diagonal entries to 1",
                        jacobi.clamped_entries()
                    ));
                }
                state.jacobi = Some(Arc::new(jacobi));
            }
            LadderRung::Tree => {
                state.tree = Some(Arc::new(TreePreconditioner::new(g, 0x7e3)?));
            }
            LadderRung::Identity | LadderRung::Dense => {}
        }
        Ok(LaplacianSolver {
            laplacian,
            graph: g.clone(),
            options,
            escalate,
            state: Mutex::new(state),
            workspace: Mutex::new(SolverWorkspace::new()),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, LadderState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Checks the shared scratch workspace out of its mutex so a solve can
    /// run without holding the lock; pair with [`Self::return_workspace`].
    fn take_workspace(&self) -> SolverWorkspace {
        std::mem::take(
            &mut *self
                .workspace
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }

    fn return_workspace(&self, ws: SolverWorkspace) {
        self.workspace
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .absorb(ws);
    }

    /// Dimension of the system (number of graph nodes).
    #[inline]
    pub fn dim(&self) -> usize {
        self.laplacian.nrows()
    }

    /// Borrows the assembled Laplacian.
    #[inline]
    pub fn laplacian(&self) -> &CsrMatrix {
        &self.laplacian
    }

    /// The rung the next solve will start on.
    pub fn current_rung(&self) -> LadderRung {
        self.lock().rung
    }

    /// Drains the escalation events recorded since the last call.
    pub fn take_events(&self) -> Vec<SolveEvent> {
        std::mem::take(&mut self.lock().events)
    }

    /// Drains the non-fatal warnings recorded since the last call.
    pub fn take_warnings(&self) -> Vec<String> {
        std::mem::take(&mut self.lock().warnings)
    }

    /// Solves `L x = b`, returning the mean-zero solution.
    ///
    /// `b` is centered internally, so right-hand sides with a nonzero mean
    /// are interpreted as their projection onto the range of `L`.
    ///
    /// For escalating solvers (see [`LaplacianSolver::with_ladder`]), a
    /// failure on the current rung advances to the next rung and retries;
    /// only a failure on the terminal dense rung is returned to the caller.
    ///
    /// # Errors
    ///
    /// - [`SolverError::DimensionMismatch`] when `b.len() != self.dim()`.
    /// - [`SolverError::NoConvergence`] when the (final) strategy fails.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolverError> {
        let mut x = vec![0.0; self.dim()];
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `L x = b` into a caller-provided vector — the allocation-free
    /// form of [`LaplacianSolver::solve`] (steady-state solves reuse pooled
    /// scratch buffers once the internal workspace is warm).
    ///
    /// # Errors
    ///
    /// Same as [`LaplacianSolver::solve`], plus
    /// [`SolverError::DimensionMismatch`] when `x.len() != self.dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) -> Result<(), SolverError> {
        if b.len() != self.dim() {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim(),
                actual: b.len(),
            });
        }
        if x.len() != self.dim() {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim(),
                actual: x.len(),
            });
        }
        let mut ws = self.take_workspace();
        let mut rhs = ws.take(b.len());
        rhs.copy_from_slice(b);
        vecops::center(&mut rhs);
        let outcome = self.solve_ladder(&rhs, x, &mut ws);
        ws.put(rhs);
        self.return_workspace(ws);
        outcome
    }

    /// The rung-escalation loop shared by the scalar entry points.
    fn solve_ladder(
        &self,
        rhs: &[f64],
        x: &mut [f64],
        ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        loop {
            let rung = self.current_rung();
            // cirstag-lint: allow(nondeterminism) -- solver wall-clock diagnostics only; recorded in FallbackEvent, not results
            let started = Instant::now();
            let attempt = match rung {
                LadderRung::Dense => self.dense_solve_into(rhs, x),
                cg_rung => self.cg_solve_into(cg_rung, rhs, x, ws),
            };
            match attempt {
                Ok(()) => {
                    // Round-off can leak a small component along the
                    // nullspace; remove it so the result is exactly the
                    // pseudoinverse image.
                    vecops::center(x);
                    return Ok(());
                }
                Err(err) => self.escalate_or_fail(rung, err, started)?,
            }
        }
    }

    /// Records an escalation event and advances the ladder, or propagates
    /// the error when escalation is disabled or exhausted.
    fn escalate_or_fail(
        &self,
        rung: LadderRung,
        err: SolverError,
        started: Instant,
    ) -> Result<(), SolverError> {
        if !self.escalate {
            return Err(err);
        }
        let Some(next) = rung.next() else {
            return Err(err);
        };
        let residual = match &err {
            SolverError::NoConvergence { residual, .. } => Some(*residual),
            _ => None,
        };
        let mut state = self.lock();
        state.events.push(SolveEvent {
            from: rung,
            to: next,
            cause: err.to_string(),
            residual,
            // cirstag-lint: allow(nondeterminism) -- solver wall-clock diagnostics only; recorded in FallbackEvent, not results
            elapsed_ms: u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX),
        });
        state.rung = next;
        Ok(())
    }

    /// Solves `L X = B` for every column of `B` in lockstep through the
    /// block CG kernel, sharing one CSR traversal per iteration across all
    /// right-hand sides.
    ///
    /// Column `j` of the result is bit-identical to
    /// [`LaplacianSolver::solve`] on column `j` of `B` whenever both are
    /// answered by the same ladder rung: the block iteration advances each
    /// column with exactly the scalar update sequence, and converged columns
    /// are frozen before any escalation, so one diverging column cannot
    /// poison the others — only the failing columns are re-solved on the
    /// next rung.
    ///
    /// # Errors
    ///
    /// - [`SolverError::DimensionMismatch`] when `b.nrows() != self.dim()`.
    /// - [`SolverError::NoConvergence`] when columns remain unconverged on
    ///   the final strategy.
    pub fn solve_block(&self, b: &DenseMatrix) -> Result<DenseMatrix, SolverError> {
        if b.nrows() != self.dim() {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim(),
                actual: b.nrows(),
            });
        }
        let mut x = DenseMatrix::zeros(b.nrows(), b.ncols());
        if b.ncols() == 0 {
            return Ok(x);
        }
        let mut ws = self.take_workspace();
        let outcome = self.solve_block_ladder(b, &mut x, &mut ws);
        self.return_workspace(ws);
        outcome.map(|()| x)
    }

    /// The rung-escalation loop of [`LaplacianSolver::solve_block`]:
    /// attempts the pending columns on the current rung, freezes the
    /// converged ones, and escalates with the survivors compacted into a
    /// smaller panel.
    fn solve_block_ladder(
        &self,
        b: &DenseMatrix,
        x: &mut DenseMatrix,
        ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        let n = self.dim();
        let k = b.ncols();
        let mut col_buf = ws.take(n);
        // Center every right-hand side through the same contiguous-slice
        // `vecops::center` the scalar path uses, so each column's rounding
        // matches `solve` bitwise.
        let mut centered = DenseMatrix::zeros(n, k);
        for j in 0..k {
            for (i, v) in col_buf.iter_mut().enumerate() {
                *v = b.get(i, j);
            }
            vecops::center(&mut col_buf);
            for (i, v) in col_buf.iter().enumerate() {
                centered.set(i, j, *v);
            }
        }
        let mut pending: Vec<usize> = (0..k).collect();
        let mut stats: Vec<CgStats> = Vec::with_capacity(k);
        let outcome = loop {
            let rung = self.current_rung();
            // cirstag-lint: allow(nondeterminism) -- solver wall-clock diagnostics only; recorded in FallbackEvent, not results
            let started = Instant::now();
            let attempt = self.block_rung_attempt(
                rung,
                &centered,
                &mut pending,
                x,
                &mut col_buf,
                &mut stats,
                ws,
            );
            match attempt {
                Ok(()) => break Ok(()),
                Err(err) => {
                    if let Err(fatal) = self.escalate_or_fail(rung, err, started) {
                        break Err(fatal);
                    }
                }
            }
        };
        ws.put(col_buf);
        outcome
    }

    /// One ladder-rung attempt over the pending columns. On success the
    /// pending list is emptied; columns that fail to converge stay pending
    /// (converged siblings are centered and frozen into `x`) and the worst
    /// per-column statistics are reported as the rung's failure.
    #[allow(clippy::too_many_arguments)]
    fn block_rung_attempt(
        &self,
        rung: LadderRung,
        centered: &DenseMatrix,
        pending: &mut Vec<usize>,
        x: &mut DenseMatrix,
        col_buf: &mut [f64],
        stats: &mut Vec<CgStats>,
        ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        let n = self.dim();
        match rung {
            LadderRung::Dense => {
                // Terminal rung: direct pseudoinverse solve per column.
                let mut rhs = ws.take(n);
                let mut first_err = None;
                for &j in pending.iter() {
                    for (i, v) in rhs.iter_mut().enumerate() {
                        *v = centered.get(i, j);
                    }
                    match self.dense_solve_into(&rhs, col_buf) {
                        Ok(()) => {
                            vecops::center(col_buf);
                            for (i, v) in col_buf.iter().enumerate() {
                                x.set(i, j, *v);
                            }
                        }
                        Err(err) => {
                            first_err = Some(err);
                            break;
                        }
                    }
                }
                ws.put(rhs);
                match first_err {
                    Some(err) => Err(err),
                    None => {
                        pending.clear();
                        Ok(())
                    }
                }
            }
            cg_rung => {
                let pre = self.preconditioner_for(cg_rung)?;
                let op = CsrOperator::new(&self.laplacian);
                let m = pending.len();
                // Compact the still-unconverged columns into a dense panel.
                let mut panel_b = DenseMatrix::zeros(n, m);
                for (jj, &j) in pending.iter().enumerate() {
                    for i in 0..n {
                        panel_b.set(i, jj, centered.get(i, j));
                    }
                }
                let mut panel_x = DenseMatrix::zeros(n, m);
                conjugate_gradient_block_into(
                    &op,
                    &panel_b,
                    &pre,
                    self.options,
                    &mut panel_x,
                    stats,
                    ws,
                )?;
                let mut still = Vec::with_capacity(m);
                let mut worst_iterations = 0;
                let mut worst_residual = 0.0_f64;
                for (jj, &j) in pending.iter().enumerate() {
                    let st = stats[jj];
                    if st.converged {
                        for (i, v) in col_buf.iter_mut().enumerate() {
                            *v = panel_x.get(i, jj);
                        }
                        vecops::center(col_buf);
                        for (i, v) in col_buf.iter().enumerate() {
                            x.set(i, j, *v);
                        }
                    } else {
                        still.push(j);
                        worst_iterations = worst_iterations.max(st.iterations);
                        worst_residual = worst_residual.max(st.residual_norm);
                    }
                }
                *pending = still;
                if pending.is_empty() {
                    Ok(())
                } else {
                    Err(SolverError::NoConvergence {
                        algorithm: "laplacian block pcg",
                        iterations: worst_iterations,
                        residual: worst_residual,
                    })
                }
            }
        }
    }

    /// One CG attempt on a ladder rung, building (and caching) the rung's
    /// preconditioner on first use.
    fn cg_solve_into(
        &self,
        rung: LadderRung,
        rhs: &[f64],
        x: &mut [f64],
        ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        let pre = self.preconditioner_for(rung)?;
        let op = CsrOperator::new(&self.laplacian);
        let stats = conjugate_gradient_into(&op, rhs, &pre, self.options, x, ws)?;
        if !stats.converged {
            return Err(SolverError::NoConvergence {
                algorithm: "laplacian pcg",
                iterations: stats.iterations,
                residual: stats.residual_norm,
            });
        }
        Ok(())
    }

    fn preconditioner_for(&self, rung: LadderRung) -> Result<RungPreconditioner, SolverError> {
        match rung {
            LadderRung::Identity => Ok(RungPreconditioner::Identity),
            LadderRung::Jacobi => {
                let mut state = self.lock();
                if state.jacobi.is_none() {
                    let jacobi = JacobiPreconditioner::from_matrix(&self.laplacian);
                    if jacobi.clamped_entries() > 0 {
                        state.warnings.push(format!(
                            "jacobi preconditioner clamped {} non-positive diagonal entries to 1",
                            jacobi.clamped_entries()
                        ));
                    }
                    state.jacobi = Some(Arc::new(jacobi));
                }
                Ok(RungPreconditioner::Jacobi(
                    state.jacobi.as_ref().expect("just cached").clone(), // cirstag-lint: allow(no-panic-in-lib) -- the Option is populated a few lines above under the same lock
                ))
            }
            LadderRung::Tree => {
                let mut state = self.lock();
                if state.tree.is_none() {
                    let tree = TreePreconditioner::new(&self.graph, 0x7e3)?;
                    state.tree = Some(Arc::new(tree));
                }
                Ok(RungPreconditioner::Tree(
                    state.tree.as_ref().expect("just cached").clone(), // cirstag-lint: allow(no-panic-in-lib) -- the Option is populated a few lines above under the same lock
                ))
            }
            LadderRung::Dense => unreachable!("dense rung does not use CG"), // cirstag-lint: allow(no-panic-in-lib) -- cg_solve is never dispatched for the Dense rung; solve routes it to dense_solve
        }
    }

    /// Terminal ladder rung: `x = V Λ⁺ Vᵀ b` through a cached full
    /// eigendecomposition of the Laplacian. `O(n³)` once, `O(n²)` per solve.
    fn dense_solve_into(&self, rhs: &[f64], x: &mut [f64]) -> Result<(), SolverError> {
        // Failpoint: fail even the terminal rung so tests can observe ladder
        // exhaustion.
        if cirstag_linalg::fail::trigger("solver/dense-solve").is_some() {
            return Err(SolverError::NoConvergence {
                algorithm: "dense laplacian solve (failpoint)",
                iterations: 0,
                residual: f64::INFINITY,
            });
        }
        let eig = {
            let mut state = self.lock();
            if state.dense.is_none() {
                let (eigenvalues, eigenvectors) = jacobi_eigen(&self.laplacian.to_dense())?;
                state.dense = Some(Arc::new(DenseEigen {
                    eigenvalues,
                    eigenvectors,
                }));
            }
            state.dense.as_ref().expect("just cached").clone() // cirstag-lint: allow(no-panic-in-lib) -- the Option is populated a few lines above under the same lock
        };
        let n = rhs.len();
        let scale = eig
            .eigenvalues
            .iter()
            .fold(0.0_f64, |acc, v| acc.max(v.abs()))
            .max(1.0);
        let threshold = 1e-12 * scale;
        x.fill(0.0);
        for k in 0..n {
            let lam = eig.eigenvalues[k];
            if lam <= threshold {
                continue;
            }
            let mut coeff = 0.0;
            for i in 0..n {
                coeff += eig.eigenvectors.get(i, k) * rhs[i];
            }
            coeff /= lam;
            for i in 0..n {
                x[i] += coeff * eig.eigenvectors.get(i, k);
            }
        }
        Ok(())
    }

    /// Effective resistance between nodes `p` and `q`:
    /// `R_eff(p, q) = (e_p − e_q)ᵀ L⁺ (e_p − e_q)`.
    ///
    /// # Errors
    ///
    /// - [`SolverError::InvalidArgument`] when `p` or `q` is out of bounds.
    /// - Propagates solve failures.
    pub fn effective_resistance(&self, p: usize, q: usize) -> Result<f64, SolverError> {
        let n = self.dim();
        if p >= n || q >= n {
            return Err(SolverError::InvalidArgument {
                reason: format!("node pair ({p}, {q}) out of bounds for {n} nodes"),
            });
        }
        if p == q {
            return Ok(0.0);
        }
        let mut b = vec![0.0; n];
        b[p] = 1.0;
        b[q] = -1.0;
        let x = self.solve(&b)?;
        Ok(x[p] - x[q])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_satisfies_system() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 3.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        let mut b = vec![1.0, -0.5, 2.0, -2.5];
        vecops::center(&mut b);
        let x = s.solve(&b).unwrap();
        let lx = s.laplacian().mul_vec(&x);
        for (a, c) in lx.iter().zip(&b) {
            assert!((a - c).abs() < 1e-7, "residual entry {}", (a - c).abs());
        }
        assert!(vecops::mean(&x).abs() < 1e-12);
    }

    #[test]
    fn series_resistors() {
        let g = Graph::from_edges(3, &[(0, 1, 2.0), (1, 2, 4.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        // R = 1/2 + 1/4.
        assert!((s.effective_resistance(0, 2).unwrap() - 0.75).abs() < 1e-8);
    }

    #[test]
    fn parallel_resistors_via_cycle() {
        // Triangle of unit resistors: R_eff across one edge = 2/3.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        assert!((s.effective_resistance(0, 1).unwrap() - 2.0 / 3.0).abs() < 1e-8);
    }

    #[test]
    fn resistance_is_symmetric_and_zero_on_diagonal() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 0.5), (3, 0, 1.5)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        let r01 = s.effective_resistance(0, 1).unwrap();
        let r10 = s.effective_resistance(1, 0).unwrap();
        assert!((r01 - r10).abs() < 1e-9);
        assert_eq!(s.effective_resistance(2, 2).unwrap(), 0.0);
    }

    #[test]
    fn resistance_bounded_by_direct_edge() {
        // With an edge (p, q) present, R_eff ≤ 1/w.
        let g =
            Graph::from_edges(4, &[(0, 1, 2.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        assert!(s.effective_resistance(0, 1).unwrap() <= 0.5 + 1e-9);
    }

    #[test]
    fn disconnected_rejected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(LaplacianSolver::new(&g).is_err());
        assert!(
            LaplacianSolver::with_ladder(&g, CgOptions::default(), LadderRung::Identity).is_err()
        );
    }

    #[test]
    fn bounds_checked() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        assert!(s.effective_resistance(0, 5).is_err());
        assert!(s.solve(&[1.0]).is_err());
    }

    #[test]
    fn uncentered_rhs_is_projected() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        // b with nonzero mean: solver should treat it as centered.
        let x = s.solve(&[2.0, 1.0, 1.0]).unwrap();
        let lx = s.laplacian().mul_vec(&x);
        let centered = [2.0 - 4.0 / 3.0, 1.0 - 4.0 / 3.0, 1.0 - 4.0 / 3.0];
        for (a, c) in lx.iter().zip(&centered) {
            assert!((a - c).abs() < 1e-8);
        }
    }

    #[test]
    fn every_ladder_rung_solves_the_system() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 3.0)]).unwrap();
        let mut b = vec![1.0, -0.5, 2.0, -2.5];
        vecops::center(&mut b);
        let reference = LaplacianSolver::new(&g).unwrap().solve(&b).unwrap();
        for start in [
            LadderRung::Identity,
            LadderRung::Jacobi,
            LadderRung::Tree,
            LadderRung::Dense,
        ] {
            let s = LaplacianSolver::with_ladder(&g, CgOptions::default(), start).unwrap();
            let x = s.solve(&b).unwrap();
            for (a, c) in x.iter().zip(&reference) {
                assert!((a - c).abs() < 1e-7, "rung {:?}: {a} vs {c}", start);
            }
            assert!(s.take_events().is_empty(), "no escalation expected");
        }
    }

    #[test]
    fn ladder_escalates_past_an_unconvergent_rung() {
        // max_iter 0 means every CG rung fails immediately; only the dense
        // rung can finish. The ladder must climb Identity → … → Dense and
        // record each step.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let opts = CgOptions {
            tol: 1e-10,
            max_iter: 0,
        };
        let s = LaplacianSolver::with_ladder(&g, opts, LadderRung::Identity).unwrap();
        let mut b = vec![1.0, -1.0, 0.0];
        vecops::center(&mut b);
        let x = s.solve(&b).unwrap();
        let lx = s.laplacian().mul_vec(&x);
        for (a, c) in lx.iter().zip(&b) {
            assert!((a - c).abs() < 1e-9);
        }
        assert_eq!(s.current_rung(), LadderRung::Dense);
        let events = s.take_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].from, LadderRung::Identity);
        assert_eq!(events[2].to, LadderRung::Dense);
        // Sticky escalation: a second solve starts (and stays) dense.
        let _ = s.solve(&b).unwrap();
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn non_escalating_solver_fails_fast() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let opts = CgOptions {
            tol: 1e-10,
            max_iter: 0,
        };
        let s = LaplacianSolver::with_options(&g, opts).unwrap();
        let err = s.solve(&[1.0, -1.0, 0.0]).unwrap_err();
        assert!(matches!(err, SolverError::NoConvergence { .. }));
        assert!(s.take_events().is_empty());
    }

    #[test]
    fn solve_into_matches_solve_bitwise() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 1.0), (0, 3, 3.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        let b = [1.0, -0.5, 2.0, -2.5];
        let reference = s.solve(&b).unwrap();
        let mut x = vec![f64::NAN; 4];
        s.solve_into(&b, &mut x).unwrap();
        for (a, c) in x.iter().zip(&reference) {
            assert_eq!(a.to_bits(), c.to_bits());
        }
        let mut short = vec![0.0; 3];
        assert!(matches!(
            s.solve_into(&b, &mut short),
            Err(SolverError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn solve_block_columns_match_scalar_solves_bitwise() {
        let g = Graph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 4, 0.5),
                (4, 5, 1.0),
                (5, 0, 3.0),
                (1, 4, 0.25),
            ],
        )
        .unwrap();
        for build in [
            LaplacianSolver::new(&g).unwrap(),
            LaplacianSolver::with_tree_preconditioner(&g, CgOptions::default()).unwrap(),
        ] {
            let cols: Vec<Vec<f64>> = (0..3)
                .map(|j| (0..6).map(|i| ((i * 5 + j * 3) % 7) as f64 - 3.0).collect())
                .collect();
            let b = DenseMatrix::from_columns(&cols).unwrap();
            let block = build.solve_block(&b).unwrap();
            for (j, col) in cols.iter().enumerate() {
                let scalar = build.solve(col).unwrap();
                for i in 0..6 {
                    assert_eq!(
                        block.get(i, j).to_bits(),
                        scalar[i].to_bits(),
                        "col {j}, row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn solve_block_checks_shape_and_handles_empty_panel() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let s = LaplacianSolver::new(&g).unwrap();
        assert!(matches!(
            s.solve_block(&DenseMatrix::zeros(2, 1)),
            Err(SolverError::DimensionMismatch { .. })
        ));
        let empty = s.solve_block(&DenseMatrix::zeros(3, 0)).unwrap();
        assert_eq!(empty.shape(), (3, 0));
    }

    #[test]
    fn solve_block_escalates_like_scalar_solves() {
        // max_iter 0 fails every CG rung; the block ladder must climb to the
        // dense rung and still answer every column.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let opts = CgOptions {
            tol: 1e-10,
            max_iter: 0,
        };
        let s = LaplacianSolver::with_ladder(&g, opts, LadderRung::Identity).unwrap();
        let b = DenseMatrix::from_columns(&[vec![1.0, -1.0, 0.0], vec![0.5, 0.0, -0.5]]).unwrap();
        let x = s.solve_block(&b).unwrap();
        for j in 0..2 {
            let col: Vec<f64> = (0..3).map(|i| b.get(i, j)).collect();
            let lx = s
                .laplacian()
                .mul_vec(&(0..3).map(|i| x.get(i, j)).collect::<Vec<_>>());
            for (a, c) in lx.iter().zip(&col) {
                assert!((a - c).abs() < 1e-9);
            }
        }
        assert_eq!(s.current_rung(), LadderRung::Dense);
        let events = s.take_events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].from, LadderRung::Identity);
        assert!(events[0].cause.contains("block"));
        // Non-escalating solver fails fast on the same input.
        let fixed = LaplacianSolver::with_options(&g, opts).unwrap();
        assert!(matches!(
            fixed.solve_block(&b),
            Err(SolverError::NoConvergence { .. })
        ));
    }

    #[test]
    fn clone_preserves_ladder_position() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let opts = CgOptions {
            tol: 1e-10,
            max_iter: 0,
        };
        let s = LaplacianSolver::with_ladder(&g, opts, LadderRung::Tree).unwrap();
        let _ = s.solve(&[1.0, -1.0, 0.0]).unwrap();
        assert_eq!(s.clone().current_rung(), LadderRung::Dense);
    }
}
