//! Lanczos iteration with full reorthogonalization.

use crate::{CsrOperator, LinearOperator, ScaledShiftedOperator, SolverError, SolverWorkspace};
use cirstag_graph::Graph;
use cirstag_linalg::{tridiag_eigen, vecops, DenseMatrix};

/// Deterministic xorshift64* stream used to seed start vectors.
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift(seed ^ 0x9e37_79b9_7f4a_7c15 | 1)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform in `[-0.5, 0.5)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    }

    /// Rademacher ±1.
    pub(crate) fn next_sign(&mut self) -> f64 {
        if self.next_u64() & 1 == 0 {
            1.0
        } else {
            -1.0
        }
    }
}

/// Result of a Lanczos eigensolve.
#[derive(Debug, Clone)]
pub struct LanczosResult {
    /// Converged Ritz values, sorted descending (they approximate the
    /// *largest* eigenvalues of the operator).
    pub eigenvalues: Vec<f64>,
    /// Ritz vectors: column `j` pairs with `eigenvalues[j]`.
    pub eigenvectors: DenseMatrix,
    /// Number of Lanczos steps performed.
    pub iterations: usize,
}

/// Computes the `k` largest eigenpairs of a symmetric operator using Lanczos
/// with full reorthogonalization.
///
/// The Krylov dimension grows until the top-`k` Ritz residuals drop below
/// `tol` (measured by the standard `β·|yₘ|` bound) or `max_iter` steps have
/// been taken; with full reorthogonalization the iteration is numerically
/// robust for the modest `k` used by spectral embeddings.
///
/// Degenerate eigenvalues: a Krylov space built from a single start vector
/// contains only one direction per eigenspace, so for operators with exact
/// multiplets (e.g. Laplacians of perfectly symmetric graphs) the returned
/// basis covers each multiplet partially until a breakdown-restart injects a
/// fresh direction. Circuit graphs are irregular enough that this does not
/// arise in practice.
///
/// # Errors
///
/// - [`SolverError::InvalidArgument`] when `k == 0` or `k > op.dim()`.
/// - [`SolverError::NoConvergence`] when the Krylov space is exhausted
///   (happy breakdown) before `k` Ritz pairs exist, which cannot happen for
///   `k ≤ rank` in exact arithmetic.
pub fn lanczos_largest<A>(
    op: &A,
    k: usize,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> Result<LanczosResult, SolverError>
where
    A: LinearOperator + ?Sized,
{
    let mut ws = SolverWorkspace::new();
    lanczos_largest_ws(op, k, max_iter, tol, seed, &mut ws)
}

/// [`lanczos_largest`] with caller-provided scratch: every per-iteration
/// buffer (start vector, residual, each Krylov basis vector) is checked out
/// of `ws` and returned on exit, so repeated solves against a warm workspace
/// allocate nothing in the iteration loop. Bit-identical to
/// [`lanczos_largest`].
///
/// # Errors
///
/// Same as [`lanczos_largest`].
pub fn lanczos_largest_ws<A>(
    op: &A,
    k: usize,
    max_iter: usize,
    tol: f64,
    seed: u64,
    ws: &mut SolverWorkspace,
) -> Result<LanczosResult, SolverError>
where
    A: LinearOperator + ?Sized,
{
    let n = op.dim();
    if k == 0 || k > n {
        return Err(SolverError::InvalidArgument {
            reason: format!("requested {k} eigenpairs of a dimension-{n} operator"),
        });
    }
    // Failpoint: force the typed no-convergence failure so tests can drive
    // the retry / dense-fallback ladder above this solver.
    if cirstag_linalg::fail::trigger("solver/lanczos").is_some() {
        return Err(SolverError::NoConvergence {
            algorithm: "lanczos (failpoint)",
            iterations: 0,
            residual: f64::INFINITY,
        });
    }
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut w = ws.take(n);
    let result = lanczos_core(op, k, max_iter, tol, seed, &mut basis, &mut w, ws);
    ws.put(w);
    for b in basis.drain(..) {
        ws.put(b);
    }
    result
}

/// Iteration loop of [`lanczos_largest_ws`]; the wrapper owns draining the
/// basis back into the workspace on every exit path.
#[allow(clippy::too_many_arguments)]
fn lanczos_core<A>(
    op: &A,
    k: usize,
    max_iter: usize,
    tol: f64,
    seed: u64,
    basis: &mut Vec<Vec<f64>>,
    w: &mut [f64],
    ws: &mut SolverWorkspace,
) -> Result<LanczosResult, SolverError>
where
    A: LinearOperator + ?Sized,
{
    let n = op.dim();
    let max_iter = max_iter.min(n).max(k);
    let mut rng = XorShift::new(seed);
    let mut q = ws.take(n);
    for x in q.iter_mut() {
        *x = rng.next_f64();
    }
    vecops::normalize(&mut q);
    basis.push(q);
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();

    loop {
        let j = alphas.len();
        op.apply(&basis[j], w)?;
        let alpha = vecops::dot(w, &basis[j]);
        alphas.push(alpha);
        vecops::axpy(-alpha, &basis[j], w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            vecops::axpy(-beta_prev, &basis[j - 1], w);
        }
        // Full reorthogonalization (twice for safety).
        for _ in 0..2 {
            for b in basis.iter() {
                let c = vecops::dot(w, b);
                vecops::axpy(-c, b, w);
            }
        }
        let beta = vecops::norm2(w);
        let m = alphas.len();

        // Convergence check (cheap relative to the operator applications for
        // the sparse operators used here).
        let done_budget = m >= max_iter;
        let breakdown = beta < 1e-14;
        if m >= k && (done_budget || breakdown || m.is_multiple_of(5)) {
            let tri = tridiag_eigen(&alphas, &betas)?;
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by(|&a, &b| tri.eigenvalues[b].total_cmp(&tri.eigenvalues[a]));
            let top = &order[..k];
            let scale = tri
                .eigenvalues
                .iter()
                .fold(0.0_f64, |s, v| s.max(v.abs()))
                .max(1.0);
            let converged = breakdown
                || top
                    .iter()
                    .all(|&j| beta * tri.eigenvectors.get(m - 1, j).abs() <= tol * scale);
            if converged || done_budget {
                // Assemble Ritz vectors v = Q y.
                let mut vectors = DenseMatrix::zeros(n, k);
                let mut eigenvalues = Vec::with_capacity(k);
                for (out_col, &jj) in top.iter().enumerate() {
                    eigenvalues.push(tri.eigenvalues[jj]);
                    for (b_idx, b) in basis.iter().take(m).enumerate() {
                        let y = tri.eigenvectors.get(b_idx, jj);
                        // cirstag-lint: allow(float-discipline) -- exact-zero skip of zero Ritz coefficients; a sparsity test, not a tolerance
                        if y != 0.0 {
                            for i in 0..n {
                                let cur = vectors.get(i, out_col);
                                vectors.set(i, out_col, cur + y * b[i]);
                            }
                        }
                    }
                }
                // Normalize Ritz vectors (guards round-off drift).
                for c in 0..k {
                    let mut col = vectors.column(c);
                    let nrm = vecops::normalize(&mut col);
                    if nrm > 0.0 {
                        for i in 0..n {
                            vectors.set(i, c, col[i]);
                        }
                    }
                }
                return Ok(LanczosResult {
                    eigenvalues,
                    eigenvectors: vectors,
                    iterations: m,
                });
            }
        }
        if breakdown {
            // Krylov space exhausted before finding k pairs: restart with a
            // fresh random direction orthogonal to the current basis.
            let mut fresh = ws.take(n);
            for x in fresh.iter_mut() {
                *x = rng.next_f64();
            }
            for b in basis.iter() {
                let c = vecops::dot(&fresh, b);
                vecops::axpy(-c, b, &mut fresh);
            }
            // cirstag-lint: allow(float-discipline) -- normalize returns exactly 0.0 only for an all-zero vector (Krylov exhaustion)
            if vecops::normalize(&mut fresh) == 0.0 {
                ws.put(fresh);
                return Err(SolverError::NoConvergence {
                    algorithm: "lanczos (krylov exhausted)",
                    iterations: alphas.len(),
                    residual: beta,
                });
            }
            betas.push(0.0);
            basis.push(fresh);
        } else {
            betas.push(beta);
            let mut next = ws.take(n);
            next.copy_from_slice(w);
            vecops::scale(1.0 / beta, &mut next);
            basis.push(next);
        }
    }
}

/// Computes the `m` smallest eigenpairs of the *normalized Laplacian* of `g`
/// — the Phase-1 spectral-embedding eigenproblem.
///
/// Because the spectrum of `L_norm` lies in `[0, 2]`, the smallest
/// eigenvalues are the largest eigenvalues of `2I − L_norm`, so a plain
/// Lanczos run on the flipped operator suffices (this is the standard trick
/// that avoids shift-invert solves). Results are returned ascending:
/// `(eigenvalues, eigenvectors)` with eigenvector `j` in column `j`.
///
/// # Errors
///
/// Propagates [`lanczos_largest`] errors; additionally
/// [`SolverError::InvalidArgument`] when `m` exceeds the node count.
pub fn smallest_normalized_laplacian_eigs(
    g: &Graph,
    m: usize,
    max_iter: usize,
    tol: f64,
    seed: u64,
) -> Result<(Vec<f64>, DenseMatrix), SolverError> {
    let mut ws = SolverWorkspace::new();
    smallest_normalized_laplacian_eigs_ws(g, m, max_iter, tol, seed, &mut ws)
}

/// [`smallest_normalized_laplacian_eigs`] with caller-provided scratch (see
/// [`lanczos_largest_ws`]); bit-identical to the allocating form.
///
/// # Errors
///
/// Same as [`smallest_normalized_laplacian_eigs`].
pub fn smallest_normalized_laplacian_eigs_ws(
    g: &Graph,
    m: usize,
    max_iter: usize,
    tol: f64,
    seed: u64,
    ws: &mut SolverWorkspace,
) -> Result<(Vec<f64>, DenseMatrix), SolverError> {
    let l_norm = g.normalized_laplacian();
    let flipped = ScaledShiftedOperator::new(2.0, -1.0, CsrOperator::new(&l_norm));
    let res = lanczos_largest_ws(&flipped, m, max_iter, tol, seed, ws)?;
    // mu = 2 - lambda, descending mu <=> ascending lambda.
    let eigenvalues: Vec<f64> = res
        .eigenvalues
        .iter()
        .map(|&mu| flipped.unshift_eigenvalue(mu))
        .collect();
    Ok((eigenvalues, res.eigenvectors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirstag_linalg::CsrMatrix;

    #[test]
    fn finds_largest_of_diagonal() {
        let m = CsrMatrix::from_diagonal(&[1.0, 5.0, 3.0, 2.0, 4.0]);
        let op = CsrOperator::new(&m);
        let r = lanczos_largest(&op, 2, 50, 1e-10, 1).unwrap();
        assert!((r.eigenvalues[0] - 5.0).abs() < 1e-8);
        assert!((r.eigenvalues[1] - 4.0).abs() < 1e-8);
    }

    #[test]
    fn ritz_pairs_satisfy_definition() {
        // Symmetric pentadiagonal-ish test matrix.
        let mut trips = Vec::new();
        let n = 30;
        for i in 0..n {
            trips.push((i, i, (i % 7) as f64 + 1.0));
            if i + 1 < n {
                trips.push((i, i + 1, 0.5));
                trips.push((i + 1, i, 0.5));
            }
        }
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let op = CsrOperator::new(&m);
        let r = lanczos_largest(&op, 3, 60, 1e-10, 7).unwrap();
        for j in 0..3 {
            let v = r.eigenvectors.column(j);
            let av = m.mul_vec(&v);
            let lam = r.eigenvalues[j];
            let res: f64 = av
                .iter()
                .zip(&v)
                .map(|(a, b)| (a - lam * b) * (a - lam * b))
                .sum::<f64>()
                .sqrt();
            assert!(res < 1e-6, "ritz residual {res} for pair {j}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = CsrMatrix::from_diagonal(&(0..20).map(|i| i as f64).collect::<Vec<_>>());
        let op = CsrOperator::new(&m);
        let r = lanczos_largest(&op, 4, 40, 1e-10, 3).unwrap();
        for a in 0..4 {
            for b in 0..4 {
                let d = vecops::dot(&r.eigenvectors.column(a), &r.eigenvectors.column(b));
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-7, "({a},{b}) inner product {d}");
            }
        }
    }

    #[test]
    fn invalid_k_rejected() {
        let m = CsrMatrix::identity(3);
        let op = CsrOperator::new(&m);
        assert!(lanczos_largest(&op, 0, 10, 1e-8, 0).is_err());
        assert!(lanczos_largest(&op, 4, 10, 1e-8, 0).is_err());
    }

    #[test]
    fn handles_multiplicity_via_restart() {
        // Identity has one distinct eigenvalue; Krylov space collapses after
        // one step and the solver must restart to deliver k = 3 pairs.
        let m = CsrMatrix::identity(6);
        let op = CsrOperator::new(&m);
        let r = lanczos_largest(&op, 3, 30, 1e-10, 11).unwrap();
        for v in &r.eigenvalues {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn smallest_normalized_eigs_on_path() {
        // P3 normalized Laplacian eigenvalues: 0, 1, 2.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let (vals, vecs) = smallest_normalized_laplacian_eigs(&g, 3, 60, 1e-10, 5).unwrap();
        assert!((vals[0] - 0.0).abs() < 1e-8);
        assert!((vals[1] - 1.0).abs() < 1e-8);
        assert!((vals[2] - 2.0).abs() < 1e-8);
        assert_eq!(vecs.shape(), (3, 3));
    }

    #[test]
    fn smallest_eig_vector_is_degree_weighted_constant() {
        let g = Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 2, 1.0),
                (2, 3, 1.0),
                (3, 0, 1.0),
                (0, 2, 1.0),
            ],
        )
        .unwrap();
        let (vals, vecs) = smallest_normalized_laplacian_eigs(&g, 1, 60, 1e-10, 9).unwrap();
        assert!(vals[0].abs() < 1e-8);
        // Eigenvector ∝ D^{1/2} 1.
        let d = g.degree_vector();
        let v = vecs.column(0);
        let ratio = v[0] / d[0].sqrt();
        for i in 0..4 {
            assert!((v[i] / d[i].sqrt() - ratio).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let m = CsrMatrix::from_diagonal(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        let op = CsrOperator::new(&m);
        let a = lanczos_largest(&op, 2, 30, 1e-10, 123).unwrap();
        let b = lanczos_largest(&op, 2, 30, 1e-10, 123).unwrap();
        assert_eq!(a.eigenvalues, b.eigenvalues);
    }

    #[test]
    fn workspace_form_is_bit_identical_and_reuses_buffers() {
        let mut trips = Vec::new();
        let n = 30;
        for i in 0..n {
            trips.push((i, i, (i % 7) as f64 + 1.0));
            if i + 1 < n {
                trips.push((i, i + 1, 0.5));
                trips.push((i + 1, i, 0.5));
            }
        }
        let m = CsrMatrix::from_triplets(n, n, &trips).unwrap();
        let op = CsrOperator::new(&m);
        let reference = lanczos_largest(&op, 3, 60, 1e-10, 7).unwrap();
        let mut ws = SolverWorkspace::new();
        let first = lanczos_largest_ws(&op, 3, 60, 1e-10, 7, &mut ws).unwrap();
        assert_eq!(first.iterations, reference.iterations);
        for (a, b) in first.eigenvalues.iter().zip(&reference.eigenvalues) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            first.eigenvectors.as_slice(),
            reference.eigenvectors.as_slice()
        );
        // A second run against the warm workspace allocates no new buffers.
        let misses = ws.misses();
        let second = lanczos_largest_ws(&op, 3, 60, 1e-10, 7, &mut ws).unwrap();
        assert_eq!(ws.misses(), misses, "warm rerun must not allocate");
        assert_eq!(
            second.eigenvectors.as_slice(),
            reference.eigenvectors.as_slice()
        );
    }
}
