//! Abstract linear operators consumed by the iterative methods.

use crate::SolverError;
use cirstag_linalg::CsrMatrix;

/// A symmetric linear operator `y = A x` presented matrix-free.
///
/// The eigensolvers in this crate only need products with vectors, so
/// operators such as `2I − L_norm` or `L_Y⁺ L_X` never have to be assembled.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y ← A x`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] (or a wrapped shape error)
    /// when `x.len() != self.dim()` or `y.len() != self.dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), SolverError>;

    /// Convenience allocation form of [`LinearOperator::apply`].
    ///
    /// # Errors
    ///
    /// Same as [`LinearOperator::apply`].
    fn apply_vec(&self, x: &[f64]) -> Result<Vec<f64>, SolverError> {
        let mut y = vec![0.0; self.dim()];
        self.apply(x, &mut y)?;
        Ok(y)
    }
}

/// A [`LinearOperator`] that can also advance a whole panel of vectors in
/// one pass over its data.
///
/// Panels are row-major with `ncols` interleaved columns
/// (`x[i * ncols + j]` is entry `i` of column `j`), the layout the block
/// solvers iterate over. Column `j` of `apply_panel` must be bit-identical
/// to [`LinearOperator::apply`] on column `j` alone.
pub trait PanelOperator: LinearOperator {
    /// Computes `y ← A x` column-wise over row-major `ncols`-wide panels.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] (or a wrapped shape error)
    /// when the panel lengths do not equal `self.dim() * ncols`.
    fn apply_panel(&self, x: &[f64], y: &mut [f64], ncols: usize) -> Result<(), SolverError>;
}

/// A [`LinearOperator`] backed by a CSR matrix.
#[derive(Debug, Clone)]
pub struct CsrOperator<'a> {
    matrix: &'a CsrMatrix,
}

impl<'a> CsrOperator<'a> {
    /// Wraps a square CSR matrix as an operator.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(matrix: &'a CsrMatrix) -> Self {
        assert_eq!(
            matrix.nrows(),
            matrix.ncols(),
            "CsrOperator requires a square matrix"
        );
        CsrOperator { matrix }
    }
}

impl LinearOperator for CsrOperator<'_> {
    fn dim(&self) -> usize {
        self.matrix.nrows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), SolverError> {
        self.matrix
            .try_mul_vec_into(x, y)
            .map_err(SolverError::from)
    }
}

impl PanelOperator for CsrOperator<'_> {
    fn apply_panel(&self, x: &[f64], y: &mut [f64], ncols: usize) -> Result<(), SolverError> {
        self.matrix
            .try_mul_panel_into(x, y, ncols)
            .map_err(SolverError::from)
    }
}

/// The operator `alpha · I + beta · A` for an inner operator `A`.
///
/// Used to flip spectra: with `alpha = 2`, `beta = −1` and `A = L_norm`
/// (whose spectrum lies in `[0, 2]`), the *largest* eigenvalues of the
/// shifted operator correspond to the *smallest* eigenvalues of `L_norm`,
/// letting plain Lanczos find the Phase-1 embedding eigenvectors.
#[derive(Debug, Clone)]
pub struct ScaledShiftedOperator<A> {
    alpha: f64,
    beta: f64,
    inner: A,
}

impl<A: LinearOperator> ScaledShiftedOperator<A> {
    /// Creates `alpha · I + beta · inner`.
    pub fn new(alpha: f64, beta: f64, inner: A) -> Self {
        ScaledShiftedOperator { alpha, beta, inner }
    }

    /// Maps an eigenvalue of the shifted operator back to the inner
    /// operator's eigenvalue.
    ///
    /// # Panics
    ///
    /// Panics if `beta == 0`.
    pub fn unshift_eigenvalue(&self, mu: f64) -> f64 {
        assert!(self.beta != 0.0, "cannot unshift with beta = 0"); // cirstag-lint: allow(float-discipline) -- exact-zero guard backing the documented panic contract of unshift_eigenvalue
        (mu - self.alpha) / self.beta
    }
}

impl<A: LinearOperator> LinearOperator for ScaledShiftedOperator<A> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) -> Result<(), SolverError> {
        self.inner.apply(x, y)?;
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = self.alpha * xi + self.beta * *yi;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_operator_applies_matrix() {
        let m = CsrMatrix::from_diagonal(&[1.0, 2.0, 3.0]);
        let op = CsrOperator::new(&m);
        assert_eq!(op.dim(), 3);
        assert_eq!(op.apply_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn shifted_operator_flips_spectrum() {
        let m = CsrMatrix::from_diagonal(&[0.5, 1.5]);
        let op = ScaledShiftedOperator::new(2.0, -1.0, CsrOperator::new(&m));
        // (2I - M) applied to basis vectors.
        assert_eq!(op.apply_vec(&[1.0, 0.0]).unwrap(), vec![1.5, 0.0]);
        assert_eq!(op.apply_vec(&[0.0, 1.0]).unwrap(), vec![0.0, 0.5]);
        assert!((op.unshift_eigenvalue(1.5) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn mismatched_apply_is_a_typed_error() {
        let m = CsrMatrix::from_diagonal(&[1.0, 2.0]);
        let op = CsrOperator::new(&m);
        assert!(op.apply_vec(&[1.0, 2.0, 3.0]).is_err());
        let shifted = ScaledShiftedOperator::new(1.0, 1.0, CsrOperator::new(&m));
        assert!(shifted.apply_vec(&[1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn csr_operator_rejects_rectangular() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        let _ = CsrOperator::new(&m);
    }
}
