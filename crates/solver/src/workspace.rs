//! Reusable scratch-buffer arena for the iterative solvers.
//!
//! Every hot loop in this crate (CG, block CG, Lanczos, the tree
//! preconditioner sweeps) needs a handful of length-`n` vectors per
//! iteration. Allocating them fresh each time dominates small solves and
//! fragments the heap on large ones; [`SolverWorkspace`] keeps returned
//! buffers in a pool so steady-state iterations perform zero heap
//! allocations. The miss counter doubles as the debug-visible allocation
//! counter the bench suite asserts against.

/// A pool of reusable `f64`/`usize` scratch buffers.
///
/// `take` hands out a zeroed buffer of the requested length, reusing the
/// smallest pooled buffer whose capacity fits (best-fit) and allocating only
/// on a miss; `put` returns a buffer to the pool. The pool is intentionally
/// unbounded: solver working sets are a small constant number of vectors, so
/// the high-water mark is reached within one outer iteration and reused
/// thereafter.
///
/// # Example
///
/// ```
/// use cirstag_solver::SolverWorkspace;
///
/// let mut ws = SolverWorkspace::new();
/// let buf = ws.take(8);
/// assert_eq!(buf.len(), 8);
/// ws.put(buf);
/// let again = ws.take(4); // reuses the pooled allocation
/// assert_eq!(ws.misses(), 1);
/// ws.put(again);
/// ```
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    pool: Vec<Vec<f64>>,
    index_pool: Vec<Vec<usize>>,
    misses: usize,
}

impl SolverWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        SolverWorkspace::default()
    }

    /// Checks out a zeroed `f64` buffer of length `len`.
    ///
    /// Reuses the best-fitting pooled buffer when one is available;
    /// otherwise allocates and records a miss.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.pool.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.pool[b].capacity())
            {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => self.pool.swap_remove(i),
            None => {
                self.misses += 1;
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns an `f64` buffer to the pool.
    pub fn put(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Checks out a zeroed `usize` buffer of length `len`.
    ///
    /// Index buffers back the convergence masks and iteration counters of
    /// the block solver, keeping those exact without round-tripping through
    /// `f64` casts.
    pub fn take_indices(&mut self, len: usize) -> Vec<usize> {
        let mut best: Option<usize> = None;
        for (i, buf) in self.index_pool.iter().enumerate() {
            if buf.capacity() >= len
                && best.is_none_or(|b| buf.capacity() < self.index_pool[b].capacity())
            {
                best = Some(i);
            }
        }
        let mut buf = match best {
            Some(i) => self.index_pool.swap_remove(i),
            None => {
                self.misses += 1;
                Vec::with_capacity(len)
            }
        };
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a `usize` buffer to the pool.
    pub fn put_indices(&mut self, buf: Vec<usize>) {
        self.index_pool.push(buf);
    }

    /// Number of `take`/`take_indices` calls that had to allocate.
    ///
    /// A warmed workspace re-running the same solve must keep this constant;
    /// the allocation-discipline test in `crates/bench` asserts exactly that.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Number of buffers currently pooled (both kinds).
    pub fn pooled(&self) -> usize {
        self.pool.len() + self.index_pool.len()
    }

    /// Merges another workspace's pooled buffers (and miss count) into this
    /// one. Used to hand a workspace to a solve without holding a lock for
    /// its duration: check out with `std::mem::take`, check back in here.
    pub fn absorb(&mut self, other: SolverWorkspace) {
        if self.pool.is_empty() && self.index_pool.is_empty() {
            // The common checkout/checkin round trip: this side is the empty
            // husk `std::mem::take` left behind, so adopt the returning
            // workspace's containers wholesale instead of re-extending (which
            // would reallocate the pool vectors on every solve).
            let misses = self.misses;
            *self = other;
            self.misses += misses;
            return;
        }
        self.pool.extend(other.pool);
        self.index_pool.extend(other.index_pool);
        self.misses += other.misses;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroes_and_reuses() {
        let mut ws = SolverWorkspace::new();
        let mut a = ws.take(4);
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.put(a);
        let b = ws.take(4);
        assert_eq!(b, vec![0.0; 4]);
        assert_eq!(ws.misses(), 1, "second take must reuse the pooled buffer");
        ws.put(b);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = SolverWorkspace::new();
        let big = ws.take(100);
        let small = ws.take(10);
        ws.put(big);
        ws.put(small);
        let got = ws.take(8);
        assert!(
            got.capacity() < 100,
            "best fit should pick the small buffer"
        );
        ws.put(got);
        assert_eq!(ws.pooled(), 2);
    }

    #[test]
    fn shorter_request_shrinks_longer_buffer() {
        let mut ws = SolverWorkspace::new();
        ws.put(vec![1.0; 16]);
        let buf = ws.take(3);
        assert_eq!(buf.len(), 3);
        assert_eq!(buf, vec![0.0; 3]);
        assert_eq!(ws.misses(), 0);
    }

    #[test]
    fn index_pool_is_independent() {
        let mut ws = SolverWorkspace::new();
        let idx = ws.take_indices(5);
        assert_eq!(idx, vec![0; 5]);
        ws.put_indices(idx);
        let again = ws.take_indices(2);
        assert_eq!(ws.misses(), 1);
        ws.put_indices(again);
    }

    #[test]
    fn absorb_merges_pools_and_misses() {
        let mut a = SolverWorkspace::new();
        let mut b = SolverWorkspace::new();
        let buf = b.take(4);
        b.put(buf);
        a.absorb(b);
        assert_eq!(a.misses(), 1);
        assert_eq!(a.pooled(), 1);
        let reused = a.take(4);
        assert_eq!(a.misses(), 1);
        a.put(reused);
    }
}
