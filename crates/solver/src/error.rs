use std::error::Error;
use std::fmt;

/// Error type for the solver crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolverError {
    /// An underlying linear-algebra operation failed.
    Linalg(cirstag_linalg::LinalgError),
    /// An underlying graph operation failed.
    Graph(cirstag_graph::GraphError),
    /// An iterative method exhausted its budget without reaching tolerance.
    NoConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Iterations performed.
        iterations: usize,
        /// Residual norm (or error proxy) at the last iteration.
        residual: f64,
    },
    /// The operator/right-hand-side dimensions disagree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension actually supplied.
        actual: usize,
    },
    /// An argument was invalid.
    InvalidArgument {
        /// Description of the violated requirement.
        reason: String,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            SolverError::Graph(e) => write!(f, "graph error: {e}"),
            SolverError::NoConvergence {
                algorithm,
                iterations,
                residual,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            SolverError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            SolverError::InvalidArgument { reason } => write!(f, "invalid argument: {reason}"),
        }
    }
}

impl Error for SolverError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SolverError::Linalg(e) => Some(e),
            SolverError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cirstag_linalg::LinalgError> for SolverError {
    fn from(e: cirstag_linalg::LinalgError) -> Self {
        SolverError::Linalg(e)
    }
}

impl From<cirstag_graph::GraphError> for SolverError {
    fn from(e: cirstag_graph::GraphError) -> Self {
        SolverError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let e: SolverError = cirstag_graph::GraphError::Disconnected.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("graph error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolverError>();
    }
}
