//! Generalized Lanczos for the pencil `L_X v = ζ L_Y v`.
//!
//! Phase 3 of CirSTAG needs the largest eigenpairs of `L_Y⁺ L_X`, where
//! `L_X` / `L_Y` are the input/output manifold Laplacians. On the subspace
//! orthogonal to the all-ones vector, `L_Y` is positive definite, so
//! `A = L_Y⁻¹ L_X` is self-adjoint with respect to the `L_Y` inner product
//! `⟨u, v⟩_B = uᵀ L_Y v`. We run a B-orthogonal Lanczos iteration: each step
//! costs one sparse product with `L_X` plus one Laplacian solve with `L_Y`.

use crate::lanczos::XorShift;
use crate::{LaplacianSolver, SolverError, SolverWorkspace};
use cirstag_linalg::{tridiag_eigen, vecops, CsrMatrix, DenseMatrix};

/// Largest generalized eigenpairs of `L_X v = ζ L_Y v`.
#[derive(Debug, Clone)]
pub struct GeneralizedEigen {
    /// Generalized eigenvalues, sorted descending (`ζ_1 ≥ ζ_2 ≥ …`).
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors, `B`-orthonormal (`v_iᵀ L_Y v_j = δ_ij`); column `j`
    /// pairs with `eigenvalues[j]`.
    pub eigenvectors: DenseMatrix,
    /// Lanczos steps performed.
    pub iterations: usize,
}

/// Computes the `s` largest eigenpairs of the symmetric PSD pencil
/// `(L_X, L_Y)` via B-orthogonal Lanczos with full reorthogonalization.
///
/// `lx` must be the Laplacian of a connected graph over the same node set as
/// the graph behind `ly_solver`; both have the all-ones nullspace, which the
/// iteration avoids by keeping every basis vector mean-zero.
///
/// # Errors
///
/// - [`SolverError::DimensionMismatch`] when `lx` and the solver disagree on
///   the dimension.
/// - [`SolverError::InvalidArgument`] when `s` is zero or too large.
/// - Propagates Laplacian solve failures.
pub fn generalized_lanczos(
    lx: &CsrMatrix,
    ly_solver: &LaplacianSolver,
    s: usize,
    max_iter: usize,
    seed: u64,
) -> Result<GeneralizedEigen, SolverError> {
    let mut ws = SolverWorkspace::new();
    generalized_lanczos_ws(lx, ly_solver, s, max_iter, seed, &mut ws)
}

/// [`generalized_lanczos`] with caller-provided scratch: start vectors, the
/// per-step products and every Krylov basis/B-image vector come from `ws`
/// and return to it on exit, so repeated pencils against a warm workspace
/// allocate nothing in the iteration loop. Bit-identical to
/// [`generalized_lanczos`].
///
/// # Errors
///
/// Same as [`generalized_lanczos`].
pub fn generalized_lanczos_ws(
    lx: &CsrMatrix,
    ly_solver: &LaplacianSolver,
    s: usize,
    max_iter: usize,
    seed: u64,
    ws: &mut SolverWorkspace,
) -> Result<GeneralizedEigen, SolverError> {
    let n = ly_solver.dim();
    if lx.nrows() != n || lx.ncols() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            actual: lx.nrows(),
        });
    }
    // The complement of span{1} has dimension n - 1.
    if s == 0 || s + 1 > n {
        return Err(SolverError::InvalidArgument {
            reason: format!("requested {s} generalized eigenpairs of a dimension-{n} pencil"),
        });
    }
    // Failpoint: force the typed no-convergence failure so tests can drive
    // the Phase-3 retry / dense-fallback ladder.
    if cirstag_linalg::fail::trigger("solver/geig").is_some() {
        return Err(SolverError::NoConvergence {
            algorithm: "generalized lanczos (failpoint)",
            iterations: 0,
            residual: f64::INFINITY,
        });
    }
    let mut basis: Vec<Vec<f64>> = Vec::new();
    let mut bimages: Vec<Vec<f64>> = Vec::new();
    let mut z = ws.take(n);
    let mut w = ws.take(n);
    let mut lw = ws.take(n);
    let result = geig_core(
        lx,
        ly_solver,
        s,
        max_iter,
        seed,
        &mut basis,
        &mut bimages,
        &mut z,
        &mut w,
        &mut lw,
        ws,
    );
    ws.put(lw);
    ws.put(w);
    ws.put(z);
    for b in bimages.drain(..) {
        ws.put(b);
    }
    for b in basis.drain(..) {
        ws.put(b);
    }
    result
}

/// Iteration loop of [`generalized_lanczos_ws`]; the wrapper owns draining
/// the basis and B-image vectors back into the workspace on every exit path.
#[allow(clippy::too_many_arguments)]
fn geig_core(
    lx: &CsrMatrix,
    ly_solver: &LaplacianSolver,
    s: usize,
    max_iter: usize,
    seed: u64,
    basis: &mut Vec<Vec<f64>>,
    bimages: &mut Vec<Vec<f64>>,
    z: &mut [f64],
    w: &mut [f64],
    lw: &mut [f64],
    ws: &mut SolverWorkspace,
) -> Result<GeneralizedEigen, SolverError> {
    let n = ly_solver.dim();
    let ly = ly_solver.laplacian();
    let max_iter = max_iter.min(n.saturating_sub(1)).max(s);

    let mut rng = XorShift::new(seed);
    // B-normalized, mean-zero start vector.
    let mut q = ws.take(n);
    for x in q.iter_mut() {
        *x = rng.next_f64();
    }
    vecops::center(&mut q);
    let mut p = ws.take(n);
    ly.try_mul_vec_into(&q, &mut p)?; // p = L_Y q
    let bnorm = vecops::dot(&q, &p).max(0.0).sqrt();
    // cirstag-lint: allow(float-discipline) -- exact-zero norm detects a start vector annihilated by L_Y
    if bnorm == 0.0 {
        ws.put(p);
        ws.put(q);
        return Err(SolverError::InvalidArgument {
            reason: "start vector degenerate under the L_Y inner product".to_string(),
        });
    }
    vecops::scale(1.0 / bnorm, &mut q);
    vecops::scale(1.0 / bnorm, &mut p);

    // basis[j] = q_j, bimages[j] = L_Y q_j.
    basis.push(q);
    bimages.push(p);
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();

    loop {
        let j = alphas.len();
        // z = L_X q_j (mean-zero since 1 is in L_X's nullspace).
        lx.try_mul_vec_into(&basis[j], z)?;
        // w = L_Y⁺ z = A q_j.
        ly_solver.solve_into(z, w)?;
        // alpha_j = ⟨A q_j, q_j⟩_B = zᵀ q_j.
        let alpha = vecops::dot(z, &basis[j]);
        alphas.push(alpha);
        vecops::axpy(-alpha, &basis[j], w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            vecops::axpy(-beta_prev, &basis[j - 1], w);
        }
        // Full B-reorthogonalization: ⟨w, q_i⟩_B = wᵀ (L_Y q_i).
        for _ in 0..2 {
            for (b, bi) in basis.iter().zip(bimages.iter()) {
                let c = vecops::dot(w, bi);
                vecops::axpy(-c, b, w);
            }
        }
        vecops::center(w);
        ly.try_mul_vec_into(w, lw)?;
        let beta = vecops::dot(w, lw).max(0.0).sqrt();
        let m = alphas.len();
        let breakdown = beta < 1e-12;
        let done_budget = m >= max_iter;

        if m >= s && (done_budget || breakdown || m.is_multiple_of(5)) {
            let tri = tridiag_eigen(&alphas, &betas)?;
            let mut order: Vec<usize> = (0..m).collect();
            order.sort_by(|&a, &b| tri.eigenvalues[b].total_cmp(&tri.eigenvalues[a]));
            let top = &order[..s];
            let scale = tri
                .eigenvalues
                .iter()
                .fold(0.0_f64, |acc, v| acc.max(v.abs()))
                .max(1.0);
            let tol = 1e-8;
            let converged = breakdown
                || top
                    .iter()
                    .all(|&jj| beta * tri.eigenvectors.get(m - 1, jj).abs() <= tol * scale);
            if converged || done_budget {
                let mut vectors = DenseMatrix::zeros(n, s);
                let mut eigenvalues = Vec::with_capacity(s);
                for (out_col, &jj) in top.iter().enumerate() {
                    eigenvalues.push(tri.eigenvalues[jj]);
                    for (b_idx, b) in basis.iter().take(m).enumerate() {
                        let y = tri.eigenvectors.get(b_idx, jj);
                        // cirstag-lint: allow(float-discipline) -- exact-zero skip of zero Ritz coefficients; a sparsity test, not a tolerance
                        if y != 0.0 {
                            for i in 0..n {
                                let cur = vectors.get(i, out_col);
                                vectors.set(i, out_col, cur + y * b[i]);
                            }
                        }
                    }
                }
                return Ok(GeneralizedEigen {
                    eigenvalues,
                    eigenvectors: vectors,
                    iterations: m,
                });
            }
        }
        if breakdown {
            // Restart with a fresh B-orthogonal direction.
            let mut fresh = ws.take(n);
            for x in fresh.iter_mut() {
                *x = rng.next_f64();
            }
            vecops::center(&mut fresh);
            for (b, bi) in basis.iter().zip(bimages.iter()) {
                let c = vecops::dot(&fresh, bi);
                vecops::axpy(-c, b, &mut fresh);
            }
            vecops::center(&mut fresh);
            let mut lf = ws.take(n);
            ly.try_mul_vec_into(&fresh, &mut lf)?;
            let fb = vecops::dot(&fresh, &lf).max(0.0).sqrt();
            if fb < 1e-12 {
                ws.put(lf);
                ws.put(fresh);
                return Err(SolverError::NoConvergence {
                    algorithm: "generalized lanczos (krylov exhausted)",
                    iterations: alphas.len(),
                    residual: beta,
                });
            }
            vecops::scale(1.0 / fb, &mut fresh);
            vecops::scale(1.0 / fb, &mut lf);
            betas.push(0.0);
            basis.push(fresh);
            bimages.push(lf);
        } else {
            betas.push(beta);
            // Historically `w`/`lw` were moved into the basis; copying into
            // pooled buffers leaves the scratch reusable and scales the same
            // bits.
            let mut nq = ws.take(n);
            nq.copy_from_slice(w);
            let mut np = ws.take(n);
            np.copy_from_slice(lw);
            vecops::scale(1.0 / beta, &mut nq);
            vecops::scale(1.0 / beta, &mut np);
            basis.push(nq);
            bimages.push(np);
        }
    }
}

/// Dense fallback for the generalized eigenproblem `L_X v = ζ L_Y v`.
///
/// Assembles `M = L_Y^{+1/2} L_X L_Y^{+1/2}` (pseudo-inverse square root via
/// a full Jacobi eigendecomposition of `L_Y`) and diagonalizes it densely.
/// This is `O(n³)` in time and `O(n²)` in memory — the last rung of the
/// Phase-3 fallback ladder, not a replacement for [`generalized_lanczos`].
/// Eigenvectors are mapped back through `v = L_Y^{+1/2} u` and B-normalized
/// so the result matches the iterative solver's conventions.
///
/// # Errors
///
/// - [`SolverError::DimensionMismatch`] when `lx` and `ly` disagree on shape.
/// - [`SolverError::InvalidArgument`] when `s` is zero or exceeds `n − 1`.
/// - Propagates dense eigensolver failures.
pub fn generalized_eigen_dense(
    lx: &CsrMatrix,
    ly: &CsrMatrix,
    s: usize,
) -> Result<GeneralizedEigen, SolverError> {
    let n = ly.nrows();
    if lx.nrows() != n || lx.ncols() != n || ly.ncols() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            actual: lx.nrows().max(ly.ncols()),
        });
    }
    if s == 0 || s + 1 > n {
        return Err(SolverError::InvalidArgument {
            reason: format!("requested {s} generalized eigenpairs of a dimension-{n} pencil"),
        });
    }
    // Failpoint: fail even the terminal dense rung so tests can observe the
    // BestEffort "zero scores" end state.
    if cirstag_linalg::fail::trigger("solver/dense-geig").is_some() {
        return Err(SolverError::NoConvergence {
            algorithm: "dense generalized eigensolver (failpoint)",
            iterations: 0,
            residual: f64::INFINITY,
        });
    }
    let lyd = ly.to_dense();
    let (vals, vecs) = cirstag_linalg::jacobi_eigen(&lyd)?;
    // L_Y^{+1/2} = V diag(1/sqrt(lam)) Vᵀ over nonzero eigenvalues.
    let scale = vals
        .iter()
        .fold(0.0_f64, |acc, v| acc.max(v.abs()))
        .max(1.0);
    let threshold = 1e-9 * scale;
    let mut half = DenseMatrix::zeros(n, n);
    for k in 0..n {
        if vals[k] > threshold {
            let inv = 1.0 / vals[k].sqrt();
            for i in 0..n {
                for j in 0..n {
                    let cur = half.get(i, j);
                    half.set(i, j, cur + inv * vecs.get(i, k) * vecs.get(j, k));
                }
            }
        }
    }
    let m = half.matmul(&lx.to_dense())?.matmul(&half)?;
    // Symmetrize round-off before Jacobi.
    let mt = m.transpose();
    let msym = m.add(&mt)?.scaled(0.5);
    let (mv, mu) = cirstag_linalg::jacobi_eigen(&msym)?;
    // Top-s pairs, descending; map u back to pencil coordinates v = half·u.
    let mut eigenvalues = Vec::with_capacity(s);
    let mut vectors = DenseMatrix::zeros(n, s);
    for out_col in 0..s {
        let k = n - 1 - out_col;
        eigenvalues.push(mv[k]);
        let mut v = vec![0.0; n];
        for i in 0..n {
            let mut acc = 0.0;
            for j in 0..n {
                acc += half.get(i, j) * mu.get(j, k);
            }
            v[i] = acc;
        }
        vecops::center(&mut v);
        // B-normalize: vᵀ L_Y v = 1, matching the iterative solver.
        let lv = ly.mul_vec(&v);
        let bnorm = vecops::dot(&v, &lv).max(0.0).sqrt();
        if bnorm > 1e-300 {
            vecops::scale(1.0 / bnorm, &mut v);
        }
        for i in 0..n {
            vectors.set(i, out_col, v[i]);
        }
    }
    Ok(GeneralizedEigen {
        eigenvalues,
        eigenvectors: vectors,
        iterations: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirstag_graph::Graph;

    /// Dense reference eigenvalues via the public dense fallback solver.
    fn dense_reference(gx: &Graph, gy: &Graph, s: usize) -> Vec<f64> {
        generalized_eigen_dense(&gx.laplacian(), &gy.laplacian(), s)
            .unwrap()
            .eigenvalues
    }

    fn cycle_graph(n: usize, w: f64) -> Graph {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n, w)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn identical_graphs_give_unit_eigenvalues() {
        let g = cycle_graph(8, 1.0);
        let solver = LaplacianSolver::new(&g).unwrap();
        let lx = g.laplacian();
        let r = generalized_lanczos(&lx, &solver, 3, 40, 1.0 as u64).unwrap();
        for &v in &r.eigenvalues {
            assert!((v - 1.0).abs() < 1e-6, "eigenvalue {v}");
        }
    }

    #[test]
    fn workspace_form_is_bit_identical_and_reuses_buffers() {
        let gx = cycle_graph(12, 2.0);
        let gy = cycle_graph(12, 1.0);
        let solver = LaplacianSolver::new(&gy).unwrap();
        let lx = gx.laplacian();

        let plain = generalized_lanczos(&lx, &solver, 3, 40, 9).unwrap();

        let mut ws = SolverWorkspace::new();
        let pooled = generalized_lanczos_ws(&lx, &solver, 3, 40, 9, &mut ws).unwrap();

        assert_eq!(plain.eigenvalues.len(), pooled.eigenvalues.len());
        for (a, b) in plain.eigenvalues.iter().zip(&pooled.eigenvalues) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "eigenvalues must be bitwise equal"
            );
        }
        for (a, b) in plain
            .eigenvectors
            .as_slice()
            .iter()
            .zip(pooled.eigenvectors.as_slice())
        {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "eigenvectors must be bitwise equal"
            );
        }

        // A warmed workspace must not allocate on a repeat run.
        let misses = ws.misses();
        let again = generalized_lanczos_ws(&lx, &solver, 3, 40, 9, &mut ws).unwrap();
        assert_eq!(ws.misses(), misses, "warm rerun must not allocate");
        for (a, b) in pooled.eigenvalues.iter().zip(&again.eigenvalues) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn scaled_graph_scales_eigenvalues() {
        // L_X = 3 L_Y  =>  all generalized eigenvalues are 3.
        let gy = cycle_graph(10, 1.0);
        let gx = cycle_graph(10, 3.0);
        let solver = LaplacianSolver::new(&gy).unwrap();
        let r = generalized_lanczos(&gx.laplacian(), &solver, 2, 40, 2).unwrap();
        for &v in &r.eigenvalues {
            assert!((v - 3.0).abs() < 1e-6, "eigenvalue {v}");
        }
    }

    #[test]
    fn matches_dense_reference_on_distinct_graphs() {
        let gx = Graph::from_edges(
            6,
            &[
                (0, 1, 2.0),
                (1, 2, 1.0),
                (2, 3, 4.0),
                (3, 4, 1.0),
                (4, 5, 2.0),
                (5, 0, 1.0),
                (0, 3, 0.5),
            ],
        )
        .unwrap();
        let gy = Graph::from_edges(
            6,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 4, 2.0),
                (4, 5, 1.0),
                (5, 0, 2.0),
                (1, 4, 1.0),
            ],
        )
        .unwrap();
        let expect = dense_reference(&gx, &gy, 3);
        let solver = LaplacianSolver::new(&gy).unwrap();
        let r = generalized_lanczos(&gx.laplacian(), &solver, 3, 60, 4).unwrap();
        for (a, b) in r.eigenvalues.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn eigenvectors_satisfy_pencil_equation() {
        let gx = Graph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 4, 3.0),
                (4, 0, 1.0),
            ],
        )
        .unwrap();
        let gy = cycle_graph(5, 1.0);
        let solver = LaplacianSolver::new(&gy).unwrap();
        let lx = gx.laplacian();
        let ly = gy.laplacian();
        let r = generalized_lanczos(&lx, &solver, 2, 40, 6).unwrap();
        for j in 0..2 {
            let v = r.eigenvectors.column(j);
            let lxv = lx.mul_vec(&v);
            let lyv = ly.mul_vec(&v);
            let z = r.eigenvalues[j];
            let res: f64 = lxv
                .iter()
                .zip(&lyv)
                .map(|(a, b)| (a - z * b) * (a - z * b))
                .sum::<f64>()
                .sqrt();
            let scale = vecops::norm2(&lxv).max(1e-12);
            assert!(res / scale < 1e-5, "pencil residual {res}");
        }
    }

    #[test]
    fn eigenvectors_are_b_orthonormal_and_mean_zero() {
        let gx = cycle_graph(7, 2.0);
        let gy = cycle_graph(7, 1.0);
        let solver = LaplacianSolver::new(&gy).unwrap();
        let ly = gy.laplacian();
        let r = generalized_lanczos(&gx.laplacian(), &solver, 3, 40, 8).unwrap();
        for a in 0..3 {
            let va = r.eigenvectors.column(a);
            assert!(vecops::mean(&va).abs() < 1e-8);
            for b in 0..3 {
                let vb = r.eigenvectors.column(b);
                let lyb = ly.mul_vec(&vb);
                let ip = vecops::dot(&va, &lyb);
                let expect = if a == b { 1.0 } else { 0.0 };
                assert!((ip - expect).abs() < 1e-5, "B-inner ({a},{b}) = {ip}");
            }
        }
    }

    #[test]
    fn argument_validation() {
        let g = cycle_graph(4, 1.0);
        let solver = LaplacianSolver::new(&g).unwrap();
        let lx = g.laplacian();
        assert!(generalized_lanczos(&lx, &solver, 0, 10, 0).is_err());
        assert!(generalized_lanczos(&lx, &solver, 4, 10, 0).is_err()); // > n-1
        let small = cycle_graph(3, 1.0).laplacian();
        assert!(generalized_lanczos(&small, &solver, 1, 10, 0).is_err());
        let ly = g.laplacian();
        assert!(generalized_eigen_dense(&lx, &ly, 0).is_err());
        assert!(generalized_eigen_dense(&lx, &ly, 4).is_err());
        assert!(generalized_eigen_dense(&small, &ly, 1).is_err());
    }

    #[test]
    fn dense_eigenvectors_satisfy_pencil_equation() {
        let gx = Graph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 2.0),
                (2, 3, 1.0),
                (3, 4, 3.0),
                (4, 0, 1.0),
            ],
        )
        .unwrap();
        let gy = cycle_graph(5, 1.0);
        let lx = gx.laplacian();
        let ly = gy.laplacian();
        let r = generalized_eigen_dense(&lx, &ly, 2).unwrap();
        for j in 0..2 {
            let v = r.eigenvectors.column(j);
            // B-normalized: vᵀ L_Y v = 1.
            let lyv = ly.mul_vec(&v);
            assert!((vecops::dot(&v, &lyv) - 1.0).abs() < 1e-8);
            let lxv = lx.mul_vec(&v);
            let z = r.eigenvalues[j];
            let res: f64 = lxv
                .iter()
                .zip(&lyv)
                .map(|(a, b)| (a - z * b) * (a - z * b))
                .sum::<f64>()
                .sqrt();
            let scale = vecops::norm2(&lxv).max(1e-12);
            assert!(res / scale < 1e-8, "pencil residual {res}");
        }
    }

    #[test]
    fn dense_agrees_with_iterative_eigenvalues() {
        let gx = cycle_graph(8, 2.5);
        let gy = cycle_graph(8, 1.0);
        let solver = LaplacianSolver::new(&gy).unwrap();
        let iter = generalized_lanczos(&gx.laplacian(), &solver, 3, 60, 11).unwrap();
        let dense = generalized_eigen_dense(&gx.laplacian(), &gy.laplacian(), 3).unwrap();
        for (a, b) in iter.eigenvalues.iter().zip(&dense.eigenvalues) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }
}
