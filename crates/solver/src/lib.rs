//! Iterative solvers and eigensolvers for the CirSTAG stack.
//!
//! Provides the numerical core used by every phase of the pipeline:
//!
//! - [`conjugate_gradient`] / [`Preconditioner`] — (preconditioned) CG for
//!   sparse SPD systems.
//! - [`LaplacianSolver`] — solves `L x = b` for connected-graph Laplacians by
//!   deflating the all-ones nullspace.
//! - [`lanczos_largest`] / [`smallest_normalized_laplacian_eigs`] — Lanczos
//!   with full reorthogonalization; the latter implements the Phase-1
//!   spectral embedding eigenproblem via the spectrum flip `2I − L_norm`.
//! - [`generalized_lanczos`] — largest eigenpairs of the pencil
//!   `L_X v = ζ L_Y v` (equivalently of `L_Y⁺ L_X`), the Phase-3 operator.
//! - [`ResistanceEstimator`] — effective resistances, exact (one solve per
//!   query) or sketched (Spielman–Srivastava style Johnson–Lindenstrauss
//!   projection, `O(log n)` solves total).
//!
//! # Example
//!
//! ```
//! use cirstag_graph::Graph;
//! use cirstag_solver::LaplacianSolver;
//!
//! # fn main() -> Result<(), cirstag_solver::SolverError> {
//! let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)])?;
//! let solver = LaplacianSolver::new(&g)?;
//! // Current injection: +1 at node 0, −1 at node 2.
//! let x = solver.solve(&[1.0, 0.0, -1.0])?;
//! // Potential difference equals the effective resistance (2 Ω here).
//! assert!((x[0] - x[2] - 2.0).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cg;
mod error;
mod geig;
mod lanczos;
mod laplacian;
mod operators;
mod resistance;
mod tree_precond;
mod workspace;

pub use cg::{
    conjugate_gradient, conjugate_gradient_block_into, conjugate_gradient_into, BlockCgResult,
    CgOptions, CgResult, CgSolver, CgStats, IdentityPreconditioner, JacobiPreconditioner,
    Preconditioner,
};
pub use error::SolverError;
pub use geig::{
    generalized_eigen_dense, generalized_lanczos, generalized_lanczos_ws, GeneralizedEigen,
};
pub use lanczos::{
    lanczos_largest, lanczos_largest_ws, smallest_normalized_laplacian_eigs,
    smallest_normalized_laplacian_eigs_ws, LanczosResult,
};
pub use laplacian::{LadderRung, LaplacianSolver, SolveEvent};
pub use operators::{CsrOperator, LinearOperator, PanelOperator, ScaledShiftedOperator};
pub use resistance::ResistanceEstimator;
pub use tree_precond::TreePreconditioner;
pub use workspace::SolverWorkspace;
