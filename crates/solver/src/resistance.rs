//! Effective-resistance computation: exact and sketched.

use crate::lanczos::XorShift;
use crate::{LaplacianSolver, SolverError};
use cirstag_graph::Graph;
use cirstag_linalg::{par, DenseMatrix};

/// Number of sketch right-hand sides advanced per block solve. Wide enough
/// to amortize the CSR traversal across columns, narrow enough that the
/// block-CG working set (a handful of `n × width` panels) stays cache-sized.
const SKETCH_PANEL_WIDTH: usize = 32;

/// Computes effective resistances `R_eff(p, q) = (e_p − e_q)ᵀ L⁺ (e_p − e_q)`
/// over a connected graph.
///
/// Two construction modes:
///
/// - [`ResistanceEstimator::exact`] answers each query with one Laplacian
///   solve — precise, but `O(queries · solve)`.
/// - [`ResistanceEstimator::sketched`] follows Spielman–Srivastava: resistances
///   are squared distances between rows of `Z = (1/√t) Q W^{1/2} B L⁺`, where
///   `Q` is a `t × |E|` Rademacher matrix. Building `Z` costs `t` Laplacian
///   solves; each query is then `O(t)`. With `t = O(log n / ε²)` all
///   resistances are preserved within `1 ± ε` with high probability.
///
/// # Example
///
/// ```
/// use cirstag_graph::Graph;
/// use cirstag_solver::ResistanceEstimator;
///
/// # fn main() -> Result<(), cirstag_solver::SolverError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])?;
/// let est = ResistanceEstimator::sketched(&g, 200, 42)?;
/// let r = est.query(0, 1)?;
/// assert!((r - 2.0 / 3.0).abs() < 0.1); // triangle of unit resistors
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ResistanceEstimator {
    mode: Mode,
    dim: usize,
}

#[derive(Debug)]
enum Mode {
    Exact(Box<LaplacianSolver>),
    /// Row-major `t × n` sketch already scaled by `1/√t`.
    Sketch {
        probes: Vec<Vec<f64>>,
    },
}

impl ResistanceEstimator {
    /// Builds an exact estimator (one Laplacian solve per query).
    ///
    /// # Errors
    ///
    /// Fails when `g` is disconnected.
    pub fn exact(g: &Graph) -> Result<Self, SolverError> {
        let solver = LaplacianSolver::new(g)?;
        Ok(ResistanceEstimator {
            dim: solver.dim(),
            mode: Mode::Exact(Box::new(solver)),
        })
    }

    /// Builds a Johnson–Lindenstrauss sketched estimator with `num_probes`
    /// random projections (typically `O(log |V|)`; 64–256 is plenty for the
    /// ranking use-cases in CirSTAG).
    ///
    /// # Errors
    ///
    /// - [`SolverError::InvalidArgument`] when `num_probes == 0`.
    /// - Fails when `g` is disconnected or a solve does not converge.
    pub fn sketched(g: &Graph, num_probes: usize, seed: u64) -> Result<Self, SolverError> {
        if num_probes == 0 {
            return Err(SolverError::InvalidArgument {
                reason: "num_probes must be positive".to_string(),
            });
        }
        // Ranking-grade tolerance: resistance sketches feed η-score
        // orderings, so a 1e-6 relative residual is ample and much more
        // robust on ill-conditioned manifold Laplacians than the default.
        let solver = LaplacianSolver::with_tree_preconditioner(
            g,
            crate::CgOptions {
                tol: 1e-6,
                max_iter: 10_000,
            },
        )?;
        let n = g.num_nodes();
        let mut rng = XorShift::new(seed);
        let inv_sqrt_t = 1.0 / (num_probes as f64).sqrt();
        // The Rademacher right-hand sides consume one shared RNG stream in
        // probe order, so panels are materialized in that same order — the
        // sketch stays bit-identical to the per-probe construction for any
        // panel width and any thread count. The probes are streamed through
        // the block solver in workspace-sized panels: every CG iteration
        // advances a whole panel off a single CSR traversal, and column `j`
        // of a block solve reproduces the scalar solve of probe `j` exactly.
        let mut probes: Vec<Vec<f64>> = Vec::with_capacity(num_probes);
        let mut start = 0;
        while start < num_probes {
            let width = SKETCH_PANEL_WIDTH.min(num_probes - start);
            let mut panel = DenseMatrix::zeros(n, width);
            let data = panel.as_mut_slice();
            for j in 0..width {
                // b = Bᵀ W^{1/2} q with Rademacher q over edges.
                for e in g.edges() {
                    let s = rng.next_sign() * e.weight.sqrt();
                    data[e.u * width + j] += s;
                    data[e.v * width + j] -= s;
                }
            }
            let x = solver.solve_block(&panel)?;
            for j in 0..width {
                let mut col = x.column(j);
                for v in &mut col {
                    *v *= inv_sqrt_t;
                }
                probes.push(col);
            }
            start += width;
        }
        Ok(ResistanceEstimator {
            dim: n,
            mode: Mode::Sketch { probes },
        })
    }

    /// Number of nodes in the underlying graph.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Returns `true` when this estimator answers queries from a sketch.
    pub fn is_sketched(&self) -> bool {
        matches!(self.mode, Mode::Sketch { .. })
    }

    /// Effective resistance between `p` and `q`.
    ///
    /// # Errors
    ///
    /// - [`SolverError::InvalidArgument`] when an index is out of bounds.
    /// - Exact mode propagates solve failures.
    pub fn query(&self, p: usize, q: usize) -> Result<f64, SolverError> {
        if p >= self.dim || q >= self.dim {
            return Err(SolverError::InvalidArgument {
                reason: format!("node pair ({p}, {q}) out of bounds for {} nodes", self.dim),
            });
        }
        if p == q {
            return Ok(0.0);
        }
        match &self.mode {
            Mode::Exact(solver) => solver.effective_resistance(p, q),
            Mode::Sketch { probes } => {
                let mut acc = 0.0;
                for row in probes {
                    let d = row[p] - row[q];
                    acc += d * d;
                }
                Ok(acc)
            }
        }
    }

    /// Effective resistance of every edge of `g`, in edge-id order.
    ///
    /// # Errors
    ///
    /// Propagates [`ResistanceEstimator::query`] failures; also fails when
    /// `g`'s node count differs from the estimator's.
    pub fn edge_resistances(&self, g: &Graph) -> Result<Vec<f64>, SolverError> {
        if g.num_nodes() != self.dim {
            return Err(SolverError::DimensionMismatch {
                expected: self.dim,
                actual: g.num_nodes(),
            });
        }
        // Queries are independent (shared read-only sketch or per-query
        // solves against a `&self` solver), so the batch fans out across the
        // pool in edge-id order.
        let edges = g.edges();
        par::try_map_indexed(edges.len(), |eid| {
            let e = &edges[eid];
            self.query(e.u, e.v)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Graph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let id = i * n + j;
                if j + 1 < n {
                    edges.push((id, id + 1, 1.0));
                }
                if i + 1 < n {
                    edges.push((id, id + n, 1.0));
                }
            }
        }
        Graph::from_edges(n * n, &edges).unwrap()
    }

    #[test]
    fn exact_series_parallel() {
        // Two parallel paths of resistances 2 and 2 => 1.
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let est = ResistanceEstimator::exact(&g).unwrap();
        assert!((est.query(0, 3).unwrap() - 1.0).abs() < 1e-8);
        assert!(!est.is_sketched());
    }

    #[test]
    fn sketch_matches_exact_within_tolerance() {
        let g = grid(5);
        let exact = ResistanceEstimator::exact(&g).unwrap();
        let sketch = ResistanceEstimator::sketched(&g, 400, 7).unwrap();
        assert!(sketch.is_sketched());
        let pairs = [(0usize, 24usize), (0, 1), (12, 13), (4, 20)];
        for &(p, q) in &pairs {
            let e = exact.query(p, q).unwrap();
            let s = sketch.query(p, q).unwrap();
            assert!(
                (s - e).abs() / e < 0.25,
                "pair ({p},{q}): sketch {s} vs exact {e}"
            );
        }
    }

    #[test]
    fn sketch_preserves_ranking_mostly() {
        let g = grid(4);
        let exact = ResistanceEstimator::exact(&g).unwrap();
        let sketch = ResistanceEstimator::sketched(&g, 300, 3).unwrap();
        let re = exact.edge_resistances(&g).unwrap();
        let rs = sketch.edge_resistances(&g).unwrap();
        // Spearman-ish check: correlation of the two vectors is high.
        let n = re.len() as f64;
        let me = re.iter().sum::<f64>() / n;
        let ms = rs.iter().sum::<f64>() / n;
        let cov: f64 = re.iter().zip(&rs).map(|(a, b)| (a - me) * (b - ms)).sum();
        let va: f64 = re.iter().map(|a| (a - me) * (a - me)).sum();
        let vb: f64 = rs.iter().map(|b| (b - ms) * (b - ms)).sum();
        let corr = cov / (va.sqrt() * vb.sqrt());
        assert!(corr > 0.9, "correlation {corr}");
    }

    #[test]
    fn edge_resistance_bounded_by_inverse_weight() {
        let g = grid(4);
        let est = ResistanceEstimator::exact(&g).unwrap();
        for e in g.edges() {
            let r = est.query(e.u, e.v).unwrap();
            assert!(r <= 1.0 / e.weight + 1e-9);
            assert!(r > 0.0);
        }
    }

    #[test]
    fn sum_of_edge_weight_times_resistance_is_n_minus_one() {
        // Foster's theorem: Σ_e w_e R_eff(e) = |V| − 1.
        let g = grid(4);
        let est = ResistanceEstimator::exact(&g).unwrap();
        let total: f64 = g
            .edges()
            .iter()
            .map(|e| e.weight * est.query(e.u, e.v).unwrap())
            .sum();
        assert!((total - 15.0).abs() < 1e-6, "foster sum {total}");
    }

    #[test]
    fn argument_validation() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let est = ResistanceEstimator::exact(&g).unwrap();
        assert!(est.query(0, 9).is_err());
        assert_eq!(est.query(1, 1).unwrap(), 0.0);
        assert!(ResistanceEstimator::sketched(&g, 0, 1).is_err());
        let other = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(est.edge_resistances(&other).is_err());
    }

    #[test]
    fn panel_streamed_sketch_matches_per_probe_solves_bitwise() {
        // 37 probes over a 16-wide panel stream exercises two full panels
        // plus a ragged tail; every probe must equal the historical
        // one-solve-per-probe construction bit for bit.
        let g = grid(5);
        let num_probes = 37;
        let seed = 11;
        let est = ResistanceEstimator::sketched(&g, num_probes, seed).unwrap();
        let Mode::Sketch { probes } = &est.mode else {
            panic!("expected a sketched estimator");
        };
        assert_eq!(probes.len(), num_probes);
        let solver = LaplacianSolver::with_tree_preconditioner(
            &g,
            crate::CgOptions {
                tol: 1e-6,
                max_iter: 10_000,
            },
        )
        .unwrap();
        let n = g.num_nodes();
        let mut rng = XorShift::new(seed);
        let inv_sqrt_t = 1.0 / (num_probes as f64).sqrt();
        for (i, probe) in probes.iter().enumerate() {
            let mut b = vec![0.0; n];
            for e in g.edges() {
                let s = rng.next_sign() * e.weight.sqrt();
                b[e.u] += s;
                b[e.v] -= s;
            }
            let mut x = solver.solve(&b).unwrap();
            for v in &mut x {
                *v *= inv_sqrt_t;
            }
            for (row, (a, c)) in probe.iter().zip(&x).enumerate() {
                assert_eq!(a.to_bits(), c.to_bits(), "probe {i}, row {row}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid(3);
        let a = ResistanceEstimator::sketched(&g, 64, 5).unwrap();
        let b = ResistanceEstimator::sketched(&g, 64, 5).unwrap();
        assert_eq!(a.query(0, 8).unwrap(), b.query(0, 8).unwrap());
    }
}
