//! (Preconditioned) conjugate gradient for sparse SPD systems, in scalar and
//! blocked multi-right-hand-side form.

use crate::workspace::SolverWorkspace;
use crate::{LinearOperator, PanelOperator, SolverError};
use cirstag_linalg::vecops;
use cirstag_linalg::{CsrMatrix, DenseMatrix};

/// A preconditioner: applies `z = M⁻¹ r` for some SPD approximation `M ≈ A`.
pub trait Preconditioner {
    /// Computes `z ← M⁻¹ r`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] when `r` or `z` does not
    /// match the preconditioner's dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolverError>;

    /// Computes `z ← M⁻¹ r` column-wise over row-major `ncols`-wide panels
    /// (`r[i * ncols + j]` is entry `(i, j)`).
    ///
    /// The provided implementation gathers each column into workspace
    /// scratch and delegates to [`Preconditioner::apply`]; implementations
    /// with structure to exploit (diagonal scaling, tree sweeps) override it
    /// with a fused panel kernel. Column `j` of the result must be
    /// bit-identical to `apply` on column `j` alone — the block solver's
    /// equivalence to per-vector CG rests on that contract.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] when the panel lengths
    /// disagree or are not multiples of `ncols`, and any error of
    /// [`Preconditioner::apply`].
    fn apply_panel(
        &self,
        r: &[f64],
        z: &mut [f64],
        ncols: usize,
        ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        if ncols == 1 {
            return self.apply(r, z);
        }
        if r.len() != z.len() || (ncols > 0 && !r.len().is_multiple_of(ncols)) {
            return Err(SolverError::DimensionMismatch {
                expected: z.len(),
                actual: r.len(),
            });
        }
        if ncols == 0 {
            return Ok(());
        }
        let n = r.len() / ncols;
        let mut rc = ws.take(n);
        let mut zc = ws.take(n);
        let mut out = Ok(());
        for j in 0..ncols {
            for (i, ri) in rc.iter_mut().enumerate() {
                *ri = r[i * ncols + j];
            }
            out = self.apply(&rc, &mut zc);
            if out.is_err() {
                break;
            }
            for (i, &zi) in zc.iter().enumerate() {
                z[i * ncols + j] = zi;
            }
        }
        ws.put(zc);
        ws.put(rc);
        out
    }
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolverError> {
        if r.len() != z.len() {
            return Err(SolverError::DimensionMismatch {
                expected: z.len(),
                actual: r.len(),
            });
        }
        z.copy_from_slice(r);
        Ok(())
    }

    fn apply_panel(
        &self,
        r: &[f64],
        z: &mut [f64],
        _ncols: usize,
        _ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        self.apply(r, z)
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(A)`.
///
/// Cheap and effective for diagonally dominant systems such as graph
/// Laplacians with a diagonal shift.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
    clamped: usize,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from a matrix's diagonal. Zero (or negative)
    /// diagonal entries are clamped to `1.0` so the preconditioner stays SPD;
    /// the number of clamped entries is reported by
    /// [`JacobiPreconditioner::clamped_entries`] so callers can surface the
    /// ill-conditioning instead of masking it.
    pub fn from_matrix(a: &CsrMatrix) -> Self {
        Self::from_diagonal(&a.diagonal())
    }

    /// Builds the preconditioner from an explicit diagonal. Non-positive (or
    /// non-finite) entries are clamped to `1.0` and counted.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut clamped = 0usize;
        let inv_diag = diag
            .iter()
            .map(|&d| {
                if d > 0.0 && d.is_finite() {
                    1.0 / d
                } else {
                    clamped += 1;
                    1.0
                }
            })
            .collect();
        JacobiPreconditioner { inv_diag, clamped }
    }

    /// How many diagonal entries were non-positive (or non-finite) and had
    /// to be clamped to `1.0` at construction. A nonzero count signals an
    /// ill-conditioned or non-SPD system that Jacobi can only partially
    /// precondition.
    #[inline]
    pub fn clamped_entries(&self) -> usize {
        self.clamped
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolverError> {
        if r.len() != self.inv_diag.len() || z.len() != self.inv_diag.len() {
            return Err(SolverError::DimensionMismatch {
                expected: self.inv_diag.len(),
                actual: r.len().max(z.len()),
            });
        }
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
        Ok(())
    }

    fn apply_panel(
        &self,
        r: &[f64],
        z: &mut [f64],
        ncols: usize,
        _ws: &mut SolverWorkspace,
    ) -> Result<(), SolverError> {
        let n = self.inv_diag.len();
        if r.len() != n * ncols || z.len() != n * ncols {
            return Err(SolverError::DimensionMismatch {
                expected: n * ncols,
                actual: r.len().max(z.len()),
            });
        }
        if ncols == 0 {
            return Ok(());
        }
        for ((zr, rr), di) in z
            .chunks_exact_mut(ncols)
            .zip(r.chunks_exact(ncols))
            .zip(&self.inv_diag)
        {
            for (zi, &ri) in zr.iter_mut().zip(rr) {
                *zi = ri * di;
            }
        }
        Ok(())
    }
}

/// Options controlling a conjugate-gradient run.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Relative residual tolerance: stop when `‖r‖ ≤ tol · ‖b‖`.
    pub tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tol: 1e-10,
            max_iter: 2000,
        }
    }
}

/// Outcome of a conjugate-gradient run.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The (approximate) solution.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖`.
    pub residual_norm: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Per-system outcome of a CG run, without the solution vector.
///
/// The `_into` solver entry points write the solution into caller-provided
/// storage and report this summary; for a block solve there is one per
/// right-hand-side column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgStats {
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖`.
    pub residual_norm: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solves `A x = b` for a symmetric positive (semi)definite operator with
/// preconditioned conjugate gradient.
///
/// For *singular consistent* systems (graph Laplacians with `b ⊥ 1`), CG
/// converges to the minimum-norm solution provided the initial guess and
/// right-hand side lie in the range; [`crate::LaplacianSolver`] handles that
/// projection.
///
/// The returned result reports `converged = false` instead of erroring when
/// the budget is exhausted, exposing the best iterate found
/// (C-INTERMEDIATE); callers that require convergence should check the flag.
///
/// # Errors
///
/// - [`SolverError::DimensionMismatch`] when `b.len() != a.dim()`.
/// - [`SolverError::InvalidArgument`] when `b` contains non-finite values or
///   options are out of range.
pub fn conjugate_gradient<A, M>(
    a: &A,
    b: &[f64],
    preconditioner: &M,
    options: CgOptions,
) -> Result<CgResult, SolverError>
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let mut ws = SolverWorkspace::new();
    let mut x = vec![0.0; a.dim()];
    let stats = conjugate_gradient_into(a, b, preconditioner, options, &mut x, &mut ws)?;
    Ok(CgResult {
        x,
        iterations: stats.iterations,
        residual_norm: stats.residual_norm,
        converged: stats.converged,
    })
}

/// Workspace-backed form of [`conjugate_gradient`]: writes the solution into
/// `x` and draws every scratch vector from `ws`, so a warmed workspace makes
/// repeated solves (and every iteration within one) allocation-free.
///
/// Produces bit-identical results to [`conjugate_gradient`] — the allocating
/// form is a thin wrapper over this one.
///
/// # Errors
///
/// Same as [`conjugate_gradient`], plus
/// [`SolverError::DimensionMismatch`] when `x.len() != a.dim()`.
pub fn conjugate_gradient_into<A, M>(
    a: &A,
    b: &[f64],
    preconditioner: &M,
    options: CgOptions,
    x: &mut [f64],
    ws: &mut SolverWorkspace,
) -> Result<CgStats, SolverError>
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            actual: b.len(),
        });
    }
    if x.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            actual: x.len(),
        });
    }
    if !vecops::all_finite(b) {
        return Err(SolverError::InvalidArgument {
            reason: "right-hand side contains non-finite values".to_string(),
        });
    }
    if !(options.tol > 0.0 && options.tol.is_finite()) {
        return Err(SolverError::InvalidArgument {
            reason: format!("tolerance {} must be positive and finite", options.tol),
        });
    }
    let b_norm = vecops::norm2(b);
    // Failpoint: force "CG exhausted its budget" so tests can drive the
    // preconditioner escalation ladder deterministically.
    if cirstag_linalg::fail::trigger("solver/cg").is_some() {
        x.fill(0.0);
        return Ok(CgStats {
            iterations: 0,
            residual_norm: b_norm,
            converged: false,
        });
    }
    // cirstag-lint: allow(float-discipline) -- exact-zero RHS short-circuit: any nonzero norm proceeds to iterate
    if b_norm == 0.0 {
        x.fill(0.0);
        return Ok(CgStats {
            iterations: 0,
            residual_norm: 0.0,
            converged: true,
        });
    }
    let threshold = options.tol * b_norm;

    x.fill(0.0);
    let mut r = ws.take(n);
    r.copy_from_slice(b);
    let mut z = ws.take(n);
    let mut p = ws.take(n);
    let mut ap = ws.take(n);
    let out = scalar_cg_core(
        a,
        preconditioner,
        options,
        threshold,
        x,
        &mut r,
        &mut z,
        &mut p,
        &mut ap,
        ws,
    );
    ws.put(ap);
    ws.put(p);
    ws.put(z);
    ws.put(r);
    out
}

/// The scalar PCG loop, split out so the caller can return scratch buffers
/// to the workspace on every exit path. Must mirror the historical
/// `conjugate_gradient` loop operation-for-operation: the block solver's
/// bit-identity tests compare against it.
#[allow(clippy::too_many_arguments)]
fn scalar_cg_core<A, M>(
    a: &A,
    preconditioner: &M,
    options: CgOptions,
    threshold: f64,
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &mut [f64],
    ap: &mut [f64],
    ws: &mut SolverWorkspace,
) -> Result<CgStats, SolverError>
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    preconditioner.apply_panel(r, z, 1, ws)?;
    p.copy_from_slice(z);
    let mut rz = vecops::dot(r, z);

    let mut iterations = 0;
    let mut residual_norm = vecops::norm2(r);
    while iterations < options.max_iter && residual_norm > threshold {
        a.apply(p, ap)?;
        let pap = vecops::dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Breakdown: the operator is not SPD on this subspace. Return the
            // best iterate with converged = false.
            break;
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, p, x);
        vecops::axpy(-alpha, ap, r);
        residual_norm = vecops::norm2(r);
        iterations += 1;
        if residual_norm <= threshold {
            break;
        }
        preconditioner.apply_panel(r, z, 1, ws)?;
        let rz_new = vecops::dot(r, z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(z.iter()) {
            *pi = zi + beta * *pi;
        }
    }

    Ok(CgStats {
        converged: residual_norm <= threshold,
        iterations,
        residual_norm,
    })
}

/// Scratch owned by one block-CG run: four `n × k` panels plus the
/// per-column control state, all checked out of (and returned to) the
/// workspace so steady-state rounds never allocate.
struct BlockBuffers {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    b_norm: Vec<f64>,
    threshold: Vec<f64>,
    rz: Vec<f64>,
    rz_new: Vec<f64>,
    pap: Vec<f64>,
    alpha: Vec<f64>,
    beta: Vec<f64>,
    resid: Vec<f64>,
    iters: Vec<usize>,
    active: Vec<usize>,
}

impl BlockBuffers {
    fn take(ws: &mut SolverWorkspace, n: usize, k: usize) -> Self {
        BlockBuffers {
            r: ws.take(n * k),
            z: ws.take(n * k),
            p: ws.take(n * k),
            ap: ws.take(n * k),
            b_norm: ws.take(k),
            threshold: ws.take(k),
            rz: ws.take(k),
            rz_new: ws.take(k),
            pap: ws.take(k),
            alpha: ws.take(k),
            beta: ws.take(k),
            resid: ws.take(k),
            iters: ws.take_indices(k),
            active: ws.take_indices(k),
        }
    }

    fn put(self, ws: &mut SolverWorkspace) {
        ws.put_indices(self.active);
        ws.put_indices(self.iters);
        ws.put(self.resid);
        ws.put(self.beta);
        ws.put(self.alpha);
        ws.put(self.pap);
        ws.put(self.rz_new);
        ws.put(self.rz);
        ws.put(self.threshold);
        ws.put(self.b_norm);
        ws.put(self.ap);
        ws.put(self.p);
        ws.put(self.z);
        ws.put(self.r);
    }
}

/// Per-column sum of squares of a row-major `k`-wide panel.
fn col_sumsq(panel: &[f64], k: usize, out: &mut [f64]) {
    out.fill(0.0);
    for row in panel.chunks_exact(k) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v * v;
        }
    }
}

/// Per-column dot products of two row-major `k`-wide panels.
///
/// Accumulates over rows in ascending order, exactly like [`vecops::dot`]
/// over a single gathered column — the bit-identity anchor for the block
/// solver's reductions at any panel width.
fn col_dots(a: &[f64], b: &[f64], k: usize, out: &mut [f64]) {
    out.fill(0.0);
    for (ra, rb) in a.chunks_exact(k).zip(b.chunks_exact(k)) {
        for ((o, &x), &y) in out.iter_mut().zip(ra).zip(rb) {
            *o += x * y;
        }
    }
}

/// `y[·,j] += alpha[j] * x[·,j]` for the columns with `active[j] == 1`.
///
/// Frozen columns are skipped rather than multiplied by zero: `v + 0.0 * w`
/// is *not* a bitwise no-op (it rewrites `-0.0` and propagates non-finite
/// `w`), and converged columns must come back bit-identical to a scalar
/// solve that stopped at the same iteration.
fn panel_axpy_masked(alpha: &[f64], active: &[usize], x: &[f64], y: &mut [f64], k: usize) {
    if active.iter().all(|&a| a == 1) {
        // All columns live (the common early rounds): drop the per-element
        // mask test so the loop vectorizes. Arithmetic is unchanged.
        for (xr, yr) in x.chunks_exact(k).zip(y.chunks_exact_mut(k)) {
            for ((yj, &xj), &aj) in yr.iter_mut().zip(xr).zip(alpha) {
                *yj += aj * xj;
            }
        }
        return;
    }
    for (xr, yr) in x.chunks_exact(k).zip(y.chunks_exact_mut(k)) {
        for j in 0..k {
            if active[j] == 1 {
                yr[j] += alpha[j] * xr[j];
            }
        }
    }
}

/// `y[·,j] -= alpha[j] * x[·,j]` for active columns (see
/// [`panel_axpy_masked`] for why frozen columns are skipped). Matches the
/// scalar `axpy(-alpha, ..)` bitwise: negating the multiplier and negating
/// the product round identically.
fn panel_axmy_masked(alpha: &[f64], active: &[usize], x: &[f64], y: &mut [f64], k: usize) {
    if active.iter().all(|&a| a == 1) {
        for (xr, yr) in x.chunks_exact(k).zip(y.chunks_exact_mut(k)) {
            for ((yj, &xj), &aj) in yr.iter_mut().zip(xr).zip(alpha) {
                *yj -= aj * xj;
            }
        }
        return;
    }
    for (xr, yr) in x.chunks_exact(k).zip(y.chunks_exact_mut(k)) {
        for j in 0..k {
            if active[j] == 1 {
                yr[j] -= alpha[j] * xr[j];
            }
        }
    }
}

/// `p[·,j] = z[·,j] + beta[j] * p[·,j]` for active columns.
fn panel_direction_update(beta: &[f64], active: &[usize], z: &[f64], p: &mut [f64], k: usize) {
    if active.iter().all(|&a| a == 1) {
        for (zr, pr) in z.chunks_exact(k).zip(p.chunks_exact_mut(k)) {
            for ((pj, &zj), &bj) in pr.iter_mut().zip(zr).zip(beta) {
                *pj = zj + bj * *pj;
            }
        }
        return;
    }
    for (zr, pr) in z.chunks_exact(k).zip(p.chunks_exact_mut(k)) {
        for j in 0..k {
            if active[j] == 1 {
                pr[j] = zr[j] + beta[j] * pr[j];
            }
        }
    }
}

/// Block conjugate gradient: solves `A X = B` for all columns of `B` in
/// lockstep, advancing every right-hand side off a single operator panel
/// application per round.
///
/// Column `j` of the result is bit-identical to
/// [`conjugate_gradient_into`] on column `j` alone: the per-column
/// reductions accumulate in the same order as [`vecops::dot`], converged or
/// broken-down columns are frozen (skipped, not zero-multiplied), and the
/// residual recomputation for frozen columns reproduces the same bits. That
/// invariance also makes the result independent of how right-hand sides are
/// partitioned into panels and of the thread count.
///
/// `stats` is cleared and refilled with one [`CgStats`] per column. A column
/// that breaks down or exhausts the budget reports `converged = false`
/// without disturbing the other columns.
///
/// # Errors
///
/// Same as [`conjugate_gradient`], plus
/// [`SolverError::DimensionMismatch`] when `b` is not `a.dim()` rows or `x`
/// is not the same shape as `b`.
pub fn conjugate_gradient_block_into<A, M>(
    a: &A,
    b: &DenseMatrix,
    preconditioner: &M,
    options: CgOptions,
    x: &mut DenseMatrix,
    stats: &mut Vec<CgStats>,
    ws: &mut SolverWorkspace,
) -> Result<(), SolverError>
where
    A: PanelOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let n = a.dim();
    if b.nrows() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            actual: b.nrows(),
        });
    }
    if x.shape() != b.shape() {
        return Err(SolverError::DimensionMismatch {
            expected: n * b.ncols(),
            actual: x.nrows() * x.ncols(),
        });
    }
    if !vecops::all_finite(b.as_slice()) {
        return Err(SolverError::InvalidArgument {
            reason: "right-hand side contains non-finite values".to_string(),
        });
    }
    if !(options.tol > 0.0 && options.tol.is_finite()) {
        return Err(SolverError::InvalidArgument {
            reason: format!("tolerance {} must be positive and finite", options.tol),
        });
    }
    stats.clear();
    let k = b.ncols();
    if k == 0 {
        return Ok(());
    }
    let mut bufs = BlockBuffers::take(ws, n, k);
    let out = block_cg_core(a, b, preconditioner, options, x, stats, &mut bufs, ws);
    bufs.put(ws);
    out
}

#[allow(clippy::too_many_arguments)]
fn block_cg_core<A, M>(
    a: &A,
    b: &DenseMatrix,
    preconditioner: &M,
    options: CgOptions,
    x: &mut DenseMatrix,
    stats: &mut Vec<CgStats>,
    bufs: &mut BlockBuffers,
    ws: &mut SolverWorkspace,
) -> Result<(), SolverError>
where
    A: PanelOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let k = b.ncols();
    x.as_mut_slice().fill(0.0);
    col_sumsq(b.as_slice(), k, &mut bufs.pap);
    for (bn, &sq) in bufs.b_norm.iter_mut().zip(bufs.pap.iter()) {
        *bn = sq.sqrt();
    }
    for (th, &bn) in bufs.threshold.iter_mut().zip(bufs.b_norm.iter()) {
        *th = options.tol * bn;
    }
    // Failpoint parity with the scalar path: every column reports an
    // exhausted budget.
    if cirstag_linalg::fail::trigger("solver/cg").is_some() {
        for j in 0..k {
            stats.push(CgStats {
                iterations: 0,
                residual_norm: bufs.b_norm[j],
                converged: false,
            });
        }
        return Ok(());
    }
    let mut active_count = 0usize;
    for j in 0..k {
        bufs.resid[j] = bufs.b_norm[j];
        bufs.iters[j] = 0;
        // A column starts active exactly when the scalar loop would enter
        // its first iteration (nonzero rhs above tolerance, budget > 0).
        bufs.active[j] = if bufs.resid[j] > bufs.threshold[j] && options.max_iter > 0 {
            1
        } else {
            0
        };
        active_count += bufs.active[j];
    }
    // Failpoint: poison the lowest-indexed live column before round 0 so
    // tests can watch the fallback ladder retry it while the others stay
    // converged and untouched.
    if cirstag_linalg::fail::trigger("solver/cg-block-column").is_some() {
        if let Some(j) = (0..k).find(|&j| bufs.active[j] == 1) {
            bufs.active[j] = 0;
            active_count -= 1;
        }
    }

    bufs.r.copy_from_slice(b.as_slice());
    preconditioner.apply_panel(&bufs.r, &mut bufs.z, k, ws)?;
    bufs.p.copy_from_slice(&bufs.z);
    col_dots(&bufs.r, &bufs.z, k, &mut bufs.rz);

    while active_count > 0 {
        a.apply_panel(&bufs.p, &mut bufs.ap, k)?;
        col_dots(&bufs.p, &bufs.ap, k, &mut bufs.pap);
        for j in 0..k {
            if bufs.active[j] == 1 && (bufs.pap[j] <= 0.0 || !bufs.pap[j].is_finite()) {
                // Breakdown on this column only: freeze it at the current
                // (best) iterate, exactly where the scalar loop would break.
                bufs.active[j] = 0;
                active_count -= 1;
            }
            bufs.alpha[j] = if bufs.active[j] == 1 {
                bufs.rz[j] / bufs.pap[j]
            } else {
                0.0
            };
        }
        panel_axpy_masked(&bufs.alpha, &bufs.active, &bufs.p, x.as_mut_slice(), k);
        panel_axmy_masked(&bufs.alpha, &bufs.active, &bufs.ap, &mut bufs.r, k);
        // Residuals are recomputed for every column; frozen columns have an
        // unchanged `r`, so they reproduce the same bits round after round.
        col_sumsq(&bufs.r, k, &mut bufs.rz_new);
        for (res, &sq) in bufs.resid.iter_mut().zip(bufs.rz_new.iter()) {
            *res = sq.sqrt();
        }
        for j in 0..k {
            if bufs.active[j] == 1 {
                bufs.iters[j] += 1;
                if bufs.resid[j] <= bufs.threshold[j] || bufs.iters[j] >= options.max_iter {
                    bufs.active[j] = 0;
                    active_count -= 1;
                }
            }
        }
        if active_count == 0 {
            break;
        }
        preconditioner.apply_panel(&bufs.r, &mut bufs.z, k, ws)?;
        col_dots(&bufs.r, &bufs.z, k, &mut bufs.rz_new);
        for j in 0..k {
            if bufs.active[j] == 1 {
                bufs.beta[j] = bufs.rz_new[j] / bufs.rz[j];
                bufs.rz[j] = bufs.rz_new[j];
            }
        }
        panel_direction_update(&bufs.beta, &bufs.active, &bufs.z, &mut bufs.p, k);
    }

    for j in 0..k {
        stats.push(CgStats {
            iterations: bufs.iters[j],
            residual_norm: bufs.resid[j],
            converged: bufs.resid[j] <= bufs.threshold[j],
        });
    }
    Ok(())
}

/// Outcome of a block conjugate-gradient solve.
#[derive(Debug, Clone)]
pub struct BlockCgResult {
    /// Solution panel, one column per right-hand side.
    pub x: DenseMatrix,
    /// Per-column convergence summaries.
    pub columns: Vec<CgStats>,
}

/// A conjugate-gradient driver that owns its scratch workspace.
///
/// Wraps the free functions so repeated solves (scalar or blocked) reuse one
/// [`SolverWorkspace`]: after the first solve warms the pool, steady-state
/// iterations perform zero heap allocations.
///
/// # Example
///
/// ```
/// use cirstag_linalg::CsrMatrix;
/// use cirstag_solver::{CgOptions, CgSolver, CsrOperator, IdentityPreconditioner};
///
/// # fn main() -> Result<(), cirstag_solver::SolverError> {
/// let m = CsrMatrix::from_diagonal(&[2.0, 4.0]);
/// let op = CsrOperator::new(&m);
/// let mut solver = CgSolver::new(CgOptions::default());
/// let result = solver.solve(&op, &[2.0, 4.0], &IdentityPreconditioner)?;
/// assert!(result.converged);
/// assert!((result.x[0] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct CgSolver {
    options: CgOptions,
    workspace: SolverWorkspace,
}

impl CgSolver {
    /// Creates a solver with the given options and an empty workspace.
    pub fn new(options: CgOptions) -> Self {
        CgSolver {
            options,
            workspace: SolverWorkspace::new(),
        }
    }

    /// The options every solve uses.
    pub fn options(&self) -> CgOptions {
        self.options
    }

    /// Read access to the scratch workspace (e.g. to assert on
    /// [`SolverWorkspace::misses`] in allocation-discipline tests).
    pub fn workspace(&self) -> &SolverWorkspace {
        &self.workspace
    }

    /// Solves `A x = b`, allocating the solution vector.
    ///
    /// # Errors
    ///
    /// Same as [`conjugate_gradient`].
    pub fn solve<A, M>(
        &mut self,
        a: &A,
        b: &[f64],
        preconditioner: &M,
    ) -> Result<CgResult, SolverError>
    where
        A: LinearOperator + ?Sized,
        M: Preconditioner + ?Sized,
    {
        let mut x = vec![0.0; a.dim()];
        let stats = self.solve_into(a, b, preconditioner, &mut x)?;
        Ok(CgResult {
            x,
            iterations: stats.iterations,
            residual_norm: stats.residual_norm,
            converged: stats.converged,
        })
    }

    /// Solves `A x = b` into a caller-provided vector; allocation-free once
    /// the workspace is warm.
    ///
    /// # Errors
    ///
    /// Same as [`conjugate_gradient_into`].
    pub fn solve_into<A, M>(
        &mut self,
        a: &A,
        b: &[f64],
        preconditioner: &M,
        x: &mut [f64],
    ) -> Result<CgStats, SolverError>
    where
        A: LinearOperator + ?Sized,
        M: Preconditioner + ?Sized,
    {
        conjugate_gradient_into(a, b, preconditioner, self.options, x, &mut self.workspace)
    }

    /// Solves `A X = B` for all columns of `B` in lockstep, allocating the
    /// solution panel. See [`conjugate_gradient_block_into`].
    ///
    /// # Errors
    ///
    /// Same as [`conjugate_gradient_block_into`].
    pub fn solve_block<A, M>(
        &mut self,
        a: &A,
        b: &DenseMatrix,
        preconditioner: &M,
    ) -> Result<BlockCgResult, SolverError>
    where
        A: PanelOperator + ?Sized,
        M: Preconditioner + ?Sized,
    {
        let mut x = DenseMatrix::zeros(b.nrows(), b.ncols());
        let mut columns = Vec::with_capacity(b.ncols());
        self.solve_block_into(a, b, preconditioner, &mut x, &mut columns)?;
        Ok(BlockCgResult { x, columns })
    }

    /// Solves `A X = B` into caller-provided storage; allocation-free once
    /// the workspace and `stats` capacity are warm.
    ///
    /// # Errors
    ///
    /// Same as [`conjugate_gradient_block_into`].
    pub fn solve_block_into<A, M>(
        &mut self,
        a: &A,
        b: &DenseMatrix,
        preconditioner: &M,
        x: &mut DenseMatrix,
        stats: &mut Vec<CgStats>,
    ) -> Result<(), SolverError>
    where
        A: PanelOperator + ?Sized,
        M: Preconditioner + ?Sized,
    {
        conjugate_gradient_block_into(
            a,
            b,
            preconditioner,
            self.options,
            x,
            stats,
            &mut self.workspace,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrOperator;

    fn spd_matrix() -> CsrMatrix {
        // Diagonally dominant symmetric matrix.
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (1, 1, 5.0),
                (2, 2, 6.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 2.0),
                (2, 1, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn solves_spd_system() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let x_true = [1.0, -2.0, 3.0];
        let b = m.mul_vec(&x_true);
        let res =
            conjugate_gradient(&op, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        assert!(res.converged);
        for (xi, ti) in res.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn jacobi_reduces_iterations_on_ill_scaled_system() {
        // Badly scaled diagonal system: Jacobi solves it essentially exactly.
        let diag: Vec<f64> = (1..=50).map(|i| (i * i) as f64).collect();
        let m = CsrMatrix::from_diagonal(&diag);
        let op = CsrOperator::new(&m);
        let b = vec![1.0; 50];
        let plain =
            conjugate_gradient(&op, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let pre = JacobiPreconditioner::from_matrix(&m);
        let jac = conjugate_gradient(&op, &b, &pre, CgOptions::default()).unwrap();
        assert!(jac.converged);
        assert!(jac.iterations <= plain.iterations);
        assert!(jac.iterations <= 2);
    }

    #[test]
    fn jacobi_counts_clamped_entries() {
        let pre = JacobiPreconditioner::from_diagonal(&[2.0, 0.0, -1.0, f64::NAN, 4.0]);
        assert_eq!(pre.clamped_entries(), 3);
        let ok = JacobiPreconditioner::from_diagonal(&[1.0, 2.0]);
        assert_eq!(ok.clamped_entries(), 0);
    }

    #[test]
    fn preconditioner_dimension_mismatch_is_error() {
        let pre = JacobiPreconditioner::from_diagonal(&[1.0, 2.0]);
        let mut z = vec![0.0; 3];
        assert!(pre.apply(&[1.0, 2.0, 3.0], &mut z).is_err());
        let mut z2 = vec![0.0; 2];
        assert!(pre.apply(&[1.0, 2.0], &mut z2).is_ok());
        assert!(IdentityPreconditioner.apply(&[1.0], &mut z).is_err());
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let res = conjugate_gradient(
            &op,
            &[0.0; 3],
            &IdentityPreconditioner,
            CgOptions::default(),
        )
        .unwrap();
        assert!(res.converged);
        assert_eq!(res.x, vec![0.0; 3]);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        assert!(matches!(
            conjugate_gradient(
                &op,
                &[1.0; 5],
                &IdentityPreconditioner,
                CgOptions::default()
            ),
            Err(SolverError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rhs_rejected() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        assert!(conjugate_gradient(
            &op,
            &[1.0, f64::NAN, 0.0],
            &IdentityPreconditioner,
            CgOptions::default()
        )
        .is_err());
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let res = conjugate_gradient(
            &op,
            &[1.0, 2.0, 3.0],
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-30,
                max_iter: 1,
            },
        )
        .unwrap();
        assert!(!res.converged);
        assert_eq!(res.iterations, 1);
        assert!(res.residual_norm.is_finite());
    }

    #[test]
    fn cg_into_matches_allocating_form_bitwise() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let b = [1.0, -2.0, 3.0];
        let reference =
            conjugate_gradient(&op, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let mut ws = SolverWorkspace::new();
        let mut x = vec![0.0; 3];
        let stats = conjugate_gradient_into(
            &op,
            &b,
            &IdentityPreconditioner,
            CgOptions::default(),
            &mut x,
            &mut ws,
        )
        .unwrap();
        assert_eq!(stats.iterations, reference.iterations);
        assert_eq!(stats.converged, reference.converged);
        assert_eq!(
            stats.residual_norm.to_bits(),
            reference.residual_norm.to_bits()
        );
        for (a, b) in x.iter().zip(&reference.x) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Second solve with the warmed workspace: no new pool misses.
        let misses = ws.misses();
        conjugate_gradient_into(
            &op,
            &b,
            &IdentityPreconditioner,
            CgOptions::default(),
            &mut x,
            &mut ws,
        )
        .unwrap();
        assert_eq!(ws.misses(), misses);
    }

    fn laplacian_like() -> CsrMatrix {
        // SPD system large enough for CG to take several iterations.
        let n = 24;
        let mut trips = Vec::new();
        for i in 0..n {
            trips.push((i, i, 4.0 + (i % 3) as f64));
            if i + 1 < n {
                trips.push((i, i + 1, -1.0));
                trips.push((i + 1, i, -1.0));
            }
            if i + 5 < n {
                trips.push((i, i + 5, -0.5));
                trips.push((i + 5, i, -0.5));
            }
        }
        CsrMatrix::from_triplets(n, n, &trips).unwrap()
    }

    #[test]
    fn block_cg_columns_are_bit_identical_to_scalar_cg() {
        let m = laplacian_like();
        let n = m.nrows();
        let op = CsrOperator::new(&m);
        let pre = JacobiPreconditioner::from_matrix(&m);
        let k = 5;
        let mut cols = Vec::new();
        for j in 0..k {
            cols.push(
                (0..n)
                    .map(|i| ((i * 7 + j * 13) % 11) as f64 - 5.0)
                    .collect::<Vec<f64>>(),
            );
        }
        // Include a zero column and a trivially-converged column.
        cols[3].iter_mut().for_each(|v| *v = 0.0);
        let b = DenseMatrix::from_columns(&cols).unwrap();
        let mut solver = CgSolver::new(CgOptions {
            tol: 1e-10,
            max_iter: 200,
        });
        let block = solver.solve_block(&op, &b, &pre).unwrap();
        assert_eq!(block.columns.len(), k);
        for (j, col) in cols.iter().enumerate() {
            let scalar = conjugate_gradient(&op, col, &pre, solver.options()).unwrap();
            assert_eq!(block.columns[j].iterations, scalar.iterations, "col {j}");
            assert_eq!(block.columns[j].converged, scalar.converged, "col {j}");
            assert_eq!(
                block.columns[j].residual_norm.to_bits(),
                scalar.residual_norm.to_bits(),
                "col {j}"
            );
            for i in 0..n {
                assert_eq!(
                    block.x.get(i, j).to_bits(),
                    scalar.x[i].to_bits(),
                    "col {j}, row {i}"
                );
            }
        }
        // Partitioning invariance: solving a sub-panel gives the same columns.
        let sub = DenseMatrix::from_columns(&cols[1..3]).unwrap();
        let sub_res = solver.solve_block(&op, &sub, &pre).unwrap();
        for (jj, j) in (1..3).enumerate() {
            for i in 0..n {
                assert_eq!(sub_res.x.get(i, jj).to_bits(), block.x.get(i, j).to_bits());
            }
        }
    }

    #[test]
    fn block_cg_budget_masking_freezes_columns_independently() {
        let m = laplacian_like();
        let n = m.nrows();
        let op = CsrOperator::new(&m);
        let pre = JacobiPreconditioner::from_matrix(&m);
        // An easy column next to a budget-starved tolerance: with a tiny
        // max_iter the hard tolerance columns stop unconverged while the
        // zero column converges instantly.
        let hard: Vec<f64> = (0..n).map(|i| (i as f64).cos()).collect();
        let zero = vec![0.0; n];
        let b = DenseMatrix::from_columns(&[hard.clone(), zero]).unwrap();
        let opts = CgOptions {
            tol: 1e-14,
            max_iter: 2,
        };
        let mut solver = CgSolver::new(opts);
        let block = solver.solve_block(&op, &b, &pre).unwrap();
        assert!(!block.columns[0].converged);
        assert_eq!(block.columns[0].iterations, 2);
        assert!(block.columns[1].converged);
        assert_eq!(block.columns[1].iterations, 0);
        // The starved column still matches its scalar twin bitwise.
        let scalar = conjugate_gradient(&op, &hard, &pre, opts).unwrap();
        for i in 0..n {
            assert_eq!(block.x.get(i, 0).to_bits(), scalar.x[i].to_bits());
        }
    }

    #[test]
    fn block_cg_rejects_bad_shapes() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let b = DenseMatrix::zeros(4, 2);
        let mut solver = CgSolver::new(CgOptions::default());
        assert!(matches!(
            solver.solve_block(&op, &b, &IdentityPreconditioner),
            Err(SolverError::DimensionMismatch { .. })
        ));
        let good_b = DenseMatrix::zeros(3, 2);
        let mut bad_x = DenseMatrix::zeros(3, 1);
        let mut stats = Vec::new();
        assert!(matches!(
            solver.solve_block_into(
                &op,
                &good_b,
                &IdentityPreconditioner,
                &mut bad_x,
                &mut stats
            ),
            Err(SolverError::DimensionMismatch { .. })
        ));
        // Empty panel is a no-op.
        let empty = DenseMatrix::zeros(3, 0);
        let res = solver
            .solve_block(&op, &empty, &IdentityPreconditioner)
            .unwrap();
        assert!(res.columns.is_empty());
    }

    #[test]
    fn exact_in_n_iterations() {
        // CG converges in at most n steps in exact arithmetic.
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let res = conjugate_gradient(
            &op,
            &[1.0, 1.0, 1.0],
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-12,
                max_iter: 3,
            },
        )
        .unwrap();
        assert!(res.converged, "residual {}", res.residual_norm);
    }
}
