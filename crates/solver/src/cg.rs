//! (Preconditioned) conjugate gradient for sparse SPD systems.

use crate::{LinearOperator, SolverError};
use cirstag_linalg::vecops;
use cirstag_linalg::CsrMatrix;

/// A preconditioner: applies `z = M⁻¹ r` for some SPD approximation `M ≈ A`.
pub trait Preconditioner {
    /// Computes `z ← M⁻¹ r`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] when `r` or `z` does not
    /// match the preconditioner's dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolverError>;
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolverError> {
        if r.len() != z.len() {
            return Err(SolverError::DimensionMismatch {
                expected: z.len(),
                actual: r.len(),
            });
        }
        z.copy_from_slice(r);
        Ok(())
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(A)`.
///
/// Cheap and effective for diagonally dominant systems such as graph
/// Laplacians with a diagonal shift.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
    clamped: usize,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from a matrix's diagonal. Zero (or negative)
    /// diagonal entries are clamped to `1.0` so the preconditioner stays SPD;
    /// the number of clamped entries is reported by
    /// [`JacobiPreconditioner::clamped_entries`] so callers can surface the
    /// ill-conditioning instead of masking it.
    pub fn from_matrix(a: &CsrMatrix) -> Self {
        Self::from_diagonal(&a.diagonal())
    }

    /// Builds the preconditioner from an explicit diagonal. Non-positive (or
    /// non-finite) entries are clamped to `1.0` and counted.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut clamped = 0usize;
        let inv_diag = diag
            .iter()
            .map(|&d| {
                if d > 0.0 && d.is_finite() {
                    1.0 / d
                } else {
                    clamped += 1;
                    1.0
                }
            })
            .collect();
        JacobiPreconditioner { inv_diag, clamped }
    }

    /// How many diagonal entries were non-positive (or non-finite) and had
    /// to be clamped to `1.0` at construction. A nonzero count signals an
    /// ill-conditioned or non-SPD system that Jacobi can only partially
    /// precondition.
    #[inline]
    pub fn clamped_entries(&self) -> usize {
        self.clamped
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) -> Result<(), SolverError> {
        if r.len() != self.inv_diag.len() || z.len() != self.inv_diag.len() {
            return Err(SolverError::DimensionMismatch {
                expected: self.inv_diag.len(),
                actual: r.len().max(z.len()),
            });
        }
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
        Ok(())
    }
}

/// Options controlling a conjugate-gradient run.
#[derive(Debug, Clone, Copy)]
pub struct CgOptions {
    /// Relative residual tolerance: stop when `‖r‖ ≤ tol · ‖b‖`.
    pub tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tol: 1e-10,
            max_iter: 2000,
        }
    }
}

/// Outcome of a conjugate-gradient run.
#[derive(Debug, Clone)]
pub struct CgResult {
    /// The (approximate) solution.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final residual norm `‖b − A x‖`.
    pub residual_norm: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Solves `A x = b` for a symmetric positive (semi)definite operator with
/// preconditioned conjugate gradient.
///
/// For *singular consistent* systems (graph Laplacians with `b ⊥ 1`), CG
/// converges to the minimum-norm solution provided the initial guess and
/// right-hand side lie in the range; [`crate::LaplacianSolver`] handles that
/// projection.
///
/// The returned result reports `converged = false` instead of erroring when
/// the budget is exhausted, exposing the best iterate found
/// (C-INTERMEDIATE); callers that require convergence should check the flag.
///
/// # Errors
///
/// - [`SolverError::DimensionMismatch`] when `b.len() != a.dim()`.
/// - [`SolverError::InvalidArgument`] when `b` contains non-finite values or
///   options are out of range.
pub fn conjugate_gradient<A, M>(
    a: &A,
    b: &[f64],
    preconditioner: &M,
    options: CgOptions,
) -> Result<CgResult, SolverError>
where
    A: LinearOperator + ?Sized,
    M: Preconditioner + ?Sized,
{
    let n = a.dim();
    if b.len() != n {
        return Err(SolverError::DimensionMismatch {
            expected: n,
            actual: b.len(),
        });
    }
    if !vecops::all_finite(b) {
        return Err(SolverError::InvalidArgument {
            reason: "right-hand side contains non-finite values".to_string(),
        });
    }
    if !(options.tol > 0.0 && options.tol.is_finite()) {
        return Err(SolverError::InvalidArgument {
            reason: format!("tolerance {} must be positive and finite", options.tol),
        });
    }
    let b_norm = vecops::norm2(b);
    // Failpoint: force "CG exhausted its budget" so tests can drive the
    // preconditioner escalation ladder deterministically.
    if cirstag_linalg::fail::trigger("solver/cg").is_some() {
        return Ok(CgResult {
            x: vec![0.0; n],
            iterations: 0,
            residual_norm: b_norm,
            converged: false,
        });
    }
    // cirstag-lint: allow(float-discipline) -- exact-zero RHS short-circuit: any nonzero norm proceeds to iterate
    if b_norm == 0.0 {
        return Ok(CgResult {
            x: vec![0.0; n],
            iterations: 0,
            residual_norm: 0.0,
            converged: true,
        });
    }
    let threshold = options.tol * b_norm;

    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    preconditioner.apply(&r, &mut z)?;
    let mut p = z.clone();
    let mut rz = vecops::dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut iterations = 0;
    let mut residual_norm = vecops::norm2(&r);
    while iterations < options.max_iter && residual_norm > threshold {
        a.apply(&p, &mut ap)?;
        let pap = vecops::dot(&p, &ap);
        if pap <= 0.0 || !pap.is_finite() {
            // Breakdown: the operator is not SPD on this subspace. Return the
            // best iterate with converged = false.
            break;
        }
        let alpha = rz / pap;
        vecops::axpy(alpha, &p, &mut x);
        vecops::axpy(-alpha, &ap, &mut r);
        residual_norm = vecops::norm2(&r);
        iterations += 1;
        if residual_norm <= threshold {
            break;
        }
        preconditioner.apply(&r, &mut z)?;
        let rz_new = vecops::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for (pi, zi) in p.iter_mut().zip(&z) {
            *pi = zi + beta * *pi;
        }
    }

    Ok(CgResult {
        converged: residual_norm <= threshold,
        x,
        iterations,
        residual_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrOperator;

    fn spd_matrix() -> CsrMatrix {
        // Diagonally dominant symmetric matrix.
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (1, 1, 5.0),
                (2, 2, 6.0),
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 2.0),
                (2, 1, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn solves_spd_system() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let x_true = [1.0, -2.0, 3.0];
        let b = m.mul_vec(&x_true);
        let res =
            conjugate_gradient(&op, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        assert!(res.converged);
        for (xi, ti) in res.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn jacobi_reduces_iterations_on_ill_scaled_system() {
        // Badly scaled diagonal system: Jacobi solves it essentially exactly.
        let diag: Vec<f64> = (1..=50).map(|i| (i * i) as f64).collect();
        let m = CsrMatrix::from_diagonal(&diag);
        let op = CsrOperator::new(&m);
        let b = vec![1.0; 50];
        let plain =
            conjugate_gradient(&op, &b, &IdentityPreconditioner, CgOptions::default()).unwrap();
        let pre = JacobiPreconditioner::from_matrix(&m);
        let jac = conjugate_gradient(&op, &b, &pre, CgOptions::default()).unwrap();
        assert!(jac.converged);
        assert!(jac.iterations <= plain.iterations);
        assert!(jac.iterations <= 2);
    }

    #[test]
    fn jacobi_counts_clamped_entries() {
        let pre = JacobiPreconditioner::from_diagonal(&[2.0, 0.0, -1.0, f64::NAN, 4.0]);
        assert_eq!(pre.clamped_entries(), 3);
        let ok = JacobiPreconditioner::from_diagonal(&[1.0, 2.0]);
        assert_eq!(ok.clamped_entries(), 0);
    }

    #[test]
    fn preconditioner_dimension_mismatch_is_error() {
        let pre = JacobiPreconditioner::from_diagonal(&[1.0, 2.0]);
        let mut z = vec![0.0; 3];
        assert!(pre.apply(&[1.0, 2.0, 3.0], &mut z).is_err());
        let mut z2 = vec![0.0; 2];
        assert!(pre.apply(&[1.0, 2.0], &mut z2).is_ok());
        assert!(IdentityPreconditioner.apply(&[1.0], &mut z).is_err());
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let res = conjugate_gradient(
            &op,
            &[0.0; 3],
            &IdentityPreconditioner,
            CgOptions::default(),
        )
        .unwrap();
        assert!(res.converged);
        assert_eq!(res.x, vec![0.0; 3]);
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        assert!(matches!(
            conjugate_gradient(
                &op,
                &[1.0; 5],
                &IdentityPreconditioner,
                CgOptions::default()
            ),
            Err(SolverError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn non_finite_rhs_rejected() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        assert!(conjugate_gradient(
            &op,
            &[1.0, f64::NAN, 0.0],
            &IdentityPreconditioner,
            CgOptions::default()
        )
        .is_err());
    }

    #[test]
    fn budget_exhaustion_reports_not_converged() {
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let res = conjugate_gradient(
            &op,
            &[1.0, 2.0, 3.0],
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-30,
                max_iter: 1,
            },
        )
        .unwrap();
        assert!(!res.converged);
        assert_eq!(res.iterations, 1);
        assert!(res.residual_norm.is_finite());
    }

    #[test]
    fn exact_in_n_iterations() {
        // CG converges in at most n steps in exact arithmetic.
        let m = spd_matrix();
        let op = CsrOperator::new(&m);
        let res = conjugate_gradient(
            &op,
            &[1.0, 1.0, 1.0],
            &IdentityPreconditioner,
            CgOptions {
                tol: 1e-12,
                max_iter: 3,
            },
        )
        .unwrap();
        assert!(res.converged, "residual {}", res.residual_norm);
    }
}
