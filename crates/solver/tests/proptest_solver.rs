//! Property-based tests for the iterative solvers and eigensolvers.

use cirstag_graph::Graph;
use cirstag_linalg::{jacobi_eigen, vecops, CsrMatrix, DenseMatrix};
use cirstag_solver::{
    conjugate_gradient, generalized_lanczos, lanczos_largest, CgOptions, CsrOperator,
    JacobiPreconditioner, LaplacianSolver, ResistanceEstimator, TreePreconditioner,
};
use proptest::prelude::*;

/// Random SPD matrix via AᵀA + n·I on a small dense A.
fn arb_spd(n: usize) -> impl Strategy<Value = CsrMatrix> {
    proptest::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| {
        let a = DenseMatrix::from_vec(n, n, data).expect("sized");
        let ata = a.transpose().matmul(&a).expect("square");
        let mut trips = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let v = ata.get(i, j) + if i == j { n as f64 } else { 0.0 };
                trips.push((i, j, v));
            }
        }
        CsrMatrix::from_triplets(n, n, &trips).expect("valid")
    })
}

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (
        4usize..max_n,
        proptest::collection::vec((0usize..997, 0usize..991, 0.1f64..8.0), 0..25),
    )
        .prop_map(|(n, extra)| {
            let mut edges: Vec<(usize, usize, f64)> = (0..n)
                .map(|i| (i, (i + 1) % n, 0.5 + (i % 3) as f64))
                .collect();
            for (a, b, w) in extra {
                let u = a % n;
                let v = b % n;
                if u != v {
                    edges.push((u, v, w));
                }
            }
            Graph::from_edges(n, &edges).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cg_solves_random_spd_systems(m in arb_spd(8), b in proptest::collection::vec(-5.0f64..5.0, 8)) {
        let op = CsrOperator::new(&m);
        let pre = JacobiPreconditioner::from_matrix(&m);
        let res = conjugate_gradient(&op, &b, &pre, CgOptions::default()).unwrap();
        prop_assert!(res.converged, "residual {}", res.residual_norm);
        let ax = m.mul_vec(&res.x);
        let bn = vecops::norm2(&b).max(1e-12);
        for (a, c) in ax.iter().zip(&b) {
            prop_assert!((a - c).abs() <= 1e-6 * bn);
        }
    }

    #[test]
    fn laplacian_solver_inverts_on_the_range(g in arb_connected(20), raw in proptest::collection::vec(-3.0f64..3.0, 20)) {
        let n = g.num_nodes();
        let mut b = raw[..n].to_vec();
        vecops::center(&mut b);
        let solver = LaplacianSolver::new(&g).unwrap();
        let x = solver.solve(&b).unwrap();
        let lx = solver.laplacian().mul_vec(&x);
        let bn = vecops::norm2(&b).max(1e-9);
        for (a, c) in lx.iter().zip(&b) {
            prop_assert!((a - c).abs() <= 1e-5 * bn);
        }
        prop_assert!(vecops::mean(&x).abs() < 1e-10);
    }

    #[test]
    fn tree_preconditioned_solver_agrees_with_jacobi(g in arb_connected(18), raw in proptest::collection::vec(-3.0f64..3.0, 18)) {
        let n = g.num_nodes();
        let mut b = raw[..n].to_vec();
        vecops::center(&mut b);
        let jac = LaplacianSolver::new(&g).unwrap().solve(&b).unwrap();
        let tree = LaplacianSolver::with_tree_preconditioner(&g, CgOptions::default())
            .unwrap()
            .solve(&b)
            .unwrap();
        let scale = vecops::norm2(&jac).max(1e-9);
        for (a, c) in jac.iter().zip(&tree) {
            prop_assert!((a - c).abs() <= 1e-5 * scale, "{} vs {}", a, c);
        }
    }

    #[test]
    fn tree_preconditioner_is_spd_on_complement(g in arb_connected(14), raw in proptest::collection::vec(-2.0f64..2.0, 14)) {
        // rᵀ M⁻¹ r > 0 for centered nonzero r — required for PCG validity.
        let n = g.num_nodes();
        let mut r = raw[..n].to_vec();
        vecops::center(&mut r);
        if vecops::norm2(&r) > 1e-9 {
            let pre = TreePreconditioner::new(&g, 7).unwrap();
            let mut z = vec![0.0; n];
            cirstag_solver::Preconditioner::apply(&pre, &r, &mut z).unwrap();
            prop_assert!(vecops::dot(&r, &z) > 0.0);
        }
    }

    #[test]
    fn lanczos_top_value_matches_dense(m in arb_spd(9)) {
        let op = CsrOperator::new(&m);
        let lz = lanczos_largest(&op, 1, 60, 1e-10, 3).unwrap();
        let (dense_vals, _) = jacobi_eigen(&m.to_dense()).unwrap();
        let top = dense_vals.last().copied().unwrap();
        prop_assert!((lz.eigenvalues[0] - top).abs() <= 1e-6 * top.abs().max(1.0));
    }

    #[test]
    fn effective_resistance_is_a_metric_sample(g in arb_connected(14)) {
        // Triangle inequality of the resistance distance on a node triple.
        let est = ResistanceEstimator::exact(&g).unwrap();
        let r01 = est.query(0, 1).unwrap();
        let r12 = est.query(1, 2).unwrap();
        let r02 = est.query(0, 2).unwrap();
        prop_assert!(r02 <= r01 + r12 + 1e-9);
        prop_assert!(r01 <= r02 + r12 + 1e-9);
    }

    #[test]
    fn generalized_eigenvalues_of_scaled_pencil(g in arb_connected(12), c in 0.25f64..4.0) {
        // L_X = c·L_Y ⇒ every generalized eigenvalue equals c.
        let scaled = g.map_weights(|_, e| e.weight * c);
        let solver = LaplacianSolver::new(&g).unwrap();
        let r = generalized_lanczos(&scaled.laplacian(), &solver, 2, 40, 1).unwrap();
        for v in &r.eigenvalues {
            prop_assert!((v - c).abs() < 1e-4 * c, "{} vs {}", v, c);
        }
    }
}
