//! Property-based tests for graph structures, trees and traversals.

use cirstag_graph::{
    average_stretch, connected_components, dijkstra, low_stretch_tree, maximum_spanning_tree,
    minimum_spanning_tree, Graph, TreePathOracle,
};
use proptest::prelude::*;

fn arb_connected(max_n: usize) -> impl Strategy<Value = Graph> {
    (
        3usize..max_n,
        proptest::collection::vec((0usize..1000, 0usize..1000, 0.1f64..9.0), 0..40),
    )
        .prop_map(|(n, extra)| {
            // Random spanning-tree backbone keeps it connected.
            let mut edges: Vec<(usize, usize, f64)> = (1..n)
                .map(|i| (i, (i * 7 + 3) % i.max(1), 1.0 + (i % 4) as f64))
                .collect();
            for (a, b, w) in extra {
                let u = a % n;
                let v = b % n;
                if u != v {
                    edges.push((u, v, w));
                }
            }
            Graph::from_edges(n, &edges).expect("valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spanning_trees_span(g in arb_connected(30)) {
        let t = maximum_spanning_tree(&g);
        prop_assert_eq!(t.num_edges(), g.num_nodes() - 1);
        prop_assert!(t.as_graph().is_connected());
        let t2 = minimum_spanning_tree(&g);
        prop_assert_eq!(t2.num_edges(), g.num_nodes() - 1);
        // Max tree total weight ≥ min tree total weight.
        prop_assert!(t.total_weight() >= t2.total_weight() - 1e-12);
    }

    #[test]
    fn low_stretch_tree_spans_with_finite_stretch(g in arb_connected(30)) {
        let t = low_stretch_tree(&g, 5).unwrap();
        prop_assert_eq!(t.num_edges(), g.num_nodes() - 1);
        // Stretch may be below 1 for a light off-tree edge bypassed by heavy
        // tree edges; the invariant is positivity and finiteness.
        let s = average_stretch(&g, &t).unwrap();
        if g.num_edges() > g.num_nodes() - 1 {
            prop_assert!(s.is_finite() && s > 0.0, "average stretch {}", s);
        } else {
            prop_assert_eq!(s, 0.0);
        }
    }

    #[test]
    fn tree_oracle_matches_dijkstra_on_the_tree(g in arb_connected(25)) {
        let t = maximum_spanning_tree(&g);
        let tree = t.as_graph();
        let oracle = TreePathOracle::new(tree).unwrap();
        let sp = dijkstra(tree, 0).unwrap();
        for v in 0..tree.num_nodes() {
            let d_oracle = oracle.path_resistance(0, v).unwrap();
            prop_assert!(
                (d_oracle - sp.dist[v]).abs() < 1e-9,
                "node {}: oracle {} vs dijkstra {}",
                v, d_oracle, sp.dist[v]
            );
        }
    }

    #[test]
    fn dijkstra_satisfies_triangle_inequality(g in arb_connected(20)) {
        let from0 = dijkstra(&g, 0).unwrap();
        let from1 = dijkstra(&g, 1).unwrap();
        for v in 0..g.num_nodes() {
            prop_assert!(
                from0.dist[v] <= from0.dist[1] + from1.dist[v] + 1e-9,
                "triangle violated at {}", v
            );
        }
    }

    #[test]
    fn components_partition_nodes(g in arb_connected(20)) {
        // Remove a batch of edges; components must still partition the nodes
        // and agree with pairwise reachability via Dijkstra.
        let h = g.filter_edges(|eid, _| eid % 3 != 0);
        let comps = connected_components(&h);
        prop_assert_eq!(comps.len(), h.num_nodes());
        let sp = dijkstra(&h, 0).unwrap();
        for v in 0..h.num_nodes() {
            let same = comps[v] == comps[0];
            prop_assert_eq!(same, sp.dist[v].is_finite(), "node {}", v);
        }
    }

    #[test]
    fn laplacian_quadratic_form_nonnegative(g in arb_connected(20), x in proptest::collection::vec(-4.0f64..4.0, 20)) {
        let x = &x[..g.num_nodes().min(x.len())];
        if x.len() == g.num_nodes() {
            prop_assert!(g.laplacian_quadratic_form(x) >= -1e-10);
            prop_assert!((g.laplacian_quadratic_form(x) - g.laplacian().quadratic_form(x)).abs() < 1e-8);
        }
    }

    #[test]
    fn normalized_laplacian_spectrum_in_zero_two(g in arb_connected(12)) {
        let l = g.normalized_laplacian().to_dense();
        let (vals, _) = cirstag_linalg::jacobi_eigen(&l).unwrap();
        for v in vals {
            prop_assert!((-1e-9..=2.0 + 1e-9).contains(&v), "eigenvalue {}", v);
        }
    }
}

/// Brute-force check on tiny graphs: the maximum spanning tree really has
/// maximal total weight over all spanning trees.
#[test]
fn max_tree_is_optimal_on_small_complete_graph() {
    // K4 with distinct weights.
    let weights = [
        (0usize, 1usize, 5.0),
        (0, 2, 1.0),
        (0, 3, 4.0),
        (1, 2, 3.0),
        (1, 3, 2.0),
        (2, 3, 6.0),
    ];
    let g = Graph::from_edges(4, &weights).unwrap();
    let t = maximum_spanning_tree(&g);
    // Enumerate all 16 spanning trees of K4 via edge subsets of size 3.
    let mut best = 0.0f64;
    for a in 0..6 {
        for b in (a + 1)..6 {
            for c in (b + 1)..6 {
                let sub = [weights[a], weights[b], weights[c]];
                let cand = Graph::from_edges(4, &sub).unwrap();
                if cand.is_connected() {
                    best = best.max(cand.total_weight());
                }
            }
        }
    }
    assert_eq!(t.total_weight(), best);
}
