//! Lowest-common-ancestor path oracle over spanning trees.

use crate::{Graph, GraphError, NodeId};
use std::collections::VecDeque;

/// Answers tree-path queries (resistance, hop length, LCA) in `O(log n)` per
/// query after `O(n log n)` preprocessing via binary lifting.
///
/// Built from a tree (or forest) graph; queries between nodes in different
/// components return an error. The *resistance* of a path is the sum of
/// `1 / weight` over its edges, matching the electrical interpretation used
/// for stretch and the low-resistance-diameter decomposition.
///
/// # Example
///
/// ```
/// use cirstag_graph::{Graph, TreePathOracle};
///
/// # fn main() -> Result<(), cirstag_graph::GraphError> {
/// let tree = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (1, 3, 1.0)])?;
/// let oracle = TreePathOracle::new(&tree)?;
/// assert_eq!(oracle.lca(2, 3)?, 1);
/// assert!((oracle.path_resistance(2, 3)? - 1.5).abs() < 1e-12);
/// assert_eq!(oracle.path_hops(0, 2)?, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TreePathOracle {
    depth: Vec<u32>,
    /// Resistive distance from each node to the root of its component.
    root_resistance: Vec<f64>,
    /// `up[k][v]` is the 2^k-th ancestor of `v` (or `v` itself past the root).
    up: Vec<Vec<NodeId>>,
    component: Vec<usize>,
    levels: usize,
}

impl TreePathOracle {
    /// Preprocesses a tree/forest graph for path queries.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotATree`] when the graph contains a cycle
    /// (i.e. `|E| ≥ |V|` within some component).
    pub fn new(tree: &Graph) -> Result<Self, GraphError> {
        let n = tree.num_nodes();
        let comps = crate::traversal::connected_components(tree);
        let num_comps = comps.iter().copied().max().map_or(0, |m| m + 1);
        // A forest satisfies |E| = |V| - #components.
        if tree.num_edges() + num_comps != n.max(num_comps) {
            return Err(GraphError::NotATree);
        }
        // cirstag-lint: allow(cast-truncation) -- a bit count, at most usize::BITS (<= 128), always fits usize
        let levels = (usize::BITS - n.max(2).leading_zeros()) as usize;
        let mut depth = vec![0u32; n];
        let mut root_resistance = vec![0.0f64; n];
        let mut parent = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        // BFS from the smallest node of each component.
        let mut queue = VecDeque::new();
        for s in 0..n {
            if seen[s] {
                continue;
            }
            seen[s] = true;
            parent[s] = s; // roots point at themselves
            queue.push_back(s);
            while let Some(u) = queue.pop_front() {
                for (v, w) in tree.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        parent[v] = u;
                        depth[v] = depth[u] + 1;
                        root_resistance[v] = root_resistance[u] + 1.0 / w;
                        queue.push_back(v);
                    }
                }
            }
        }
        let mut up = vec![parent];
        for k in 1..levels.max(1) {
            let prev = &up[k - 1];
            let next: Vec<NodeId> = (0..n).map(|v| prev[prev[v]]).collect();
            up.push(next);
        }
        Ok(TreePathOracle {
            depth,
            root_resistance,
            up,
            component: comps,
            levels: levels.max(1),
        })
    }

    fn check(&self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let n = self.depth.len();
        if u >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: u,
                num_nodes: n,
            });
        }
        if v >= n {
            return Err(GraphError::NodeOutOfBounds {
                node: v,
                num_nodes: n,
            });
        }
        if self.component[u] != self.component[v] {
            return Err(GraphError::Disconnected);
        }
        Ok(())
    }

    /// Lowest common ancestor of `u` and `v`.
    ///
    /// # Errors
    ///
    /// - [`GraphError::NodeOutOfBounds`] for invalid node ids.
    /// - [`GraphError::Disconnected`] when `u` and `v` lie in different
    ///   components of the forest.
    pub fn lca(&self, mut u: NodeId, mut v: NodeId) -> Result<NodeId, GraphError> {
        self.check(u, v)?;
        if self.depth[u] < self.depth[v] {
            std::mem::swap(&mut u, &mut v);
        }
        // Lift u to v's depth.
        let mut diff = self.depth[u] - self.depth[v];
        let mut k = 0;
        while diff > 0 {
            if diff & 1 == 1 {
                u = self.up[k][u];
            }
            diff >>= 1;
            k += 1;
        }
        if u == v {
            return Ok(u);
        }
        for k in (0..self.levels).rev() {
            if self.up[k][u] != self.up[k][v] {
                u = self.up[k][u];
                v = self.up[k][v];
            }
        }
        // `levels >= 1` whenever the tree is non-empty; fall back to `u`
        // itself (already the LCA when the loop converged) if not.
        Ok(self.up.first().map_or(u, |row| row[u]))
    }

    /// Sum of resistive edge lengths (`1 / weight`) along the tree path
    /// between `u` and `v`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TreePathOracle::lca`].
    pub fn path_resistance(&self, u: NodeId, v: NodeId) -> Result<f64, GraphError> {
        let a = self.lca(u, v)?;
        Ok(self.root_resistance[u] + self.root_resistance[v] - 2.0 * self.root_resistance[a])
    }

    /// Number of edges on the tree path between `u` and `v`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TreePathOracle::lca`].
    pub fn path_hops(&self, u: NodeId, v: NodeId) -> Result<u32, GraphError> {
        let a = self.lca(u, v)?;
        Ok(self.depth[u] + self.depth[v] - 2 * self.depth[a])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star() -> Graph {
        Graph::from_edges(5, &[(0, 1, 1.0), (0, 2, 2.0), (0, 3, 4.0), (0, 4, 1.0)]).unwrap()
    }

    #[test]
    fn lca_on_star_is_center() {
        let o = TreePathOracle::new(&star()).unwrap();
        assert_eq!(o.lca(1, 2).unwrap(), 0);
        assert_eq!(o.lca(3, 4).unwrap(), 0);
        assert_eq!(o.lca(0, 4).unwrap(), 0);
        assert_eq!(o.lca(2, 2).unwrap(), 2);
    }

    #[test]
    fn path_resistance_sums_inverse_weights() {
        let o = TreePathOracle::new(&star()).unwrap();
        // 1 -> 0 -> 3 : 1/1 + 1/4
        assert!((o.path_resistance(1, 3).unwrap() - 1.25).abs() < 1e-12);
        assert_eq!(o.path_resistance(2, 2).unwrap(), 0.0);
    }

    #[test]
    fn path_hops_count_edges() {
        let chain =
            Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0)]).unwrap();
        let o = TreePathOracle::new(&chain).unwrap();
        assert_eq!(o.path_hops(0, 4).unwrap(), 4);
        assert_eq!(o.path_hops(2, 4).unwrap(), 2);
    }

    #[test]
    fn deep_chain_lca() {
        let n = 300;
        let edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let chain = Graph::from_edges(n, &edges).unwrap();
        let o = TreePathOracle::new(&chain).unwrap();
        assert_eq!(o.lca(10, 250).unwrap(), 10);
        assert_eq!(o.path_hops(0, n - 1).unwrap() as usize, n - 1);
        assert!((o.path_resistance(0, n - 1).unwrap() - (n - 1) as f64).abs() < 1e-9);
    }

    #[test]
    fn forest_queries_across_components_fail() {
        let forest = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let o = TreePathOracle::new(&forest).unwrap();
        assert!(o.path_resistance(0, 1).is_ok());
        assert!(matches!(o.lca(0, 2), Err(GraphError::Disconnected)));
    }

    #[test]
    fn rejects_cyclic_graph() {
        let cycle = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        assert!(matches!(
            TreePathOracle::new(&cycle),
            Err(GraphError::NotATree)
        ));
    }

    #[test]
    fn bounds_checked() {
        let o = TreePathOracle::new(&star()).unwrap();
        assert!(matches!(
            o.lca(0, 99),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }

    #[test]
    fn balanced_binary_tree_paths() {
        // Nodes 0..7: node i has children 2i+1, 2i+2.
        let mut edges = Vec::new();
        for i in 0..3 {
            edges.push((i, 2 * i + 1, 1.0));
            edges.push((i, 2 * i + 2, 1.0));
        }
        let t = Graph::from_edges(7, &edges).unwrap();
        let o = TreePathOracle::new(&t).unwrap();
        assert_eq!(o.lca(3, 4).unwrap(), 1);
        assert_eq!(o.lca(3, 5).unwrap(), 0);
        assert_eq!(o.path_hops(3, 6).unwrap(), 4);
    }
}
