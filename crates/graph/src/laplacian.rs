//! Laplacian and adjacency assembly for [`Graph`].

use crate::Graph;
use cirstag_linalg::{CooMatrix, CsrMatrix};

impl Graph {
    /// Assembles the weighted adjacency matrix `A` in CSR form.
    pub fn adjacency_matrix(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let mut coo = CooMatrix::with_capacity(n, n, 2 * self.num_edges());
        for e in self.edges() {
            coo.push(e.u, e.v, e.weight).expect("valid edge endpoints"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
            coo.push(e.v, e.u, e.weight).expect("valid edge endpoints"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
        }
        coo.to_csr()
    }

    /// Assembles the combinatorial Laplacian `L = D − A` in CSR form.
    ///
    /// `L` is symmetric positive semidefinite with `L·1 = 0`; it matches
    /// Eq. (5) of the paper: `L = Σ_{(p,q)∈E} w_pq e_pq e_pqᵀ`.
    pub fn laplacian(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let mut coo = CooMatrix::with_capacity(n, n, 4 * self.num_edges());
        for e in self.edges() {
            coo.push(e.u, e.u, e.weight).expect("valid edge endpoints"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
            coo.push(e.v, e.v, e.weight).expect("valid edge endpoints"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
            coo.push(e.u, e.v, -e.weight).expect("valid edge endpoints"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
            coo.push(e.v, e.u, -e.weight).expect("valid edge endpoints"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
        }
        coo.to_csr()
    }

    /// Assembles the symmetric normalized Laplacian
    /// `L_norm = I − D^{-1/2} A D^{-1/2}` in CSR form.
    ///
    /// Isolated nodes contribute a diagonal `0` (their row of `A` is empty and
    /// we define `0/0 = 0`), keeping the spectrum within `[0, 2]`.
    pub fn normalized_laplacian(&self) -> CsrMatrix {
        let n = self.num_nodes();
        let inv_sqrt_deg: Vec<f64> = (0..n)
            .map(|i| {
                let d = self.degree(i);
                if d > 0.0 {
                    1.0 / d.sqrt()
                } else {
                    0.0
                }
            })
            .collect();
        let mut coo = CooMatrix::with_capacity(n, n, n + 2 * self.num_edges());
        for i in 0..n {
            if self.degree(i) > 0.0 {
                coo.push(i, i, 1.0).expect("diagonal in bounds"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
            }
        }
        for e in self.edges() {
            let w = -e.weight * inv_sqrt_deg[e.u] * inv_sqrt_deg[e.v];
            coo.push(e.u, e.v, w).expect("valid edge endpoints"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
            coo.push(e.v, e.u, w).expect("valid edge endpoints"); // cirstag-lint: allow(no-panic-in-lib) -- COO sized n-by-n from num_nodes, so edge endpoints are always in bounds
        }
        coo.to_csr()
    }

    /// Returns the weighted degree vector `diag(D)`.
    pub fn degree_vector(&self) -> Vec<f64> {
        (0..self.num_nodes()).map(|i| self.degree(i)).collect()
    }

    /// Evaluates the Laplacian quadratic form
    /// `xᵀLx = Σ_{(u,v)∈E} w_uv (x_u − x_v)²` without assembling `L`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != num_nodes`.
    pub fn laplacian_quadratic_form(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_nodes(), "dimension mismatch");
        self.edges()
            .iter()
            .map(|e| {
                let d = x[e.u] - x[e.v];
                e.weight * d * d
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {

    use crate::Graph;

    fn path3() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)]).unwrap()
    }

    #[test]
    fn adjacency_symmetric() {
        let a = path3().adjacency_matrix();
        assert!(a.is_symmetric(1e-15));
        assert_eq!(a.get(0, 1), 1.0);
        assert_eq!(a.get(1, 2), 2.0);
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = path3().laplacian();
        for i in 0..3 {
            let (_, vals) = l.row(i);
            let s: f64 = vals.iter().sum();
            assert!(s.abs() < 1e-14, "row {i} sums to {s}");
        }
        assert_eq!(l.get(1, 1), 3.0);
        assert_eq!(l.get(0, 1), -1.0);
    }

    #[test]
    fn laplacian_annihilates_ones() {
        let g = Graph::from_edges(
            5,
            &[
                (0, 1, 1.0),
                (1, 2, 3.0),
                (2, 3, 0.5),
                (3, 4, 2.0),
                (0, 4, 1.0),
            ],
        )
        .unwrap();
        let l = g.laplacian();
        let y = l.mul_vec(&[1.0; 5]);
        assert!(y.iter().all(|v| v.abs() < 1e-14));
    }

    #[test]
    fn laplacian_psd_on_random_vectors() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 4.0)]).unwrap();
        let l = g.laplacian();
        for seed in 0..5u64 {
            let x: Vec<f64> = (0..4)
                .map(|i| ((seed.wrapping_mul(31).wrapping_add(i) % 17) as f64) - 8.0)
                .collect();
            assert!(l.quadratic_form(&x) >= -1e-12);
        }
    }

    #[test]
    fn quadratic_form_matches_matrix() {
        let g = path3();
        let l = g.laplacian();
        let x = [1.0, -2.0, 0.5];
        assert!((g.laplacian_quadratic_form(&x) - l.quadratic_form(&x)).abs() < 1e-12);
    }

    #[test]
    fn normalized_laplacian_diagonal_is_one() {
        let l = path3().normalized_laplacian();
        for i in 0..3 {
            assert!((l.get(i, i) - 1.0).abs() < 1e-14);
        }
        assert!(l.is_symmetric(1e-14));
    }

    #[test]
    fn normalized_laplacian_isolated_node() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)]).unwrap(); // node 2 isolated
        let l = g.normalized_laplacian();
        assert_eq!(l.get(2, 2), 0.0);
    }

    #[test]
    fn normalized_spectrum_in_unit_interval_times_two() {
        // For K2: eigenvalues of L_norm are {0, 2}.
        let g = Graph::from_edges(2, &[(0, 1, 5.0)]).unwrap();
        let l = g.normalized_laplacian().to_dense();
        let (vals, _) = cirstag_linalg::jacobi_eigen(&l).unwrap();
        assert!((vals[0] - 0.0).abs() < 1e-12);
        assert!((vals[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degree_vector_matches_degree() {
        let g = path3();
        assert_eq!(g.degree_vector(), vec![1.0, 3.0, 2.0]);
    }
}
