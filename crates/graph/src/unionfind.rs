/// A disjoint-set (union–find) structure with path halving and union by rank.
///
/// Used by Kruskal spanning trees and the clustering stage of the low-stretch
/// tree heuristic.
///
/// # Example
///
/// ```
/// use cirstag_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(0, 2));
/// assert_eq!(uf.num_sets(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` when the structure holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently present.
    #[inline]
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`'s set (with path halving).
    ///
    /// # Panics
    ///
    /// Panics if `x` is out of bounds.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets containing `a` and `b`; returns `true` when they were
    /// previously distinct.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Returns `true` when `a` and `b` are in the same set.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_initialization() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        for i in 0..3 {
            assert_eq!(uf.find(i), i);
        }
    }

    #[test]
    fn union_reduces_set_count() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 2));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.connected(1, 3));
        assert!(!uf.connected(1, 4));
    }

    #[test]
    fn repeated_union_is_noop() {
        let mut uf = UnionFind::new(2);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn transitivity_over_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn empty_structure() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }
}
