//! Graphviz DOT export for visual inspection of graphs and manifolds.

use crate::Graph;
use std::fmt::Write as _;

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Graph name (`graph <name> { … }`).
    pub name: String,
    /// Optional per-node labels (defaults to the node index).
    pub node_labels: Option<Vec<String>>,
    /// Optional per-node fill colors (e.g. heat-mapped stability scores);
    /// any Graphviz color string.
    pub node_colors: Option<Vec<String>>,
    /// Emit edge weights as labels.
    pub edge_weights: bool,
}

/// Renders the graph in Graphviz DOT format.
///
/// Per-node vectors in `options` are index-aligned with the graph's nodes;
/// shorter vectors leave the remaining nodes unstyled.
///
/// # Example
///
/// ```
/// use cirstag_graph::{to_dot, DotOptions, Graph};
///
/// # fn main() -> Result<(), cirstag_graph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])?;
/// let dot = to_dot(&g, &DotOptions { edge_weights: true, ..Default::default() });
/// assert!(dot.contains("0 -- 1"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(g: &Graph, options: &DotOptions) -> String {
    let mut out = String::new();
    let name = if options.name.is_empty() {
        "g"
    } else {
        options.name.as_str()
    };
    let _ = writeln!(out, "graph {name} {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for v in 0..g.num_nodes() {
        let mut attrs = Vec::new();
        if let Some(labels) = &options.node_labels {
            if let Some(l) = labels.get(v) {
                attrs.push(format!("label=\"{}\"", l.replace('"', "\\\"")));
            }
        }
        if let Some(colors) = &options.node_colors {
            if let Some(c) = colors.get(v) {
                attrs.push(format!("style=filled fillcolor=\"{c}\""));
            }
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  {v};");
        } else {
            let _ = writeln!(out, "  {v} [{}];", attrs.join(" "));
        }
    }
    for e in g.edges() {
        if options.edge_weights {
            let _ = writeln!(out, "  {} -- {} [label=\"{:.3}\"];", e.u, e.v, e.weight);
        } else {
            let _ = writeln!(out, "  {} -- {};", e.u, e.v);
        }
    }
    out.push_str("}\n");
    out
}

/// Maps scores to a white→red Graphviz color ramp, for use as
/// [`DotOptions::node_colors`] when visualizing stability heat.
pub fn heat_colors(scores: &[f64]) -> Vec<String> {
    let max = scores.iter().fold(0.0f64, |a, &b| a.max(b)).max(1e-300);
    scores
        .iter()
        .map(|&s| {
            let t = (s / max).clamp(0.0, 1.0);
            // cirstag-lint: allow(cast-truncation) -- t is clamped to [0, 1], so the rounded product lies in 0..=255
            let g_b = ((1.0 - t) * 255.0).round() as u8;
            format!("#ff{g_b:02x}{g_b:02x}")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.5)]).unwrap()
    }

    #[test]
    fn basic_structure() {
        let dot = to_dot(&sample(), &DotOptions::default());
        assert!(dot.starts_with("graph g {"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_colors_and_weights() {
        let dot = to_dot(
            &sample(),
            &DotOptions {
                name: "manifold".to_string(),
                node_labels: Some(vec!["a\"quote".to_string()]),
                node_colors: Some(vec!["#ff0000".to_string(), "#00ff00".to_string()]),
                edge_weights: true,
            },
        );
        assert!(dot.contains("graph manifold {"));
        assert!(dot.contains("label=\"a\\\"quote\""));
        assert!(dot.contains("fillcolor=\"#00ff00\""));
        assert!(dot.contains("label=\"2.500\""));
    }

    #[test]
    fn heat_ramp_endpoints() {
        let colors = heat_colors(&[0.0, 1.0, 0.5]);
        assert_eq!(colors[0], "#ffffff"); // zero score = white
        assert_eq!(colors[1], "#ff0000"); // max score = red
        assert_eq!(colors.len(), 3);
    }

    #[test]
    fn heat_handles_all_zero() {
        let colors = heat_colors(&[0.0, 0.0]);
        assert!(colors.iter().all(|c| c == "#ffffff"));
    }
}
