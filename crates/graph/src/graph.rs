use crate::GraphError;

/// Index of a node within a [`Graph`].
pub type NodeId = usize;

/// Index of an edge within a [`Graph`]'s edge list.
pub type EdgeId = usize;

/// An undirected weighted edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// One endpoint (always the smaller id after normalization).
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Strictly positive, finite weight (conductance in the electrical view).
    pub weight: f64,
}

impl Edge {
    /// Returns the endpoint opposite `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    #[inline]
    pub fn other(&self, node: NodeId) -> NodeId {
        if node == self.u {
            self.v
        } else if node == self.v {
            self.u
        } else {
            // cirstag-lint: allow(no-panic-in-lib) -- documented panic contract of Edge::other for non-endpoint queries
            panic!(
                "node {node} is not an endpoint of edge ({}, {})",
                self.u, self.v
            )
        }
    }

    /// Resistive length of the edge, `1 / weight`.
    #[inline]
    pub fn resistance(&self) -> f64 {
        1.0 / self.weight
    }
}

/// An undirected weighted graph with parallel-edge merging.
///
/// Nodes are dense indices `0..num_nodes`. Edge weights are conductances:
/// larger weight means a stronger (electrically shorter) connection, matching
/// the Laplacian convention `L = Σ w_uv (e_u − e_v)(e_u − e_v)ᵀ` used
/// throughout the paper. Parallel edges are merged by summing weights.
///
/// # Example
///
/// ```
/// use cirstag_graph::Graph;
///
/// # fn main() -> Result<(), cirstag_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])?;
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.degree(1), 2.0);
/// assert_eq!(g.neighbors(1).count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// adjacency[u] = list of (neighbor, edge id)
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates a graph with `num_nodes` isolated nodes.
    pub fn new(num_nodes: usize) -> Self {
        Graph {
            num_nodes,
            edges: Vec::new(),
            adjacency: vec![Vec::new(); num_nodes],
        }
    }

    /// Builds a graph from `(u, v, weight)` tuples, merging parallel edges by
    /// summing their weights.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`Graph::add_edge`].
    pub fn from_edges(
        num_nodes: usize,
        edges: &[(NodeId, NodeId, f64)],
    ) -> Result<Self, GraphError> {
        let mut g = Graph::new(num_nodes);
        for &(u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Adds the undirected edge `(u, v)` with weight `w`, or adds `w` to the
    /// existing weight when the edge is already present. Returns the edge id.
    ///
    /// # Errors
    ///
    /// - [`GraphError::NodeOutOfBounds`] when an endpoint is invalid.
    /// - [`GraphError::SelfLoop`] when `u == v`.
    /// - [`GraphError::InvalidWeight`] when `w` is not finite and positive.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) -> Result<EdgeId, GraphError> {
        if u >= self.num_nodes {
            return Err(GraphError::NodeOutOfBounds {
                node: u,
                num_nodes: self.num_nodes,
            });
        }
        if v >= self.num_nodes {
            return Err(GraphError::NodeOutOfBounds {
                node: v,
                num_nodes: self.num_nodes,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if !(w.is_finite() && w > 0.0) {
            return Err(GraphError::InvalidWeight { weight: w });
        }
        // Merge with an existing parallel edge if present. Scan the shorter
        // adjacency list.
        let (scan, target) = if self.adjacency[u].len() <= self.adjacency[v].len() {
            (u, v)
        } else {
            (v, u)
        };
        if let Some(&(_, eid)) = self.adjacency[scan].iter().find(|&&(n, _)| n == target) {
            self.edges[eid].weight += w;
            return Ok(eid);
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        let eid = self.edges.len();
        self.edges.push(Edge {
            u: a,
            v: b,
            weight: w,
        });
        self.adjacency[u].push((v, eid));
        self.adjacency[v].push((u, eid));
        Ok(eid)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of (merged) undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Borrows the edge list.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Returns edge `eid`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EdgeOutOfBounds`] when `eid` is invalid.
    pub fn edge(&self, eid: EdgeId) -> Result<Edge, GraphError> {
        self.edges
            .get(eid)
            .copied()
            .ok_or(GraphError::EdgeOutOfBounds {
                edge: eid,
                num_edges: self.edges.len(),
            })
    }

    /// Weighted degree (sum of incident edge weights) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn degree(&self, node: NodeId) -> f64 {
        self.adjacency[node]
            .iter()
            .map(|&(_, eid)| self.edges[eid].weight)
            .sum()
    }

    /// Number of distinct neighbors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    #[inline]
    pub fn neighbor_count(&self, node: NodeId) -> usize {
        self.adjacency[node].len()
    }

    /// Iterates over `(neighbor, weight)` pairs of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.adjacency[node]
            .iter()
            .map(move |&(n, eid)| (n, self.edges[eid].weight))
    }

    /// Iterates over `(neighbor, edge id)` pairs of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of bounds.
    pub fn incident_edges(&self, node: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        self.adjacency[node].iter().copied()
    }

    /// Returns the weight of edge `(u, v)` when present.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.adjacency[u]
            .iter()
            .find(|&&(n, _)| n == v)
            .map(|&(_, eid)| self.edges[eid].weight)
    }

    /// Returns `true` when the graph has a single connected component
    /// (the empty graph and the 1-node graph count as connected).
    pub fn is_connected(&self) -> bool {
        if self.num_nodes <= 1 {
            return true;
        }
        let comps = crate::traversal::connected_components(self);
        comps.iter().all(|&c| c == 0)
    }

    /// Average number of neighbors per node (`2|E| / |V|`); `0.0` for an
    /// empty graph.
    pub fn average_degree(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            2.0 * self.num_edges() as f64 / self.num_nodes as f64
        }
    }

    /// Builds a new graph containing only the edges selected by `keep`.
    ///
    /// Node identities are preserved; edge ids are renumbered.
    pub fn filter_edges<F>(&self, mut keep: F) -> Graph
    where
        F: FnMut(EdgeId, &Edge) -> bool,
    {
        let mut g = Graph::new(self.num_nodes);
        for (eid, e) in self.edges.iter().enumerate() {
            if keep(eid, e) {
                g.add_edge(e.u, e.v, e.weight)
                    .expect("edges of a valid graph remain valid"); // cirstag-lint: allow(no-panic-in-lib) -- edges re-inserted from an existing valid graph satisfy the add_edge invariants
            }
        }
        g
    }

    /// Returns a copy of the graph with every edge weight mapped through `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces a non-positive or non-finite weight.
    pub fn map_weights<F>(&self, mut f: F) -> Graph
    where
        F: FnMut(EdgeId, &Edge) -> f64,
    {
        let mut g = Graph::new(self.num_nodes);
        for (eid, e) in self.edges.iter().enumerate() {
            let w = f(eid, e);
            g.add_edge(e.u, e.v, w)
                .expect("mapped weight must be valid"); // cirstag-lint: allow(no-panic-in-lib) -- documented panic contract of map_weights for invalid mapped weights
        }
        g
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let g = Graph::from_edges(4, &[(0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0)]).unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(1), 5.0);
        assert_eq!(g.edge_weight(1, 2), Some(3.0));
        assert_eq!(g.edge_weight(0, 3), None);
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = Graph::new(2);
        let e1 = g.add_edge(0, 1, 1.0).unwrap();
        let e2 = g.add_edge(1, 0, 2.5).unwrap();
        assert_eq!(e1, e2);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(3.5));
    }

    #[test]
    fn rejects_bad_edges() {
        let mut g = Graph::new(2);
        assert!(matches!(
            g.add_edge(0, 2, 1.0),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 0, 1.0),
            Err(GraphError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, 0.0),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            g.add_edge(0, 1, -1.0),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge {
            u: 2,
            v: 5,
            weight: 1.0,
        };
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
        assert_eq!(e.resistance(), 1.0);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge {
            u: 0,
            v: 1,
            weight: 1.0,
        };
        e.other(7);
    }

    #[test]
    fn connectivity() {
        let connected = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(connected.is_connected());
        let disconnected = Graph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        assert!(!disconnected.is_connected());
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
    }

    #[test]
    fn filter_edges_keeps_selected() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 5.0)]).unwrap();
        let h = g.filter_edges(|_, e| e.weight > 2.0);
        assert_eq!(h.num_edges(), 1);
        assert_eq!(h.edge_weight(1, 2), Some(5.0));
        assert_eq!(h.num_nodes(), 3);
    }

    #[test]
    fn map_weights_transforms() {
        let g = Graph::from_edges(2, &[(0, 1, 2.0)]).unwrap();
        let h = g.map_weights(|_, e| e.weight * 10.0);
        assert_eq!(h.edge_weight(0, 1), Some(20.0));
    }

    #[test]
    fn neighbors_iteration() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (0, 2, 2.0)]).unwrap();
        let mut ns: Vec<_> = g.neighbors(0).collect();
        ns.sort_by_key(|&(n, _)| n);
        assert_eq!(ns, vec![(1, 1.0), (2, 2.0)]);
    }

    #[test]
    fn average_degree_and_total_weight() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        assert!((g.average_degree() - 1.5).abs() < 1e-15);
        assert_eq!(g.total_weight(), 3.0);
        assert_eq!(Graph::new(0).average_degree(), 0.0);
    }

    #[test]
    fn edge_lookup_by_id() {
        let g = Graph::from_edges(2, &[(1, 0, 3.0)]).unwrap();
        let e = g.edge(0).unwrap();
        assert_eq!((e.u, e.v, e.weight), (0, 1, 3.0)); // normalized u < v
        assert!(g.edge(1).is_err());
    }
}
