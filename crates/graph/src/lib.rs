//! Weighted undirected graphs, Laplacians, traversals and spanning trees.
//!
//! This crate provides the graph substrate shared by the CirSTAG manifold
//! machinery: a compact adjacency-list [`Graph`] type, combinatorial and
//! normalized Laplacian assembly, BFS/Dijkstra traversals, connected
//! components, a union–find, minimum/maximum spanning trees, a practical
//! low-stretch spanning-tree heuristic, and an LCA-based tree-path oracle
//! used for stretch and cycle-resistance queries.
//!
//! # Example
//!
//! ```
//! use cirstag_graph::Graph;
//!
//! # fn main() -> Result<(), cirstag_graph::GraphError> {
//! let mut g = Graph::new(3);
//! g.add_edge(0, 1, 1.0)?;
//! g.add_edge(1, 2, 2.0)?;
//! assert!(g.is_connected());
//! let lap = g.laplacian();
//! assert_eq!(lap.get(1, 1), 3.0); // degree of node 1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dot;
mod error;
mod graph;
mod laplacian;
mod spanning;
mod traversal;
mod tree;
mod unionfind;

pub use dot::{heat_colors, to_dot, DotOptions};
pub use error::GraphError;
pub use graph::{Edge, EdgeId, Graph, NodeId};
pub use spanning::{
    average_stretch, low_stretch_tree, maximum_spanning_tree, minimum_spanning_tree,
    prim_maximum_spanning_tree, SpanningTree,
};
pub use traversal::{bfs_order, connected_components, dijkstra, ShortestPaths};
pub use tree::TreePathOracle;
pub use unionfind::UnionFind;
