//! Minimum, maximum and low-stretch spanning trees.

use crate::{EdgeId, Graph, GraphError, UnionFind};

/// A spanning tree (or forest, for disconnected inputs) of a [`Graph`].
///
/// Stores which original edge ids were selected, plus the tree itself as a
/// standalone [`Graph`] sharing the original node numbering.
#[derive(Debug, Clone)]
pub struct SpanningTree {
    /// Edge ids (into the original graph) that form the tree.
    edge_ids: Vec<EdgeId>,
    /// Membership mask indexed by original edge id.
    in_tree: Vec<bool>,
    /// The tree as a graph over the same node set.
    tree: Graph,
}

impl SpanningTree {
    fn from_edge_ids(g: &Graph, edge_ids: Vec<EdgeId>) -> Self {
        let mut in_tree = vec![false; g.num_edges()];
        let mut tree = Graph::new(g.num_nodes());
        for &eid in &edge_ids {
            in_tree[eid] = true;
            let e = g.edges()[eid];
            tree.add_edge(e.u, e.v, e.weight)
                .expect("tree edges come from a valid graph"); // cirstag-lint: allow(no-panic-in-lib) -- tree edges are copied from a valid graph, so add_edge cannot fail
        }
        SpanningTree {
            edge_ids,
            in_tree,
            tree,
        }
    }

    /// Edge ids of the original graph included in the tree.
    #[inline]
    pub fn edge_ids(&self) -> &[EdgeId] {
        &self.edge_ids
    }

    /// Returns `true` when original edge `eid` is part of the tree.
    ///
    /// # Panics
    ///
    /// Panics if `eid` is out of bounds for the original graph.
    #[inline]
    pub fn contains_edge(&self, eid: EdgeId) -> bool {
        self.in_tree[eid]
    }

    /// The tree as a graph over the original node set.
    #[inline]
    pub fn as_graph(&self) -> &Graph {
        &self.tree
    }

    /// Number of tree edges (`|V| − #components` of the original graph).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edge_ids.len()
    }

    /// Total weight of the tree edges.
    pub fn total_weight(&self) -> f64 {
        self.tree.total_weight()
    }
}

fn kruskal(g: &Graph, order: &[EdgeId]) -> SpanningTree {
    let mut uf = UnionFind::new(g.num_nodes());
    let mut chosen = Vec::with_capacity(g.num_nodes().saturating_sub(1));
    for &eid in order {
        let e = g.edges()[eid];
        if uf.union(e.u, e.v) {
            chosen.push(eid);
            if chosen.len() + 1 == g.num_nodes() {
                break;
            }
        }
    }
    SpanningTree::from_edge_ids(g, chosen)
}

/// Kruskal minimum spanning tree over *resistive* lengths `1 / weight`,
/// i.e. the tree that keeps the heaviest (highest-conductance) edges.
///
/// For a disconnected graph, returns a spanning forest.
pub fn maximum_spanning_tree(g: &Graph) -> SpanningTree {
    let mut order: Vec<EdgeId> = (0..g.num_edges()).collect();
    order.sort_by(|&a, &b| g.edges()[b].weight.total_cmp(&g.edges()[a].weight));
    kruskal(g, &order)
}

/// Kruskal minimum spanning tree over edge *weights* (smallest total weight).
///
/// For a disconnected graph, returns a spanning forest.
pub fn minimum_spanning_tree(g: &Graph) -> SpanningTree {
    let mut order: Vec<EdgeId> = (0..g.num_edges()).collect();
    order.sort_by(|&a, &b| g.edges()[a].weight.total_cmp(&g.edges()[b].weight));
    kruskal(g, &order)
}

/// Prim's algorithm growing a maximum-weight spanning tree from `root`
/// (lazy-deletion binary heap, `O(|E| log |E|)`).
///
/// Produces a tree with the same total weight as [`maximum_spanning_tree`]
/// (spanning trees of maximal weight are unique for distinct weights) but
/// different edge *ids* may be chosen under ties; useful when a specific
/// root/growth order matters.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] for an invalid root and
/// [`GraphError::Disconnected`] when the graph has several components.
pub fn prim_maximum_spanning_tree(
    g: &Graph,
    root: crate::NodeId,
) -> Result<SpanningTree, GraphError> {
    if root >= g.num_nodes() {
        return Err(GraphError::NodeOutOfBounds {
            node: root,
            num_nodes: g.num_nodes(),
        });
    }
    let n = g.num_nodes();
    let mut in_tree = vec![false; n];
    let mut chosen = Vec::with_capacity(n.saturating_sub(1));
    let mut heap: std::collections::BinaryHeap<(ordered::OrderedWeight, EdgeId)> =
        std::collections::BinaryHeap::new();
    in_tree[root] = true;
    for (_, eid) in g.incident_edges(root) {
        heap.push((ordered::OrderedWeight(g.edges()[eid].weight), eid));
    }
    while let Some((_, eid)) = heap.pop() {
        let e = g.edges()[eid];
        let next = if !in_tree[e.u] {
            e.u
        } else if !in_tree[e.v] {
            e.v
        } else {
            continue; // lazy deletion
        };
        in_tree[next] = true;
        chosen.push(eid);
        for (_, ne) in g.incident_edges(next) {
            let edge = g.edges()[ne];
            if !in_tree[edge.u] || !in_tree[edge.v] {
                heap.push((ordered::OrderedWeight(edge.weight), ne));
            }
        }
    }
    if chosen.len() + 1 != n.max(1) {
        return Err(GraphError::Disconnected);
    }
    Ok(SpanningTree::from_edge_ids(g, chosen))
}

mod ordered {
    /// Total order over finite weights for use in a max-heap.
    #[derive(PartialEq)]
    pub(super) struct OrderedWeight(pub f64);
    impl Eq for OrderedWeight {}
    impl PartialOrd for OrderedWeight {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for OrderedWeight {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}

/// A practical low-stretch spanning tree heuristic.
///
/// Classic AKPW-style constructions repeatedly contract low-diameter clusters.
/// We approximate that behaviour with randomized Kruskal over perturbed
/// resistive lengths: each edge's resistance `1/w` is multiplied by a
/// deterministic pseudo-random factor in `[1, 2)` derived from `seed`, and a
/// maximum-weight (minimum-resistance) tree is extracted. The perturbation
/// breaks ties and avoids the pathological "all shortest paths through one
/// hub" trees that plain greedy Kruskal can produce on regular graphs, which
/// is what drives average stretch down in practice.
///
/// Determinism: the same `(graph, seed)` pair always yields the same tree.
///
/// # Errors
///
/// Returns [`GraphError::Disconnected`] when `g` has more than one component
/// (a *spanning tree* is requested; use [`minimum_spanning_tree`] for
/// forests).
pub fn low_stretch_tree(g: &Graph, seed: u64) -> Result<SpanningTree, GraphError> {
    if !g.is_connected() {
        return Err(GraphError::Disconnected);
    }
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let x = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        1.0 + (x >> 11) as f64 / (1u64 << 53) as f64 // in [1, 2)
    };
    let perturbed: Vec<f64> = g.edges().iter().map(|e| e.resistance() * next()).collect();
    let mut order: Vec<EdgeId> = (0..g.num_edges()).collect();
    order.sort_by(|&a, &b| perturbed[a].total_cmp(&perturbed[b]));
    Ok(kruskal(g, &order))
}

/// Computes the average *stretch* of the non-tree edges of `g` with respect
/// to `tree`: for each off-tree edge `(u, v)` with resistance `r`, the
/// stretch is `(tree-path resistance between u and v) / r`. Returns `0.0`
/// when every edge is in the tree.
///
/// # Errors
///
/// Returns [`GraphError::NotATree`] when `tree` does not span `g`.
pub fn average_stretch(g: &Graph, tree: &SpanningTree) -> Result<f64, GraphError> {
    let oracle = crate::TreePathOracle::new(tree.as_graph())?;
    let mut total = 0.0;
    let mut count = 0usize;
    for (eid, e) in g.edges().iter().enumerate() {
        if tree.contains_edge(eid) {
            continue;
        }
        let tree_res = oracle.path_resistance(e.u, e.v)?;
        total += tree_res / e.resistance();
        count += 1;
    }
    Ok(if count == 0 {
        0.0
    } else {
        total / count as f64
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn diamond() -> Graph {
        // 0-1 (w=1), 1-3 (w=1), 0-2 (w=10), 2-3 (w=10), 0-3 (w=0.1)
        Graph::from_edges(
            4,
            &[
                (0, 1, 1.0),
                (1, 3, 1.0),
                (0, 2, 10.0),
                (2, 3, 10.0),
                (0, 3, 0.1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn max_tree_keeps_heavy_edges() {
        let g = diamond();
        let t = maximum_spanning_tree(&g);
        assert_eq!(t.num_edges(), 3);
        assert!(t.as_graph().edge_weight(0, 2).is_some());
        assert!(t.as_graph().edge_weight(2, 3).is_some());
        assert!(t.as_graph().edge_weight(0, 3).is_none());
        assert!(t.as_graph().is_connected());
    }

    #[test]
    fn min_tree_total_weight_is_minimal_on_triangle() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap();
        let t = minimum_spanning_tree(&g);
        assert_eq!(t.total_weight(), 3.0); // edges 1 + 2
    }

    #[test]
    fn spanning_forest_on_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let t = maximum_spanning_tree(&g);
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    fn contains_edge_mask_consistent() {
        let g = diamond();
        let t = maximum_spanning_tree(&g);
        let count = (0..g.num_edges()).filter(|&e| t.contains_edge(e)).count();
        assert_eq!(count, t.num_edges());
    }

    #[test]
    fn prim_matches_kruskal_total_weight() {
        let g = diamond();
        let kruskal_t = maximum_spanning_tree(&g);
        for root in 0..4 {
            let prim_t = prim_maximum_spanning_tree(&g, root).unwrap();
            assert_eq!(prim_t.num_edges(), 3);
            assert!((prim_t.total_weight() - kruskal_t.total_weight()).abs() < 1e-12);
        }
    }

    #[test]
    fn prim_validation() {
        let g = diamond();
        assert!(matches!(
            prim_maximum_spanning_tree(&g, 99),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        let disc = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            prim_maximum_spanning_tree(&disc, 0),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn low_stretch_tree_is_deterministic_and_spanning() {
        let g = diamond();
        let t1 = low_stretch_tree(&g, 42).unwrap();
        let t2 = low_stretch_tree(&g, 42).unwrap();
        assert_eq!(t1.edge_ids(), t2.edge_ids());
        assert_eq!(t1.num_edges(), 3);
        assert!(t1.as_graph().is_connected());
    }

    #[test]
    fn low_stretch_tree_rejects_disconnected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            low_stretch_tree(&g, 0),
            Err(GraphError::Disconnected)
        ));
    }

    #[test]
    fn average_stretch_on_cycle() {
        // Unweighted C4: the off-tree edge has tree-path resistance 3 and
        // own resistance 1, so stretch = 3.
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (3, 0, 1.0)]).unwrap();
        let t = maximum_spanning_tree(&g);
        let s = average_stretch(&g, &t).unwrap();
        assert!((s - 3.0).abs() < 1e-12);
    }

    #[test]
    fn low_stretch_no_worse_than_pathological_on_grid() {
        // 4x4 grid; the heuristic should produce finite average stretch
        // comparable to the plain maximum spanning tree.
        let n = 4;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let id = i * n + j;
                if j + 1 < n {
                    edges.push((id, id + 1, 1.0));
                }
                if i + 1 < n {
                    edges.push((id, id + n, 1.0));
                }
            }
        }
        let g = Graph::from_edges(n * n, &edges).unwrap();
        let lsst = low_stretch_tree(&g, 7).unwrap();
        let s = average_stretch(&g, &lsst).unwrap();
        assert!(s.is_finite() && s >= 1.0);
        assert!(s < 20.0, "stretch {s} unexpectedly large for a 4x4 grid");
    }
}
