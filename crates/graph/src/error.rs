use std::error::Error;
use std::fmt;

/// Error type for graph construction and queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// A node index exceeded the number of nodes in the graph.
    NodeOutOfBounds {
        /// The offending node index.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// A self-loop `(u, u)` was supplied where it is not allowed.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: usize,
    },
    /// An edge weight was not strictly positive and finite.
    InvalidWeight {
        /// The rejected weight value.
        weight: f64,
    },
    /// An operation required a connected graph but the graph was disconnected.
    Disconnected,
    /// An operation required a tree (|E| = |V| − 1, connected) but got
    /// something else.
    NotATree,
    /// An edge index exceeded the number of edges in the graph.
    EdgeOutOfBounds {
        /// The offending edge index.
        edge: usize,
        /// Number of edges in the graph.
        num_edges: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of bounds for graph with {num_nodes} nodes"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} is not allowed"),
            GraphError::InvalidWeight { weight } => {
                write!(f, "edge weight {weight} must be positive and finite")
            }
            GraphError::Disconnected => write!(f, "operation requires a connected graph"),
            GraphError::NotATree => write!(f, "operation requires a spanning tree"),
            GraphError::EdgeOutOfBounds { edge, num_edges } => {
                write!(
                    f,
                    "edge {edge} out of bounds for graph with {num_edges} edges"
                )
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offender() {
        let e = GraphError::NodeOutOfBounds {
            node: 9,
            num_nodes: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
