//! Breadth-first search, connected components and Dijkstra shortest paths.

use crate::{Graph, GraphError, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

/// Returns the nodes reachable from `start` in BFS order.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] when `start` is invalid.
pub fn bfs_order(g: &Graph, start: NodeId) -> Result<Vec<NodeId>, GraphError> {
    if start >= g.num_nodes() {
        return Err(GraphError::NodeOutOfBounds {
            node: start,
            num_nodes: g.num_nodes(),
        });
    }
    let mut visited = vec![false; g.num_nodes()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for (v, _) in g.neighbors(u) {
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
    }
    Ok(order)
}

/// Labels every node with the index of its connected component.
///
/// Components are numbered `0, 1, …` in order of their smallest node id, so
/// a connected graph yields the all-zeros labelling.
pub fn connected_components(g: &Graph) -> Vec<usize> {
    let n = g.num_nodes();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut queue = VecDeque::new();
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        label[s] = next;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for (v, _) in g.neighbors(u) {
                if label[v] == usize::MAX {
                    label[v] = next;
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// Result of a single-source Dijkstra run over *resistive* edge lengths
/// (`1 / weight`), so that heavy (high-conductance) edges are short.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    /// Source node of the run.
    pub source: NodeId,
    /// `dist[v]` is the resistive shortest-path distance from the source;
    /// `f64::INFINITY` for unreachable nodes.
    pub dist: Vec<f64>,
    /// `parent[v]` is the predecessor of `v` on a shortest path, or `None`
    /// for the source and unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// Reconstructs the path from the source to `target` (inclusive), or
    /// `None` when unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if target >= self.dist.len() || self.dist[target].is_infinite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while let Some(p) = self.parent[cur] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are always finite here.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Single-source shortest paths with resistive edge lengths `1 / weight`.
///
/// # Errors
///
/// Returns [`GraphError::NodeOutOfBounds`] when `source` is invalid.
pub fn dijkstra(g: &Graph, source: NodeId) -> Result<ShortestPaths, GraphError> {
    if source >= g.num_nodes() {
        return Err(GraphError::NodeOutOfBounds {
            node: source,
            num_nodes: g.num_nodes(),
        });
    }
    let n = g.num_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![None; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[source] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapEntry { dist: d, node: u }) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for (v, w) in g.neighbors(u) {
            let nd = d + 1.0 / w;
            if nd < dist[v] {
                dist[v] = nd;
                parent[v] = Some(u);
                heap.push(HeapEntry { dist: nd, node: v });
            }
        }
    }
    Ok(ShortestPaths {
        source,
        dist,
        parent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_visits_component() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]).unwrap();
        let order = bfs_order(&g, 0).unwrap();
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], 0);
        assert!(bfs_order(&g, 9).is_err());
    }

    #[test]
    fn components_labelled_in_order() {
        let g = Graph::from_edges(5, &[(0, 1, 1.0), (3, 4, 1.0)]).unwrap();
        assert_eq!(connected_components(&g), vec![0, 0, 1, 2, 2]);
    }

    #[test]
    fn dijkstra_on_weighted_path() {
        // Weights are conductances: resistive lengths are 1, 1/2, 1/4.
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 4.0)]).unwrap();
        let sp = dijkstra(&g, 0).unwrap();
        assert!((sp.dist[3] - 1.75).abs() < 1e-12);
        assert_eq!(sp.path_to(3), Some(vec![0, 1, 2, 3]));
    }

    #[test]
    fn dijkstra_prefers_heavy_shortcut() {
        // 0-1-2 with light edges vs a heavy direct edge 0-2.
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 10.0)]).unwrap();
        let sp = dijkstra(&g, 0).unwrap();
        assert!((sp.dist[2] - 0.1).abs() < 1e-12);
        assert_eq!(sp.path_to(2), Some(vec![0, 2]));
    }

    #[test]
    fn dijkstra_unreachable_is_infinite() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        let sp = dijkstra(&g, 0).unwrap();
        assert!(sp.dist[2].is_infinite());
        assert_eq!(sp.path_to(2), None);
    }

    #[test]
    fn dijkstra_source_validation() {
        let g = Graph::new(2);
        assert!(dijkstra(&g, 5).is_err());
    }
}
