//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line. Responses carry the
//! request's `id` and may arrive out of order (the daemon answers `health`
//! and `stats` inline while `analyze`/`sweep` queue behind the admission
//! gate), so clients match on `id`, not position.
//!
//! Request shape:
//!
//! ```json
//! {"id": 7, "verb": "analyze", "netlist": "<netlist text>",
//!  "epochs": 40, "deadline_ms": 2000, "top": 0.1, "best_effort": true}
//! ```
//!
//! Response shape (`code` follows HTTP conventions):
//!
//! ```json
//! {"id": 7, "code": 200, "status": "ok", "body": { ... }}
//! {"id": 8, "code": 503, "status": "shed", "error": "admission queue full"}
//! ```

use crate::ServeError;
use serde::{Serialize, Value};

/// HTTP-style status code: request served.
pub const CODE_OK: u16 = 200;
/// HTTP-style status code: malformed or unserveable request.
pub const CODE_BAD_REQUEST: u16 = 400;
/// HTTP-style status code: the worker handling the request panicked or the
/// analysis failed internally.
pub const CODE_INTERNAL: u16 = 500;
/// HTTP-style status code: load shed — the admission queue was past its
/// watermark (or the daemon is shutting down) and the request was rejected
/// without being processed.
pub const CODE_SHED: u16 = 503;
/// HTTP-style status code: the request's deadline expired before or during
/// the analysis.
pub const CODE_DEADLINE: u16 = 504;

/// The operation a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verb {
    /// Full stability analysis of the submitted netlist.
    Analyze,
    /// DMD subspace-size sweep over the submitted netlist.
    Sweep,
    /// Incremental ECO re-analysis: a netlist-delta (`cirstag-delta/v1`
    /// JSON in the `delta` field) applied to the submitted base netlist,
    /// scored partition-by-partition so untouched regions replay from the
    /// shared artifact cache.
    Delta,
    /// Liveness probe; answered inline, never queued.
    Health,
    /// Counter snapshot; answered inline, never queued.
    Stats,
    /// Graceful shutdown: drain the queue, stop accepting, exit.
    Shutdown,
}

impl Verb {
    /// Wire name of the verb.
    pub fn name(self) -> &'static str {
        match self {
            Verb::Analyze => "analyze",
            Verb::Sweep => "sweep",
            Verb::Delta => "delta",
            Verb::Health => "health",
            Verb::Stats => "stats",
            Verb::Shutdown => "shutdown",
        }
    }

    fn parse(s: &str) -> Option<Verb> {
        match s {
            "analyze" => Some(Verb::Analyze),
            "sweep" => Some(Verb::Sweep),
            "delta" => Some(Verb::Delta),
            "health" => Some(Verb::Health),
            "stats" => Some(Verb::Stats),
            "shutdown" => Some(Verb::Shutdown),
            _ => None,
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The requested operation.
    pub verb: Verb,
    /// Netlist text (required for `analyze`/`sweep`).
    pub netlist: Option<String>,
    /// GNN training epochs for design preparation.
    pub epochs: usize,
    /// DMD subspace sizes for `sweep`.
    pub dmd_s: Vec<usize>,
    /// Wall-clock deadline for the whole request, in milliseconds. `None`
    /// falls back to the daemon's default deadline.
    pub deadline_ms: Option<u64>,
    /// Fraction of nodes reported as most unstable.
    pub top: f64,
    /// Per-request failure-policy override; `None` uses the daemon's base
    /// policy. The overload gate can still force best-effort on top.
    pub best_effort: Option<bool>,
    /// Netlist-delta ops document (`cirstag-delta/v1` JSON, required for
    /// `delta`), applied against the base `netlist`.
    pub delta: Option<String>,
    /// Partition count for `delta` requests; `None` uses the daemon default.
    pub partitions: Option<usize>,
}

impl Request {
    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on malformed JSON, an unknown verb, or an
    /// out-of-range field.
    pub fn parse(line: &str) -> Result<Request, ServeError> {
        let v = serde_json::parse_value(line)
            .map_err(|e| ServeError::bad_request(format!("malformed JSON: {e}")))?;
        if !matches!(v, Value::Object(_)) {
            return Err(ServeError::bad_request("request must be a JSON object"));
        }
        let id: u64 = v
            .field_or("id", 0)
            .map_err(|e| ServeError::bad_request(e.reason))?;
        let verb_name: String = v
            .field("verb")
            .map_err(|e| ServeError::bad_request(e.reason))?;
        let verb = Verb::parse(&verb_name)
            .ok_or_else(|| ServeError::bad_request(format!("unknown verb {verb_name:?}")))?;
        let netlist: Option<String> = v
            .field_or("netlist", None)
            .map_err(|e| ServeError::bad_request(e.reason))?;
        let epochs: usize = v
            .field_or("epochs", 40)
            .map_err(|e| ServeError::bad_request(e.reason))?;
        let dmd_s: Vec<usize> = v
            .field_or("dmd_s", vec![4, 8])
            .map_err(|e| ServeError::bad_request(e.reason))?;
        if dmd_s.is_empty() || dmd_s.contains(&0) {
            return Err(ServeError::bad_request(
                "dmd_s values must be positive integers",
            ));
        }
        let deadline_ms: Option<u64> = v
            .field_or("deadline_ms", None)
            .map_err(|e| ServeError::bad_request(e.reason))?;
        let top: f64 = v
            .field_or("top", 0.10)
            .map_err(|e| ServeError::bad_request(e.reason))?;
        if !(top > 0.0 && top <= 1.0) {
            return Err(ServeError::bad_request("top must lie in (0, 1]"));
        }
        let best_effort: Option<bool> = v
            .field_or("best_effort", None)
            .map_err(|e| ServeError::bad_request(e.reason))?;
        let delta: Option<String> = v
            .field_or("delta", None)
            .map_err(|e| ServeError::bad_request(e.reason))?;
        let partitions: Option<usize> = v
            .field_or("partitions", None)
            .map_err(|e| ServeError::bad_request(e.reason))?;
        if matches!(verb, Verb::Analyze | Verb::Sweep | Verb::Delta) && netlist.is_none() {
            return Err(ServeError::bad_request(format!(
                "verb {verb_name:?} requires a netlist field"
            )));
        }
        if verb == Verb::Delta && delta.is_none() {
            return Err(ServeError::bad_request(
                "verb \"delta\" requires a delta field (cirstag-delta/v1 JSON)",
            ));
        }
        if partitions == Some(0) {
            return Err(ServeError::bad_request("partitions must be at least 1"));
        }
        Ok(Request {
            id,
            verb,
            netlist,
            epochs,
            dmd_s,
            deadline_ms,
            top,
            best_effort,
            delta,
            partitions,
        })
    }

    /// Serializes the request to one wire line (no trailing newline).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when a float field is non-finite.
    pub fn to_line(&self) -> Result<String, ServeError> {
        let mut fields = vec![
            ("id".to_string(), Value::UInt(self.id)),
            ("verb".to_string(), Value::Str(self.verb.name().to_string())),
            ("epochs".to_string(), self.epochs.to_value()),
            ("dmd_s".to_string(), self.dmd_s.to_value()),
            ("top".to_string(), Value::Float(self.top)),
        ];
        if let Some(n) = &self.netlist {
            fields.push(("netlist".to_string(), Value::Str(n.clone())));
        }
        if let Some(d) = self.deadline_ms {
            fields.push(("deadline_ms".to_string(), Value::UInt(d)));
        }
        if let Some(b) = self.best_effort {
            fields.push(("best_effort".to_string(), Value::Bool(b)));
        }
        if let Some(d) = &self.delta {
            fields.push(("delta".to_string(), Value::Str(d.clone())));
        }
        if let Some(p) = self.partitions {
            fields.push(("partitions".to_string(), p.to_value()));
        }
        value_to_line(Value::Object(fields))
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id (`0` when the request had no parsable id).
    pub id: u64,
    /// HTTP-style status code (one of the `CODE_*` constants).
    pub code: u16,
    /// Short machine-readable status: `"ok"`, `"shed"`, `"timeout"`,
    /// `"error"`.
    pub status: String,
    /// Human-readable error description for non-`ok` responses.
    pub error: Option<String>,
    /// Verb-specific payload for `ok` responses.
    pub body: Option<Value>,
}

impl Response {
    /// A `200 ok` response with `body`.
    pub fn ok(id: u64, body: Value) -> Response {
        Response {
            id,
            code: CODE_OK,
            status: "ok".to_string(),
            error: None,
            body: Some(body),
        }
    }

    /// A typed failure response; `status` is derived from `code`.
    pub fn error(id: u64, code: u16, message: impl Into<String>) -> Response {
        let status = match code {
            CODE_SHED => "shed",
            CODE_DEADLINE => "timeout",
            _ => "error",
        };
        Response {
            id,
            code,
            status: status.to_string(),
            error: Some(message.into()),
            body: None,
        }
    }

    /// Serializes the response to one wire line (no trailing newline).
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] when the body contains a non-finite float.
    pub fn to_line(&self) -> Result<String, ServeError> {
        let mut fields = vec![
            ("id".to_string(), Value::UInt(self.id)),
            ("code".to_string(), self.code.to_value()),
            ("status".to_string(), Value::Str(self.status.clone())),
        ];
        if let Some(e) = &self.error {
            fields.push(("error".to_string(), Value::Str(e.clone())));
        }
        if let Some(b) = &self.body {
            fields.push(("body".to_string(), b.clone()));
        }
        value_to_line(Value::Object(fields))
    }

    /// Parses one response line.
    ///
    /// # Errors
    ///
    /// [`ServeError::BadRequest`] on malformed JSON or a missing field.
    pub fn parse(line: &str) -> Result<Response, ServeError> {
        let v = serde_json::parse_value(line)
            .map_err(|e| ServeError::bad_request(format!("malformed response JSON: {e}")))?;
        Ok(Response {
            id: v
                .field_or("id", 0)
                .map_err(|e| ServeError::bad_request(e.reason))?,
            code: v
                .field("code")
                .map_err(|e| ServeError::bad_request(e.reason))?,
            status: v
                .field("status")
                .map_err(|e| ServeError::bad_request(e.reason))?,
            error: v
                .field_or("error", None)
                .map_err(|e| ServeError::bad_request(e.reason))?,
            body: v.get("body").cloned(),
        })
    }
}

/// Serializes a raw [`Value`] tree as a single compact line.
fn value_to_line(v: Value) -> Result<String, ServeError> {
    // The vendored serde has no blanket `Serialize for Value`; wrap it.
    struct Raw(Value);
    impl Serialize for Raw {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
    serde_json::to_string(&Raw(v)).map_err(|e| ServeError::bad_request(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let r = Request {
            id: 42,
            verb: Verb::Analyze,
            netlist: Some("design t\ncell inv a y\n".to_string()),
            epochs: 25,
            dmd_s: vec![4, 8],
            deadline_ms: Some(1500),
            top: 0.2,
            best_effort: Some(true),
            delta: None,
            partitions: None,
        };
        let line = r.to_line().unwrap();
        assert!(!line.contains('\n'), "netlist newlines must stay escaped");
        let back = Request::parse(&line).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn delta_request_roundtrip_and_validation() {
        let r = Request {
            id: 9,
            verb: Verb::Delta,
            netlist: Some("design t\ncell inv a y\n".to_string()),
            epochs: 25,
            dmd_s: vec![4, 8],
            deadline_ms: None,
            top: 0.10,
            best_effort: None,
            delta: Some(r#"{"schema":"cirstag-delta/v1","ops":[]}"#.to_string()),
            partitions: Some(4),
        };
        let back = Request::parse(&r.to_line().unwrap()).unwrap();
        assert_eq!(back, r);
        assert!(
            Request::parse(r#"{"id": 1, "verb": "delta", "netlist": "x"}"#).is_err(),
            "delta requires a delta field"
        );
        assert!(
            Request::parse(r#"{"id": 1, "verb": "delta", "delta": "{}"}"#).is_err(),
            "delta requires a base netlist"
        );
        assert!(
            Request::parse(
                r#"{"id": 1, "verb": "delta", "netlist": "x", "delta": "{}", "partitions": 0}"#
            )
            .is_err(),
            "zero partitions is rejected at parse time"
        );
    }

    #[test]
    fn request_defaults_fill_in() {
        let r = Request::parse(r#"{"id": 1, "verb": "health"}"#).unwrap();
        assert_eq!(r.verb, Verb::Health);
        assert_eq!(r.epochs, 40);
        assert!(r.deadline_ms.is_none());
        assert!(r.best_effort.is_none());
    }

    #[test]
    fn bad_requests_are_typed() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse(r#"{"id": 1}"#).is_err(), "verb required");
        assert!(Request::parse(r#"{"id": 1, "verb": "frobnicate"}"#).is_err());
        assert!(
            Request::parse(r#"{"id": 1, "verb": "analyze"}"#).is_err(),
            "analyze requires a netlist"
        );
        assert!(
            Request::parse(r#"{"id": 1, "verb": "analyze", "netlist": "x", "top": 7}"#).is_err()
        );
        assert!(
            Request::parse(r#"{"id": 1, "verb": "sweep", "netlist": "x", "dmd_s": [0]}"#).is_err()
        );
    }

    #[test]
    fn response_roundtrip_and_status_mapping() {
        let ok = Response::ok(3, Value::Object(vec![("n".to_string(), Value::UInt(9))]));
        let back = Response::parse(&ok.to_line().unwrap()).unwrap();
        assert_eq!(back.code, CODE_OK);
        assert_eq!(back.status, "ok");
        assert!(back.body.is_some());

        let shed = Response::error(4, CODE_SHED, "queue full");
        assert_eq!(shed.status, "shed");
        let timeout = Response::error(5, CODE_DEADLINE, "deadline");
        assert_eq!(timeout.status, "timeout");
        let internal = Response::error(6, CODE_INTERNAL, "panic");
        assert_eq!(internal.status, "error");
        let back = Response::parse(&shed.to_line().unwrap()).unwrap();
        assert_eq!(back.error.as_deref(), Some("queue full"));
    }
}
