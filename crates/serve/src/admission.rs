//! Bounded admission queue, overload hysteresis, and daemon counters.
//!
//! Robustness posture (DESIGN.md §5f): availability is protected by three
//! independent valves. The **admission queue** sheds load outright once its
//! bound is hit (a typed `503` beats an unbounded queue collapsing under
//! memory pressure). Below the shed point, the **overload gate** watches
//! queue depth with hysteresis and forces the BestEffort failure policy on
//! admitted work while the backlog is deep — trading precision for
//! throughput, per the degrade-don't-die design of the fallback ladders.
//! And every interaction is counted in [`ServerStats`] so `stats` can tell
//! an operator which valve is active.

use serde::Value;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Outcome of [`AdmissionQueue::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub enum Admit {
    /// Admitted; carries the queue depth *after* the push (for the
    /// overload gate).
    Queued(usize),
    /// Rejected: the queue is at capacity.
    Shed,
    /// Rejected: the daemon is shutting down.
    Closed,
}

struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC work queue with explicit load shedding.
///
/// Producers never block: past capacity a push is refused ([`Admit::Shed`])
/// so the caller can answer `503` immediately. Consumers block in
/// [`AdmissionQueue::pop`] until work arrives; after [`AdmissionQueue::close`]
/// they drain the backlog and then observe `None`.
pub struct AdmissionQueue<T> {
    state: Mutex<QueueState<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> AdmissionQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits `item` unless the queue is full or closed. Never blocks.
    pub fn try_push(&self, item: T) -> Admit {
        let mut s = self.lock();
        if s.closed {
            return Admit::Closed;
        }
        if s.items.len() >= self.capacity {
            return Admit::Shed;
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.available.notify_one();
        Admit::Queued(depth)
    }

    /// Blocks until an item is available and pops it; `None` once the queue
    /// is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.lock();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self
                .available
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: further pushes are refused, consumers drain the
    /// backlog and then exit.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    /// Current backlog depth.
    pub fn depth(&self) -> usize {
        self.lock().items.len()
    }

    /// The admission bound this queue was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// Hysteresis gate driving the automatic Strict→BestEffort downgrade.
///
/// The gate engages when queue depth reaches `high` and disengages only
/// once depth falls back to `low` — the dead band keeps the policy from
/// flapping at the threshold. While engaged, admitted requests run
/// BestEffort regardless of what they asked for.
pub struct OverloadGate {
    high: usize,
    low: usize,
    engaged: AtomicBool,
    engagements: AtomicU64,
}

impl OverloadGate {
    /// A gate engaging at depth `high` and releasing at depth `low`
    /// (clamped so `low < high`).
    pub fn new(high: usize, low: usize) -> Self {
        let high = high.max(1);
        OverloadGate {
            high,
            low: low.min(high - 1),
            engaged: AtomicBool::new(false),
            engagements: AtomicU64::new(0),
        }
    }

    /// Feeds a fresh queue-depth observation; returns the (possibly
    /// updated) engaged state.
    pub fn observe(&self, depth: usize) -> bool {
        if depth >= self.high {
            if !self.engaged.swap(true, Ordering::AcqRel) {
                self.engagements.fetch_add(1, Ordering::Relaxed);
            }
            true
        } else if depth <= self.low {
            self.engaged.store(false, Ordering::Release);
            false
        } else {
            self.engaged.load(Ordering::Acquire)
        }
    }

    /// `true` while the downgrade is in force.
    pub fn engaged(&self) -> bool {
        self.engaged.load(Ordering::Acquire)
    }

    /// How many times the gate has engaged since startup.
    pub fn engagements(&self) -> u64 {
        self.engagements.load(Ordering::Relaxed)
    }
}

/// Monotonic daemon counters, exposed by the `stats` verb.
#[derive(Default)]
pub struct ServerStats {
    /// Request lines received (including malformed ones).
    pub received: AtomicU64,
    /// Requests answered `200`.
    pub completed: AtomicU64,
    /// Requests rejected `503` by the admission queue.
    pub shed: AtomicU64,
    /// Requests answered `504` (deadline expired before or during work).
    pub timeouts: AtomicU64,
    /// Requests answered `400`.
    pub bad_requests: AtomicU64,
    /// Requests answered `500` (analysis failure or worker panic).
    pub failed: AtomicU64,
    /// Worker panics caught at the isolation boundary.
    pub panics: AtomicU64,
    /// Workers respawned after a panic.
    pub respawns: AtomicU64,
    /// Requests that ran BestEffort because the overload gate forced it.
    pub forced_downgrades: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
}

impl ServerStats {
    /// Snapshot as a JSON object for the `stats` verb.
    pub fn to_value(&self, queue_depth: usize, gate: &OverloadGate) -> Value {
        let read = |c: &AtomicU64| Value::UInt(c.load(Ordering::Relaxed));
        Value::Object(vec![
            ("received".to_string(), read(&self.received)),
            ("completed".to_string(), read(&self.completed)),
            ("shed".to_string(), read(&self.shed)),
            ("timeouts".to_string(), read(&self.timeouts)),
            ("bad_requests".to_string(), read(&self.bad_requests)),
            ("failed".to_string(), read(&self.failed)),
            ("panics".to_string(), read(&self.panics)),
            ("respawns".to_string(), read(&self.respawns)),
            (
                "forced_downgrades".to_string(),
                read(&self.forced_downgrades),
            ),
            ("connections".to_string(), read(&self.connections)),
            (
                "queue_depth".to_string(),
                Value::UInt(u64::try_from(queue_depth).unwrap_or(u64::MAX)),
            ),
            ("overloaded".to_string(), Value::Bool(gate.engaged())),
            (
                "overload_engagements".to_string(),
                Value::UInt(gate.engagements()),
            ),
        ])
    }

    /// Adds one to `counter`.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_sheds_past_capacity_and_drains_after_close() {
        let q = AdmissionQueue::new(2);
        assert_eq!(q.try_push(1), Admit::Queued(1));
        assert_eq!(q.try_push(2), Admit::Queued(2));
        assert_eq!(q.try_push(3), Admit::Shed);
        q.close();
        assert_eq!(q.try_push(4), Admit::Closed);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "closed and drained");
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.try_push(9), Admit::Queued(1));
        assert_eq!(h.join().unwrap(), Some(9));
    }

    #[test]
    fn gate_hysteresis_has_dead_band() {
        let g = OverloadGate::new(8, 2);
        assert!(!g.observe(5), "below high: stays off");
        assert!(g.observe(8), "reaches high: engages");
        assert!(g.observe(5), "in the dead band: stays on");
        assert!(g.observe(3), "still above low: stays on");
        assert!(!g.observe(2), "reaches low: releases");
        assert!(!g.observe(5), "dead band again, now off");
        assert_eq!(g.engagements(), 1);
        assert!(g.observe(20));
        assert_eq!(g.engagements(), 2);
    }

    #[test]
    fn degenerate_gate_thresholds_are_clamped() {
        let g = OverloadGate::new(1, 5);
        assert!(g.observe(1));
        assert!(!g.observe(0));
    }

    #[test]
    fn stats_snapshot_carries_gate_state() {
        let s = ServerStats::default();
        ServerStats::bump(&s.completed);
        let g = OverloadGate::new(4, 1);
        g.observe(4);
        let v = s.to_value(3, &g);
        let completed: u64 = v.field("completed").unwrap();
        assert_eq!(completed, 1);
        let overloaded: bool = v.field("overloaded").unwrap();
        assert!(overloaded);
    }
}
