//! Synthetic load generator / protocol client for `cirstag serve`.
//!
//! Drives a daemon with N concurrent clients issuing `analyze` requests
//! over persistent connections, and reports the answer mix plus latency
//! percentiles. The invariant the generator checks for the CI gate and the
//! bench harness: **every** request is answered with a typed response —
//! served, shed, or timed out — and no connection is dropped.

use crate::protocol::{Request, Response, Verb, CODE_DEADLINE, CODE_OK, CODE_SHED};
use crate::ServeError;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Daemon address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Total requests across all clients.
    pub requests: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Netlist text sent with every request.
    pub netlist: String,
    /// GNN training epochs requested.
    pub epochs: usize,
    /// Per-request deadline, when set.
    pub deadline_ms: Option<u64>,
    /// Per-request failure-policy override.
    pub best_effort: Option<bool>,
    /// Send a `shutdown` request after the run completes.
    pub shutdown: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            requests: 50,
            clients: 8,
            netlist: String::new(),
            epochs: 40,
            deadline_ms: None,
            best_effort: None,
            shutdown: false,
        }
    }
}

/// Aggregated outcome of a load run.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests actually sent.
    pub sent: usize,
    /// `200` responses.
    pub ok: usize,
    /// `503` (shed) responses.
    pub shed: usize,
    /// `504` (deadline) responses.
    pub timeouts: usize,
    /// Any other typed error response.
    pub failed: usize,
    /// Requests with no response (connection error mid-flight) plus
    /// connections that could not be established. Must be zero against a
    /// healthy daemon.
    pub transport_errors: usize,
    /// Median answer latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile answer latency, milliseconds.
    pub p99_ms: f64,
    /// Worst answer latency, milliseconds.
    pub max_ms: f64,
    /// Wall-clock of the whole run, milliseconds.
    pub wall_ms: f64,
}

impl LoadReport {
    /// `true` when every sent request got a typed answer and no transport
    /// error occurred.
    pub fn fully_answered(&self) -> bool {
        self.transport_errors == 0 && self.ok + self.shed + self.timeouts + self.failed == self.sent
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} sent | {} ok | {} shed | {} timeout | {} failed | {} transport errors | \
             p50 {:.1}ms p99 {:.1}ms max {:.1}ms | wall {:.0}ms",
            self.sent,
            self.ok,
            self.shed,
            self.timeouts,
            self.failed,
            self.transport_errors,
            self.p50_ms,
            self.p99_ms,
            self.max_ms,
            self.wall_ms
        )
    }
}

struct ClientOutcome {
    sent: usize,
    ok: usize,
    shed: usize,
    timeouts: usize,
    failed: usize,
    transport_errors: usize,
    latencies_ms: Vec<f64>,
}

/// Connects with retries — the daemon may still be binding when a script
/// launches the generator right after it.
fn connect_with_retry(addr: &str) -> Result<TcpStream, ServeError> {
    let mut last = String::new();
    for _ in 0..40 {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Err(ServeError::io(format!("connect {addr}: {last}")))
}

/// One client: a persistent connection issuing its request share serially.
fn run_client(cfg: &LoadConfig, client: usize, count: usize) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        sent: 0,
        ok: 0,
        shed: 0,
        timeouts: 0,
        failed: 0,
        transport_errors: 0,
        latencies_ms: Vec::with_capacity(count),
    };
    let stream = match connect_with_retry(&cfg.addr) {
        Ok(s) => s,
        Err(_) => {
            outcome.transport_errors += count;
            outcome.sent = count;
            return outcome;
        }
    };
    let Ok(read_half) = stream.try_clone() else {
        outcome.transport_errors += count;
        outcome.sent = count;
        return outcome;
    };
    let mut writer = BufWriter::new(stream);
    let mut reader = BufReader::new(read_half);
    for seq in 0..count {
        let id = u64::try_from(client * 1_000_000 + seq + 1).unwrap_or(u64::MAX);
        let request = Request {
            id,
            verb: Verb::Analyze,
            netlist: Some(cfg.netlist.clone()),
            epochs: cfg.epochs,
            dmd_s: vec![4, 8],
            deadline_ms: cfg.deadline_ms,
            top: 0.10,
            best_effort: cfg.best_effort,
            delta: None,
            partitions: None,
        };
        let Ok(line) = request.to_line() else {
            outcome.transport_errors += 1;
            outcome.sent += 1;
            continue;
        };
        outcome.sent += 1;
        // cirstag-lint: allow(nondeterminism) -- load-generator latency measurement; client-side diagnostics only
        let t0 = Instant::now();
        let wrote = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush());
        if wrote.is_err() {
            outcome.transport_errors += 1;
            continue;
        }
        // Serial per connection: the next response line is ours (the
        // daemon may interleave only across *connections*).
        let mut answered = false;
        let mut reply = String::new();
        loop {
            reply.clear();
            match reader.read_line(&mut reply) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
            let Ok(resp) = Response::parse(reply.trim_end()) else {
                continue;
            };
            if resp.id != id {
                continue; // stale line from a previous aborted exchange
            }
            // cirstag-lint: allow(nondeterminism) -- load-generator latency measurement; client-side diagnostics only
            let elapsed = t0.elapsed().as_secs_f64() * 1e3;
            outcome.latencies_ms.push(elapsed);
            match resp.code {
                CODE_OK => outcome.ok += 1,
                CODE_SHED => outcome.shed += 1,
                CODE_DEADLINE => outcome.timeouts += 1,
                _ => outcome.failed += 1,
            }
            answered = true;
            break;
        }
        if !answered {
            outcome.transport_errors += 1;
        }
    }
    outcome
}

/// Percentile of a sorted latency slice; `p` in `[0, 100]`.
fn percentile(sorted: &[f64], p: usize) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = (p * (sorted.len() - 1)) / 100;
    sorted.get(idx).copied().unwrap_or(0.0)
}

/// Runs the full load: `cfg.clients` concurrent connections splitting
/// `cfg.requests` requests, then (optionally) a graceful `shutdown`.
///
/// # Errors
///
/// [`ServeError::Io`] only for setup-level failures (e.g. the shutdown
/// connection); per-request transport problems are *counted*, not raised,
/// so the caller can assert on [`LoadReport::transport_errors`].
pub fn run_load(cfg: &LoadConfig) -> Result<LoadReport, ServeError> {
    let clients = cfg.clients.max(1);
    let total = cfg.requests;
    // cirstag-lint: allow(nondeterminism) -- load-generator latency measurement; client-side diagnostics only
    let started = Instant::now();
    let mut handles = Vec::with_capacity(clients);
    for client in 0..clients {
        // Spread the remainder over the first `total % clients` clients.
        let count = total / clients + usize::from(client < total % clients);
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || run_client(&cfg, client, count)));
    }
    let mut report = LoadReport::default();
    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    for h in handles {
        let Ok(outcome) = h.join() else {
            return Err(ServeError::io("load client thread panicked"));
        };
        report.sent += outcome.sent;
        report.ok += outcome.ok;
        report.shed += outcome.shed;
        report.timeouts += outcome.timeouts;
        report.failed += outcome.failed;
        report.transport_errors += outcome.transport_errors;
        latencies.extend(outcome.latencies_ms);
    }
    latencies.sort_by(f64::total_cmp);
    report.p50_ms = percentile(&latencies, 50);
    report.p99_ms = percentile(&latencies, 99);
    report.max_ms = latencies.last().copied().unwrap_or(0.0);
    // cirstag-lint: allow(nondeterminism) -- load-generator latency measurement; client-side diagnostics only
    report.wall_ms = started.elapsed().as_secs_f64() * 1e3;
    if cfg.shutdown {
        shutdown_daemon(&cfg.addr)?;
    }
    Ok(report)
}

/// Sends a `shutdown` request and waits for its acknowledgement.
///
/// # Errors
///
/// [`ServeError::Io`] when the daemon cannot be reached.
pub fn shutdown_daemon(addr: &str) -> Result<(), ServeError> {
    let stream = connect_with_retry(addr)?;
    let Ok(read_half) = stream.try_clone() else {
        return Err(ServeError::io(format!("clone shutdown stream to {addr}")));
    };
    let mut writer = BufWriter::new(stream);
    let request = Request {
        id: u64::MAX,
        verb: Verb::Shutdown,
        netlist: None,
        epochs: 0,
        dmd_s: vec![1],
        deadline_ms: None,
        top: 0.5,
        best_effort: None,
        delta: None,
        partitions: None,
    };
    let line = request.to_line()?;
    writer
        .write_all(line.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| ServeError::io(format!("send shutdown to {addr}: {e}")))?;
    let mut reply = String::new();
    drop(BufReader::new(read_half).read_line(&mut reply));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_on_small_samples() {
        assert!((percentile(&[], 50) - 0.0).abs() < 1e-12);
        let one = [7.0];
        assert!((percentile(&one, 50) - 7.0).abs() < 1e-12);
        assert!((percentile(&one, 99) - 7.0).abs() < 1e-12);
        let ten: Vec<f64> = (1..=10).map(f64::from).collect();
        assert!((percentile(&ten, 50) - 5.0).abs() < 1e-12);
        assert!((percentile(&ten, 99) - 9.0).abs() < 1e-12);
        assert!((percentile(&ten, 100) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn report_answer_accounting() {
        let mut r = LoadReport {
            sent: 10,
            ok: 7,
            shed: 2,
            timeouts: 1,
            ..Default::default()
        };
        assert!(r.fully_answered());
        r.transport_errors = 1;
        assert!(!r.fully_answered());
        assert!(r.summary().contains("10 sent"));
    }
}
