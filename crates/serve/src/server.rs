//! The resident daemon: listener, supervisor, workers, dispatch.
//!
//! Thread architecture (DESIGN.md §5f):
//!
//! - The **accept loop** (caller's thread) owns the listener. Each accepted
//!   connection gets a reader thread plus a writer thread fed by an mpsc
//!   channel, so responses can complete out of order.
//! - `health`/`stats`/`shutdown` are answered inline by the reader —
//!   control-plane traffic must keep working exactly when the data plane is
//!   saturated.
//! - `analyze`/`sweep`/`delta` become [`Job`]s on the bounded
//!   [`AdmissionQueue`]; past capacity the reader answers `503` directly.
//!   `delta` is the incremental ECO path: the base netlist resolves through
//!   the [`DesignStore`] (graph, features, and GNN embedding prepared once),
//!   the delta ops edit that base, and the partition-scoped pipeline replays
//!   untouched partitions from the shared segmented artifact cache.
//! - N **supervisor** threads each babysit one worker thread. A worker that
//!   panics mid-job is caught at the [`std::panic::catch_unwind`] boundary,
//!   the client gets a typed `500`, and the supervisor spawns a fresh
//!   worker — the process never dies with a request on the wire.
//! - All workers share one [`SharedArtifactCache`] (single-flighted, crash
//!   safe on disk) and one [`DesignStore`], so identical netlists across
//!   tenants train and analyze once.
//!
//! Deadlines: a request's `deadline_ms` becomes a [`CancelToken`] that is
//! (a) checked before work starts, (b) polled by the engine at every stage
//! boundary, and (c) mapped onto [`cirstag::StageBudget::wall_clock_ms`] so
//! a single long-running stage is also bounded. Expiry anywhere surfaces as
//! a typed `504`.

use crate::admission::{AdmissionQueue, Admit, OverloadGate, ServerStats};
use crate::design::{DesignStore, PreparedDesign};
use crate::protocol::{
    Request, Response, Verb, CODE_BAD_REQUEST, CODE_DEADLINE, CODE_INTERNAL, CODE_SHED,
};
use crate::ServeError;
use cirstag::failpoint as fail;
use cirstag::{
    analyze_partitioned_shared, ArtifactCache, CancelToken, CirStag, CirStagConfig, CirStagError,
    FailurePolicy, PartitionedReport, SharedArtifactCache, StabilityReport,
};
use cirstag_circuit::{apply_delta, partition_graph, NetlistDelta, PartitionConfig};
use cirstag_embed::KnnMethod;
use serde::Value;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral
    /// port — pair with `port_file` for discovery).
    pub addr: String,
    /// Worker threads executing queued analyses.
    pub workers: usize,
    /// Admission-queue bound; depth beyond this sheds with `503`.
    pub queue_capacity: usize,
    /// Queue depth at which the overload gate forces BestEffort.
    pub downgrade_high: usize,
    /// Queue depth at which the forced downgrade releases.
    pub downgrade_low: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Base failure policy for requests without a `best_effort` field.
    pub best_effort: bool,
    /// Optional on-disk artifact-cache directory shared by all tenants.
    pub cache_dir: Option<String>,
    /// When set, the bound address is written here after `bind` — how
    /// scripts discover an ephemeral port.
    pub port_file: Option<String>,
    /// Prepared designs retained in memory.
    pub design_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 64,
            downgrade_high: 48,
            downgrade_low: 16,
            default_deadline_ms: None,
            best_effort: false,
            cache_dir: None,
            port_file: None,
            design_capacity: 8,
        }
    }
}

/// One admitted unit of work.
struct Job {
    request: Request,
    cancel: CancelToken,
    responder: mpsc::Sender<Response>,
    enqueued: Instant,
}

/// State shared by the accept loop, readers, and workers.
struct Shared {
    queue: AdmissionQueue<Job>,
    gate: OverloadGate,
    stats: ServerStats,
    cache: SharedArtifactCache,
    designs: DesignStore,
    shutdown: AtomicBool,
    local: SocketAddr,
    workers: usize,
    base_best_effort: bool,
    default_deadline_ms: Option<u64>,
    started: Instant,
}

impl Shared {
    /// Flips the shutdown flag, closes the queue, and unblocks the accept
    /// loop with a loopback connection.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.queue.close();
        // The accept loop is blocked in `accept`; a throwaway connection
        // wakes it so it can observe the flag.
        drop(TcpStream::connect(self.local));
    }
}

/// Why a worker thread returned.
enum WorkerExit {
    /// Queue closed and drained — orderly exit.
    Shutdown,
    /// A job panicked; the supervisor must respawn.
    Panicked,
}

/// A bound, not-yet-running daemon. Splitting `bind` from [`Server::run`]
/// lets embedders (the bench harness, the chaos tests) learn the ephemeral
/// port before the accept loop starts blocking.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener, initializes the shared state, and writes the
    /// port file when configured.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when binding or writing the port file fails.
    pub fn bind(config: &ServeConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ServeError::io(format!("bind {}: {e}", config.addr)))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::io(format!("local_addr: {e}")))?;
        if let Some(pf) = &config.port_file {
            std::fs::write(pf, format!("{local}\n"))
                .map_err(|e| ServeError::io(format!("write port file {pf}: {e}")))?;
        }
        let mut cache = ArtifactCache::new();
        if let Some(dir) = &config.cache_dir {
            cache = cache.with_disk_dir(dir);
        }
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(config.queue_capacity),
            gate: OverloadGate::new(config.downgrade_high, config.downgrade_low),
            stats: ServerStats::default(),
            cache: SharedArtifactCache::new(cache),
            designs: DesignStore::new(config.design_capacity),
            shutdown: AtomicBool::new(false),
            local,
            workers: config.workers.max(1),
            base_best_effort: config.best_effort,
            default_deadline_ms: config.default_deadline_ms,
            // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
            started: Instant::now(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local
    }

    /// Runs the daemon until a `shutdown` request arrives: spawns the
    /// worker supervisors, accepts connections, drains the queue on
    /// shutdown, and writes a final summary line to `out`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when spawning worker threads fails. Per-request
    /// and per-connection failures never abort the daemon — that is the
    /// point of it.
    pub fn run(self, out: &mut dyn Write) -> Result<(), ServeError> {
        let Server { listener, shared } = self;
        writeln!(
            out,
            "cirstag serve listening on {} ({} workers, queue {}, policy {})",
            shared.local,
            shared.workers,
            shared.queue.capacity(),
            if shared.base_best_effort {
                "best-effort"
            } else {
                "strict"
            }
        )
        .map_err(|e| ServeError::io(format!("write startup line: {e}")))?;

        let supervisors = spawn_supervisors(&shared)?;

        loop {
            if shared.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Failpoint `serve/accept`: simulate a transient accept-side
            // failure (EMFILE, ECONNABORTED). The kernel backlog holds
            // pending connections, so skipping an iteration loses nothing.
            if fail::check("serve/accept").is_some() {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.shutdown.load(Ordering::Acquire) {
                        break; // the begin_shutdown wake-up connection
                    }
                    let sh = Arc::clone(&shared);
                    let spawned = std::thread::Builder::new()
                        .name("cirstag-serve-conn".to_string())
                        .spawn(move || handle_connection(&sh, stream));
                    if spawned.is_err() {
                        // Out of threads: shed at the connection level.
                        ServerStats::bump(&shared.stats.shed);
                    }
                }
                Err(_) => {
                    // Transient accept failure; back off briefly and retry.
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }

        shared.queue.close();
        for s in supervisors {
            drop(s.join());
        }
        let st = &shared.stats;
        let read = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        writeln!(
            out,
            "cirstag serve drained after {}ms: {} received, {} completed, {} shed, \
             {} timeouts, {} failed, {} panics caught, {} workers respawned",
            // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
            millis(shared.started.elapsed()),
            read(&st.received),
            read(&st.completed),
            read(&st.shed),
            read(&st.timeouts),
            read(&st.failed),
            read(&st.panics),
            read(&st.respawns),
        )
        .map_err(|e| ServeError::io(format!("write summary line: {e}")))?;
        Ok(())
    }
}

/// Saturating millisecond conversion.
fn millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// One supervisor thread per worker slot; each respawns its worker after a
/// panic and exits once the queue is closed and drained.
fn spawn_supervisors(shared: &Arc<Shared>) -> Result<Vec<std::thread::JoinHandle<()>>, ServeError> {
    let mut handles = Vec::with_capacity(shared.workers);
    for slot in 0..shared.workers {
        let shared = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name(format!("cirstag-serve-supervisor-{slot}"))
            .spawn(move || loop {
                let s = Arc::clone(&shared);
                let worker = std::thread::Builder::new()
                    .name(format!("cirstag-serve-worker-{slot}"))
                    .spawn(move || worker_loop(&s));
                let Ok(worker) = worker else {
                    return; // cannot spawn workers at all; give up the slot
                };
                match worker.join() {
                    Ok(WorkerExit::Shutdown) => return,
                    Ok(WorkerExit::Panicked) | Err(_) => {
                        ServerStats::bump(&shared.stats.respawns);
                    }
                }
            })
            .map_err(|e| ServeError::io(format!("spawn supervisor {slot}: {e}")))?;
        handles.push(handle);
    }
    Ok(handles)
}

/// Pops jobs until the queue closes. A panicking job is converted into a
/// typed `500` for its client; the worker then reports `Panicked` so the
/// supervisor replaces it (any poisoned thread-local numeric state dies
/// with the thread).
fn worker_loop(shared: &Shared) -> WorkerExit {
    while let Some(job) = shared.queue.pop() {
        let id = job.request.id;
        let responder = job.responder.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_job(shared, &job)));
        match outcome {
            Ok(resp) => {
                count_response(shared, &resp);
                drop(responder.send(resp));
            }
            Err(_) => {
                ServerStats::bump(&shared.stats.panics);
                ServerStats::bump(&shared.stats.failed);
                drop(responder.send(Response::error(
                    id,
                    CODE_INTERNAL,
                    "worker panicked during analysis; a fresh worker was spawned",
                )));
                return WorkerExit::Panicked;
            }
        }
    }
    WorkerExit::Shutdown
}

/// Attributes a finished response to the right counter.
fn count_response(shared: &Shared, resp: &Response) {
    let counter = match resp.code {
        CODE_DEADLINE => &shared.stats.timeouts,
        CODE_BAD_REQUEST => &shared.stats.bad_requests,
        c if c >= 500 => &shared.stats.failed,
        _ => &shared.stats.completed,
    };
    ServerStats::bump(counter);
}

/// Reader side of one connection; spawns the paired writer thread.
fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    ServerStats::bump(&shared.stats.connections);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<Response>();
    let writer = std::thread::Builder::new()
        .name("cirstag-serve-writer".to_string())
        .spawn(move || {
            let mut w = BufWriter::new(stream);
            for resp in rx {
                let Ok(line) = resp.to_line() else { continue };
                let sent = w
                    .write_all(line.as_bytes())
                    .and_then(|()| w.write_all(b"\n"))
                    .and_then(|()| w.flush());
                if sent.is_err() {
                    break; // client went away; drop remaining responses
                }
            }
        });
    for line in BufReader::new(read_half).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        ServerStats::bump(&shared.stats.received);
        match Request::parse(&line) {
            Err(e) => {
                ServerStats::bump(&shared.stats.bad_requests);
                drop(tx.send(Response::error(0, CODE_BAD_REQUEST, e.to_string())));
            }
            Ok(req) => dispatch(shared, req, &tx),
        }
    }
    drop(tx); // writer exits once queued jobs release their clones
    if let Ok(w) = writer {
        drop(w.join());
    }
}

/// Routes one parsed request: control verbs inline, work verbs through the
/// admission queue.
fn dispatch(shared: &Arc<Shared>, req: Request, tx: &mpsc::Sender<Response>) {
    let id = req.id;
    match req.verb {
        Verb::Health => {
            drop(tx.send(Response::ok(id, health_body(shared))));
            ServerStats::bump(&shared.stats.completed);
        }
        Verb::Stats => {
            let body = shared.stats.to_value(shared.queue.depth(), &shared.gate);
            drop(tx.send(Response::ok(id, body)));
            ServerStats::bump(&shared.stats.completed);
        }
        Verb::Shutdown => {
            drop(tx.send(Response::ok(
                id,
                Value::Object(vec![("stopping".to_string(), Value::Bool(true))]),
            )));
            ServerStats::bump(&shared.stats.completed);
            shared.begin_shutdown();
        }
        Verb::Analyze | Verb::Sweep | Verb::Delta => {
            let deadline_ms = req.deadline_ms.or(shared.default_deadline_ms);
            let cancel = match deadline_ms {
                Some(ms) => CancelToken::with_deadline(Duration::from_millis(ms)),
                None => CancelToken::new(),
            };
            let job = Job {
                request: req,
                cancel,
                responder: tx.clone(),
                // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
                enqueued: Instant::now(),
            };
            match shared.queue.try_push(job) {
                Admit::Queued(depth) => {
                    shared.gate.observe(depth);
                }
                Admit::Shed => {
                    ServerStats::bump(&shared.stats.shed);
                    drop(tx.send(Response::error(
                        id,
                        CODE_SHED,
                        "admission queue full; request shed",
                    )));
                }
                Admit::Closed => {
                    ServerStats::bump(&shared.stats.shed);
                    drop(tx.send(Response::error(
                        id,
                        CODE_SHED,
                        "daemon is shutting down; request refused",
                    )));
                }
            }
        }
    }
}

/// The `health` payload.
fn health_body(shared: &Shared) -> Value {
    Value::Object(vec![
        ("alive".to_string(), Value::Bool(true)),
        (
            "workers".to_string(),
            Value::UInt(u64::try_from(shared.workers).unwrap_or(u64::MAX)),
        ),
        (
            "queue_depth".to_string(),
            Value::UInt(u64::try_from(shared.queue.depth()).unwrap_or(u64::MAX)),
        ),
        ("overloaded".to_string(), Value::Bool(shared.gate.engaged())),
        (
            "designs".to_string(),
            Value::UInt(u64::try_from(shared.designs.len()).unwrap_or(u64::MAX)),
        ),
        (
            "uptime_ms".to_string(),
            // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
            Value::UInt(millis(shared.started.elapsed())),
        ),
    ])
}

/// Executes one admitted job end to end and builds its response.
fn handle_job(shared: &Shared, job: &Job) -> Response {
    let req = &job.request;
    // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
    let queue_wait = job.enqueued.elapsed();
    // Failpoint `serve/worker-panic`: drive the panic-isolation boundary
    // from chaos tests without corrupting real numeric state.
    if fail::check("serve/worker-panic").is_some() {
        // cirstag-lint: allow(no-panic-in-lib) -- deliberate injected panic behind the failpoints feature; caught by the worker's catch_unwind isolation boundary
        panic!("injected worker panic (serve/worker-panic)");
    }
    if job.cancel.is_cancelled() {
        return Response::error(
            req.id,
            CODE_DEADLINE,
            "deadline expired before the request was scheduled",
        );
    }
    let Some(netlist) = req.netlist.as_deref() else {
        return Response::error(req.id, CODE_BAD_REQUEST, "missing netlist");
    };
    let design = match shared.designs.get_or_build(netlist, req.epochs) {
        Ok(d) => d,
        Err(e) => return Response::error(req.id, CODE_BAD_REQUEST, e.to_string()),
    };
    let forced = shared.gate.engaged();
    if forced {
        ServerStats::bump(&shared.stats.forced_downgrades);
    }
    let best_effort = forced || req.best_effort.unwrap_or(shared.base_best_effort);
    let config = analysis_config(&design, best_effort, &job.cancel);
    // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
    let started = Instant::now();
    match req.verb {
        Verb::Sweep => {
            let mut results = Vec::with_capacity(req.dmd_s.len());
            for &s in &req.dmd_s {
                let cfg = CirStagConfig {
                    num_eigenpairs: s,
                    ..config
                };
                let report = CirStag::new(cfg).analyze_shared(
                    &design.graph,
                    Some(&design.features),
                    &design.embedding,
                    &shared.cache,
                    Some(&job.cancel),
                );
                match report {
                    Ok(r) => results.push(Value::Object(vec![
                        (
                            "s".to_string(),
                            Value::UInt(u64::try_from(s).unwrap_or(u64::MAX)),
                        ),
                        (
                            "zeta1".to_string(),
                            Value::Float(r.eigenvalues.first().copied().unwrap_or(0.0)),
                        ),
                        ("degraded".to_string(), Value::Bool(r.degraded)),
                        (
                            "cache_hits".to_string(),
                            Value::UInt(u64::try_from(r.timings.cache_hits).unwrap_or(u64::MAX)),
                        ),
                    ])),
                    Err(e) => return pipeline_error(req.id, &e),
                }
            }
            Response::ok(
                req.id,
                Value::Object(vec![
                    ("design".to_string(), Value::Str(design.name.clone())),
                    (
                        "nodes".to_string(),
                        Value::UInt(u64::try_from(design.graph.num_nodes()).unwrap_or(u64::MAX)),
                    ),
                    ("results".to_string(), Value::Array(results)),
                    ("policy".to_string(), policy_value(best_effort)),
                    ("forced_best_effort".to_string(), Value::Bool(forced)),
                    ("queue_wait_ms".to_string(), Value::UInt(millis(queue_wait))),
                    (
                        "elapsed_ms".to_string(),
                        // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
                        Value::UInt(millis(started.elapsed())),
                    ),
                ]),
            )
        }
        Verb::Delta => handle_delta(
            shared,
            req,
            &design,
            config,
            best_effort,
            forced,
            queue_wait,
            started,
            &job.cancel,
        ),
        _ => {
            let report = CirStag::new(config).analyze_shared(
                &design.graph,
                Some(&design.features),
                &design.embedding,
                &shared.cache,
                Some(&job.cancel),
            );
            match report {
                Ok(r) => Response::ok(
                    req.id,
                    analyze_body(
                        &design,
                        &r,
                        req.top,
                        best_effort,
                        forced,
                        queue_wait,
                        started,
                    ),
                ),
                Err(e) => pipeline_error(req.id, &e),
            }
        }
    }
}

/// Partition count used for `delta` requests that do not carry their own.
const DEFAULT_DELTA_PARTITIONS: usize = 8;

/// Executes one `delta` request: partitions the prepared base design,
/// applies the netlist-delta ops, and re-scores partition-by-partition
/// against the shared artifact cache so only dirty partitions (plus halo)
/// recompute. The partitioning itself is deterministic and cheap relative
/// to a pipeline stage, so it is rebuilt per request instead of being
/// cached alongside the design.
#[allow(clippy::too_many_arguments)]
fn handle_delta(
    shared: &Shared,
    req: &Request,
    design: &PreparedDesign,
    config: CirStagConfig,
    best_effort: bool,
    forced: bool,
    queue_wait: Duration,
    started: Instant,
    cancel: &CancelToken,
) -> Response {
    let Some(delta_text) = req.delta.as_deref() else {
        return Response::error(req.id, CODE_BAD_REQUEST, "missing delta");
    };
    let netlist_delta = match NetlistDelta::from_json(delta_text) {
        Ok(d) => d,
        Err(e) => return Response::error(req.id, CODE_BAD_REQUEST, e.to_string()),
    };
    let pconfig = PartitionConfig {
        num_partitions: req.partitions.unwrap_or(DEFAULT_DELTA_PARTITIONS),
        ..PartitionConfig::default()
    };
    if let Err(e) = pconfig.validate(design.graph.num_nodes()) {
        return Response::error(req.id, CODE_BAD_REQUEST, e.to_string());
    }
    let partitioning = match partition_graph(&design.graph, &pconfig) {
        Ok(p) => p,
        Err(e) => return Response::error(req.id, CODE_BAD_REQUEST, e.to_string()),
    };
    let outcome = match apply_delta(
        &design.graph,
        Some(&design.features),
        &netlist_delta,
        &partitioning,
    ) {
        Ok(o) => o,
        Err(e) => return Response::error(req.id, CODE_BAD_REQUEST, e.to_string()),
    };
    let Some(features) = outcome.features else {
        return Response::error(req.id, CODE_INTERNAL, "delta lost the feature matrix");
    };
    let report = analyze_partitioned_shared(
        &config,
        &outcome.graph,
        Some(&features),
        &design.embedding,
        &partitioning.assignment,
        partitioning.num_partitions,
        partitioning.halo_depth,
        &shared.cache,
        Some(cancel),
    );
    match report {
        Ok(r) => Response::ok(
            req.id,
            delta_body(
                design,
                &r,
                &outcome.touched_partitions,
                req.top,
                best_effort,
                forced,
                queue_wait,
                started,
            ),
        ),
        Err(e) => pipeline_error(req.id, &e),
    }
}

/// The per-request pipeline configuration: the CLI's sizing defaults with
/// `num_threads = 1` (the rayon pool is process-global; concurrent workers
/// must not fight over it) and the remaining deadline mapped onto the
/// per-stage wall-clock budget.
fn analysis_config(
    design: &PreparedDesign,
    best_effort: bool,
    cancel: &CancelToken,
) -> CirStagConfig {
    let mut config = CirStagConfig {
        embedding_dim: 16,
        num_eigenpairs: 25,
        knn_k: 10,
        num_threads: 1,
        policy: if best_effort {
            FailurePolicy::BestEffort
        } else {
            FailurePolicy::Strict
        },
        ..Default::default()
    };
    // Neighbor-search tiering mirrors the CLI's `--knn auto` heuristic, with
    // one extra rung: beyond ~50k pins the rp-forest candidate pools thin out
    // and the HNSW index is both faster to query and holds its recall.
    if design.graph.num_nodes() > 50_000 {
        config.knn.method = KnnMethod::hnsw_default();
    } else if design.graph.num_nodes() > 3000 {
        config.knn.method = KnnMethod::RpForest {
            num_trees: 6,
            leaf_size: 48,
        };
    }
    if let Some(remaining) = cancel.remaining() {
        // Each stage is individually bounded by what is left of the
        // request's deadline; the token still cancels between stages.
        config.stage_budget.wall_clock_ms = Some(millis(remaining).max(1));
    }
    config
}

/// `"strict"`/`"best-effort"` for response bodies.
fn policy_value(best_effort: bool) -> Value {
    Value::Str(if best_effort { "best-effort" } else { "strict" }.to_string())
}

/// Maps a pipeline error onto a wire response.
fn pipeline_error(id: u64, e: &CirStagError) -> Response {
    match e {
        CirStagError::Cancelled { .. } | CirStagError::BudgetExhausted { .. } => {
            Response::error(id, CODE_DEADLINE, e.to_string())
        }
        CirStagError::InvalidArgument { .. } => {
            Response::error(id, CODE_BAD_REQUEST, e.to_string())
        }
        _ => Response::error(id, CODE_INTERNAL, format!("analysis failed: {e}")),
    }
}

/// The `analyze` payload: ranking head plus run metadata.
fn analyze_body(
    design: &PreparedDesign,
    report: &StabilityReport,
    top: f64,
    best_effort: bool,
    forced: bool,
    queue_wait: Duration,
    started: Instant,
) -> Value {
    let unstable = cirstag::top_fraction(&report.node_scores, top, None);
    let head: Vec<Value> = unstable
        .iter()
        .take(20)
        .map(|&i| {
            Value::Object(vec![
                (
                    "node".to_string(),
                    Value::UInt(u64::try_from(i).unwrap_or(u64::MAX)),
                ),
                (
                    "score".to_string(),
                    Value::Float(report.node_scores.get(i).copied().unwrap_or(0.0)),
                ),
            ])
        })
        .collect();
    let mut fields = vec![
        ("design".to_string(), Value::Str(design.name.clone())),
        (
            "nodes".to_string(),
            Value::UInt(u64::try_from(design.graph.num_nodes()).unwrap_or(u64::MAX)),
        ),
        ("degraded".to_string(), Value::Bool(report.degraded)),
        ("policy".to_string(), policy_value(best_effort)),
        ("forced_best_effort".to_string(), Value::Bool(forced)),
        (
            "zeta1".to_string(),
            Value::Float(report.eigenvalues.first().copied().unwrap_or(0.0)),
        ),
        (
            "unstable_count".to_string(),
            Value::UInt(u64::try_from(unstable.len()).unwrap_or(u64::MAX)),
        ),
        ("top".to_string(), Value::Array(head)),
        (
            "cache_hits".to_string(),
            Value::UInt(u64::try_from(report.timings.cache_hits).unwrap_or(u64::MAX)),
        ),
        (
            "cache_misses".to_string(),
            Value::UInt(u64::try_from(report.timings.cache_misses).unwrap_or(u64::MAX)),
        ),
        (
            "events".to_string(),
            Value::UInt(u64::try_from(report.diagnostics.events.len()).unwrap_or(u64::MAX)),
        ),
        ("queue_wait_ms".to_string(), Value::UInt(millis(queue_wait))),
        (
            "elapsed_ms".to_string(),
            // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
            Value::UInt(millis(started.elapsed())),
        ),
    ];
    if design.r2.is_finite() {
        fields.push(("r2".to_string(), Value::Float(design.r2)));
    }
    Value::Object(fields)
}

/// The `delta` payload: ranking head plus the per-partition recompute
/// breakdown (which regions were invalidated, which replayed from cache).
#[allow(clippy::too_many_arguments)]
fn delta_body(
    design: &PreparedDesign,
    report: &PartitionedReport,
    touched_partitions: &[usize],
    top: f64,
    best_effort: bool,
    forced: bool,
    queue_wait: Duration,
    started: Instant,
) -> Value {
    let unstable = cirstag::top_fraction(&report.node_scores, top, None);
    let head: Vec<Value> = unstable
        .iter()
        .take(20)
        .map(|&i| {
            Value::Object(vec![
                (
                    "node".to_string(),
                    Value::UInt(u64::try_from(i).unwrap_or(u64::MAX)),
                ),
                (
                    "score".to_string(),
                    Value::Float(report.node_scores.get(i).copied().unwrap_or(0.0)),
                ),
            ])
        })
        .collect();
    let as_uint_array = |ids: &[u64]| Value::Array(ids.iter().map(|&i| Value::UInt(i)).collect());
    let touched: Vec<u64> = touched_partitions
        .iter()
        .map(|&p| u64::try_from(p).unwrap_or(u64::MAX))
        .collect();
    let recomputed: Vec<u64> = report.recomputed().iter().map(|&p| u64::from(p)).collect();
    Value::Object(vec![
        ("design".to_string(), Value::Str(design.name.clone())),
        (
            "nodes".to_string(),
            Value::UInt(u64::try_from(design.graph.num_nodes()).unwrap_or(u64::MAX)),
        ),
        (
            "partitions".to_string(),
            Value::UInt(u64::try_from(report.num_partitions).unwrap_or(u64::MAX)),
        ),
        (
            "halo_depth".to_string(),
            Value::UInt(u64::try_from(report.halo_depth).unwrap_or(u64::MAX)),
        ),
        ("root".to_string(), Value::Str(report.root.hex())),
        ("touched_partitions".to_string(), as_uint_array(&touched)),
        (
            "recomputed_partitions".to_string(),
            as_uint_array(&recomputed),
        ),
        (
            "cache_hits".to_string(),
            Value::UInt(u64::try_from(report.cache_hits()).unwrap_or(u64::MAX)),
        ),
        (
            "cache_misses".to_string(),
            Value::UInt(u64::try_from(report.cache_misses()).unwrap_or(u64::MAX)),
        ),
        ("degraded".to_string(), Value::Bool(report.degraded)),
        ("policy".to_string(), policy_value(best_effort)),
        ("forced_best_effort".to_string(), Value::Bool(forced)),
        (
            "unstable_count".to_string(),
            Value::UInt(u64::try_from(unstable.len()).unwrap_or(u64::MAX)),
        ),
        ("top".to_string(), Value::Array(head)),
        ("queue_wait_ms".to_string(), Value::UInt(millis(queue_wait))),
        (
            "elapsed_ms".to_string(),
            // cirstag-lint: allow(nondeterminism) -- request timing/deadline bookkeeping; responses carry it as diagnostics only
            Value::UInt(millis(started.elapsed())),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::{run_load, LoadConfig};
    use cirstag_circuit::{generate_circuit, write_netlist, CellLibrary, GeneratorConfig};

    fn tiny_netlist() -> String {
        let library = CellLibrary::standard();
        let netlist = generate_circuit(
            &library,
            &GeneratorConfig {
                num_gates: 30,
                ..Default::default()
            },
            11,
        )
        .unwrap();
        write_netlist(&netlist, &library)
    }

    fn spawn_daemon(config: ServeConfig) -> (String, std::thread::JoinHandle<String>) {
        let server = Server::bind(&config).unwrap();
        let addr = server.local_addr().to_string();
        let handle = std::thread::spawn(move || {
            let mut out = Vec::new();
            server.run(&mut out).unwrap();
            String::from_utf8(out).unwrap()
        });
        (addr, handle)
    }

    #[test]
    fn daemon_answers_concurrent_load_and_drains_cleanly() {
        let (addr, daemon) = spawn_daemon(ServeConfig {
            workers: 2,
            ..Default::default()
        });
        let report = run_load(&LoadConfig {
            addr,
            requests: 12,
            clients: 3,
            netlist: tiny_netlist(),
            epochs: 6,
            shutdown: true,
            ..Default::default()
        })
        .unwrap();
        assert!(report.fully_answered(), "{}", report.summary());
        assert_eq!(report.ok, 12, "{}", report.summary());
        let log = daemon.join().unwrap();
        assert!(log.contains("listening on"), "{log}");
        assert!(log.contains("drained"), "{log}");
    }

    #[test]
    fn expired_deadline_is_a_typed_504() {
        let (addr, daemon) = spawn_daemon(ServeConfig::default());
        let report = run_load(&LoadConfig {
            addr,
            requests: 3,
            clients: 1,
            netlist: tiny_netlist(),
            epochs: 6,
            deadline_ms: Some(0),
            shutdown: true,
            ..Default::default()
        })
        .unwrap();
        assert!(report.fully_answered(), "{}", report.summary());
        assert_eq!(report.timeouts, 3, "{}", report.summary());
        drop(daemon.join().unwrap());
    }

    #[test]
    fn control_verbs_answer_inline_and_garbage_gets_400() {
        let (addr, daemon) = spawn_daemon(ServeConfig::default());
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        let mut exchange = |line: &str| -> Response {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            Response::parse(reply.trim_end()).unwrap()
        };
        let health = exchange(r#"{"id": 1, "verb": "health"}"#);
        assert_eq!(health.code, crate::CODE_OK);
        let alive: bool = health.body.as_ref().unwrap().field("alive").unwrap();
        assert!(alive);
        let bad = exchange("this is not json");
        assert_eq!(bad.code, CODE_BAD_REQUEST);
        let missing = exchange(r#"{"id": 4, "verb": "analyze"}"#);
        assert_eq!(missing.code, CODE_BAD_REQUEST);
        let stats = exchange(r#"{"id": 2, "verb": "stats"}"#);
        assert_eq!(stats.code, crate::CODE_OK);
        let received: u64 = stats.body.as_ref().unwrap().field("received").unwrap();
        assert!(received >= 4);
        let bad_requests: u64 = stats.body.as_ref().unwrap().field("bad_requests").unwrap();
        assert_eq!(bad_requests, 2);
        let stop = exchange(r#"{"id": 3, "verb": "shutdown"}"#);
        assert_eq!(stop.code, crate::CODE_OK);
        // Close our end; the daemon's connection threads exit on EOF.
        drop(writer);
        drop(reader);
        drop(daemon.join().unwrap());
    }

    #[test]
    fn delta_requests_reuse_the_segmented_cache() {
        let (addr, daemon) = spawn_daemon(ServeConfig {
            workers: 1,
            ..Default::default()
        });
        let stream = TcpStream::connect(&addr).unwrap();
        let mut writer = BufWriter::new(stream.try_clone().unwrap());
        let mut reader = BufReader::new(stream);
        let mut exchange = |line: &str| -> Response {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            Response::parse(reply.trim_end()).unwrap()
        };
        let delta = cirstag_circuit::NetlistDelta {
            ops: vec![cirstag_circuit::DeltaOp::FeatureDrift {
                node: 0,
                scale: 1.05,
            }],
        };
        let request = |id: u64| Request {
            id,
            verb: Verb::Delta,
            netlist: Some(tiny_netlist()),
            epochs: 6,
            dmd_s: vec![4, 8],
            deadline_ms: None,
            top: 0.10,
            best_effort: None,
            delta: Some(delta.to_json().unwrap()),
            partitions: Some(4),
        };
        // First pass: nothing cached yet, so every partition recomputes.
        let first = exchange(&request(1).to_line().unwrap());
        assert_eq!(first.code, crate::CODE_OK, "{:?}", first.error);
        let body = first.body.as_ref().unwrap();
        let partitions: u64 = body.field("partitions").unwrap();
        assert_eq!(partitions, 4);
        let recomputed: Vec<u64> = body.field("recomputed_partitions").unwrap();
        assert_eq!(recomputed, vec![0, 1, 2, 3]);
        let touched: Vec<u64> = body.field("touched_partitions").unwrap();
        assert!(!touched.is_empty(), "a drift op must touch its partition");
        // Same delta again: every partition replays from the shared cache.
        let second = exchange(&request(2).to_line().unwrap());
        assert_eq!(second.code, crate::CODE_OK, "{:?}", second.error);
        let body = second.body.as_ref().unwrap();
        let recomputed: Vec<u64> = body.field("recomputed_partitions").unwrap();
        assert!(recomputed.is_empty(), "got {recomputed:?}");
        let hits: u64 = body.field("cache_hits").unwrap();
        assert!(hits > 0);
        // Malformed delta ops are a 400, not a worker crash.
        let mut bad = request(3);
        bad.delta = Some("not a delta".to_string());
        let reply = exchange(&bad.to_line().unwrap());
        assert_eq!(reply.code, CODE_BAD_REQUEST);
        let stop = exchange(r#"{"id": 9, "verb": "shutdown"}"#);
        assert_eq!(stop.code, crate::CODE_OK);
        drop(writer);
        drop(reader);
        drop(daemon.join().unwrap());
    }

    #[test]
    fn port_file_records_the_ephemeral_address() {
        let dir = std::env::temp_dir().join(format!("cirstag-serve-pf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pf = dir.join("port");
        let config = ServeConfig {
            port_file: Some(pf.to_string_lossy().into_owned()),
            ..Default::default()
        };
        let (addr, daemon) = spawn_daemon(config);
        let written = std::fs::read_to_string(&pf).unwrap();
        assert_eq!(written.trim(), addr);
        crate::load::shutdown_daemon(&addr).unwrap();
        drop(daemon.join().unwrap());
        drop(std::fs::remove_dir_all(&dir));
    }
}
