//! Prepared-design store: parse + STA + GNN training, cached per netlist.
//!
//! Preparing a design (netlist parse → timing graph → GNN training) is the
//! expensive, analysis-independent prefix of every `analyze`/`sweep`
//! request. The store memoizes the result keyed by a fingerprint of the
//! netlist text and the training epochs, with single-flight deduplication:
//! when concurrent requests miss the same key, one worker trains while the
//! rest block and then share the [`std::sync::Arc`]. Training is seeded
//! (fixed model seed, deterministic STA targets), so every tenant sees the
//! same embedding regardless of arrival order.

use crate::ServeError;
use cirstag::{Fingerprint, Fingerprinter};
use cirstag_circuit::{
    extract_features, parse_netlist, CellLibrary, FeatureConfig, StaEngine, TimingGraph,
};
use cirstag_gnn::{r2_score, Activation, GnnModel, GraphContext, LayerSpec, TrainConfig};
use cirstag_graph::Graph;
use cirstag_linalg::DenseMatrix;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// A fully prepared design, ready for repeated stability analyses.
#[derive(Debug)]
pub struct PreparedDesign {
    /// Design name from the netlist header.
    pub name: String,
    /// The undirected pin graph `G`.
    pub graph: Graph,
    /// Per-pin features (the pipeline's input-side augmentation).
    pub features: DenseMatrix,
    /// The trained GNN's node embeddings `Y` (the output-side data).
    pub embedding: DenseMatrix,
    /// Training fit quality (R² of normalized arrival-time regression).
    pub r2: f64,
}

struct StoreState {
    ready: BTreeMap<Fingerprint, Arc<PreparedDesign>>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<Fingerprint>,
    in_flight: BTreeSet<Fingerprint>,
}

/// Concurrency-safe, bounded cache of [`PreparedDesign`]s.
pub struct DesignStore {
    state: Mutex<StoreState>,
    done: Condvar,
    capacity: usize,
}

/// Removes the in-flight mark when a build errors or panics, so waiting
/// tenants retry instead of deadlocking.
struct BuildGuard<'a> {
    store: &'a DesignStore,
    key: Fingerprint,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        self.store.lock().in_flight.remove(&self.key);
        self.store.done.notify_all();
    }
}

impl DesignStore {
    /// A store retaining at most `capacity` prepared designs (FIFO
    /// eviction).
    pub fn new(capacity: usize) -> Self {
        DesignStore {
            state: Mutex::new(StoreState {
                ready: BTreeMap::new(),
                order: VecDeque::new(),
                in_flight: BTreeSet::new(),
            }),
            done: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, StoreState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of designs currently prepared.
    pub fn len(&self) -> usize {
        self.lock().ready.len()
    }

    /// `true` when no design is prepared yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the prepared design for `netlist_text`, building (and
    /// caching) it on first use. Concurrent misses on the same key build
    /// once: the losers block until the winner publishes or fails.
    ///
    /// # Errors
    ///
    /// [`ServeError::Design`] when parsing, timing analysis, or GNN
    /// training fails.
    pub fn get_or_build(
        &self,
        netlist_text: &str,
        epochs: usize,
    ) -> Result<Arc<PreparedDesign>, ServeError> {
        let key = design_key(netlist_text, epochs);
        {
            let mut s = self.lock();
            loop {
                if let Some(d) = s.ready.get(&key) {
                    return Ok(Arc::clone(d));
                }
                if !s.in_flight.contains(&key) {
                    s.in_flight.insert(key);
                    break;
                }
                s = self.done.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
        }
        let guard = BuildGuard { store: self, key };
        let design = Arc::new(build_design(netlist_text, epochs)?);
        {
            let mut s = self.lock();
            s.ready.insert(key, Arc::clone(&design));
            s.order.push_back(key);
            while s.ready.len() > self.capacity {
                if let Some(oldest) = s.order.pop_front() {
                    s.ready.remove(&oldest);
                } else {
                    break;
                }
            }
        }
        drop(guard); // clears in-flight and wakes waiters
        Ok(design)
    }
}

/// Cache key: netlist text + training epochs (the only build inputs).
fn design_key(netlist_text: &str, epochs: usize) -> Fingerprint {
    let mut fp = Fingerprinter::new();
    fp.write_str("cirstag-design/v1");
    fp.write_str(netlist_text);
    fp.write_usize(epochs);
    fp.finish()
}

/// Parse → STA → GNN training, mirroring the CLI's `analyze` preamble.
fn build_design(netlist_text: &str, epochs: usize) -> Result<PreparedDesign, ServeError> {
    let err = |e: &dyn std::fmt::Display| ServeError::Design {
        reason: e.to_string(),
    };
    let library = CellLibrary::standard();
    let netlist = parse_netlist(netlist_text, &library).map_err(|e| err(&e))?;
    let timing = TimingGraph::new(&netlist, &library).map_err(|e| err(&e))?;
    let graph = timing.to_undirected_graph().map_err(|e| err(&e))?;
    let arcs: Vec<(usize, usize)> = timing.arcs().iter().map(|&(f, t, _)| (f, t)).collect();
    let ctx = GraphContext::with_dag(&graph, &arcs).map_err(|e| err(&e))?;
    let features = extract_features(
        &timing,
        &netlist,
        &library,
        &timing.pin_caps(),
        &FeatureConfig::default(),
    )
    .map_err(|e| err(&e))?;
    let engine = StaEngine::new(&timing);
    let critical = engine.critical_arrival().max(1e-12);
    let targets = DenseMatrix::from_rows(
        &engine
            .arrival_times()
            .iter()
            .map(|&a| vec![a / critical])
            .collect::<Vec<_>>(),
    )
    .map_err(|e| err(&e))?;
    let mut model = GnnModel::new(
        features.ncols(),
        &[
            LayerSpec::Linear {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::DagProp {
                dim: 32,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 16,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        0xC11,
    )
    .map_err(|e| err(&e))?;
    model
        .fit_regression(
            &ctx,
            &features,
            &targets,
            None,
            &TrainConfig {
                epochs,
                learning_rate: 8e-3,
                weight_decay: 1e-5,
                clip_norm: 5.0,
                ..TrainConfig::default()
            },
        )
        .map_err(|e| err(&e))?;
    let pred = model.forward(&ctx, &features, false).map_err(|e| err(&e))?;
    let r2 = r2_score(&pred, &targets);
    let embedding = model.embeddings(&ctx, &features).map_err(|e| err(&e))?;
    Ok(PreparedDesign {
        name: netlist.name.clone(),
        graph,
        features,
        embedding,
        r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cirstag_circuit::{generate_circuit, write_netlist, GeneratorConfig};

    fn tiny_netlist() -> String {
        let library = CellLibrary::standard();
        let netlist = generate_circuit(
            &library,
            &GeneratorConfig {
                num_gates: 30,
                ..Default::default()
            },
            7,
        )
        .unwrap();
        write_netlist(&netlist, &library)
    }

    #[test]
    fn build_error_is_typed_and_store_stays_usable() {
        let store = DesignStore::new(2);
        let err = store.get_or_build("this is not a netlist", 5).unwrap_err();
        assert!(matches!(err, ServeError::Design { .. }));
        // The failed key must not be stuck in-flight.
        let err2 = store.get_or_build("this is not a netlist", 5).unwrap_err();
        assert!(matches!(err2, ServeError::Design { .. }));
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_misses_build_once_and_share() {
        let text = tiny_netlist();
        let store = std::sync::Arc::new(DesignStore::new(2));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let store = std::sync::Arc::clone(&store);
            let text = text.clone();
            handles.push(std::thread::spawn(move || {
                store.get_or_build(&text, 8).unwrap()
            }));
        }
        let designs: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(store.len(), 1, "one cache entry for one netlist");
        // Everyone shares the same allocation — training ran once.
        for d in &designs {
            assert!(std::sync::Arc::ptr_eq(d, &designs[0]));
            assert_eq!(d.graph.num_nodes(), d.embedding.nrows());
        }
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let store = DesignStore::new(1);
        let a = tiny_netlist();
        store.get_or_build(&a, 4).unwrap();
        store.get_or_build(&a, 5).unwrap(); // different epochs → different key
        assert_eq!(store.len(), 1, "capacity 1 evicts the older entry");
    }
}
