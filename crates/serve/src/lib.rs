//! `cirstag-serve`: a resident analysis daemon for the CirSTAG pipeline.
//!
//! The daemon (`cirstag serve`) keeps trained designs, the stage-graph
//! artifact cache, and a worker pool resident in one process, and answers
//! newline-delimited JSON requests over TCP. The robustness posture:
//!
//! * **Bounded admission** — a fixed-capacity queue sheds excess load with
//!   a typed `503` instead of queueing without bound ([`AdmissionQueue`]).
//! * **Deadlines** — per-request wall-clock deadlines become a
//!   [`cirstag::CancelToken`] plus a stage-budget cap, so expiry cancels
//!   cleanly at the next stage boundary (`504`).
//! * **Panic isolation** — each worker runs jobs under `catch_unwind`; a
//!   panic yields a structured `500` for that request, the worker is
//!   respawned by its supervisor, and the process stays up.
//! * **Graceful degradation** — sustained backlog engages a hysteresis
//!   gate ([`OverloadGate`]) that forces the BestEffort failure policy
//!   until the queue drains.
//! * **Shared caching** — all tenants share one crash-safe
//!   [`cirstag::SharedArtifactCache`] (single-flight per fingerprint) and
//!   one [`DesignStore`] memoizing netlist → trained-GNN preparation.
//!
//! The wire protocol lives in [`protocol`]; [`load`] provides the matching
//! client and load generator used by the CLI, the bench harness, and CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod design;
mod error;
pub mod load;
pub mod protocol;
mod server;

pub use admission::{AdmissionQueue, Admit, OverloadGate, ServerStats};
pub use design::{DesignStore, PreparedDesign};
pub use error::ServeError;
pub use load::{run_load, shutdown_daemon, LoadConfig, LoadReport};
pub use protocol::{
    Request, Response, Verb, CODE_BAD_REQUEST, CODE_DEADLINE, CODE_INTERNAL, CODE_OK, CODE_SHED,
};
pub use server::{ServeConfig, Server};
