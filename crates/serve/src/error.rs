//! Typed errors for the serve layer.

use std::error::Error;
use std::fmt;

/// Error type for the `cirstag-serve` daemon and load generator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Binding, accepting, or reading/writing a socket failed.
    Io {
        /// What the daemon was doing when the I/O failed.
        context: String,
    },
    /// A request line was not valid protocol JSON.
    BadRequest {
        /// Parse- or shape-level description of the problem.
        reason: String,
    },
    /// Parsing or preparing a submitted design failed.
    Design {
        /// The underlying circuit/GNN error message.
        reason: String,
    },
    /// The stability analysis itself failed.
    Analysis {
        /// The underlying pipeline error message.
        reason: String,
    },
}

impl ServeError {
    /// An I/O error with `context` describing the failed operation.
    pub fn io(context: impl Into<String>) -> Self {
        ServeError::Io {
            context: context.into(),
        }
    }

    /// A malformed-request error.
    pub fn bad_request(reason: impl Into<String>) -> Self {
        ServeError::BadRequest {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context } => write!(f, "i/o error: {context}"),
            ServeError::BadRequest { reason } => write!(f, "bad request: {reason}"),
            ServeError::Design { reason } => write!(f, "design preparation failed: {reason}"),
            ServeError::Analysis { reason } => write!(f, "analysis failed: {reason}"),
        }
    }
}

impl Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        assert!(ServeError::io("bind 0.0.0.0:1")
            .to_string()
            .contains("bind"));
        assert!(ServeError::bad_request("no verb")
            .to_string()
            .contains("no verb"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}
