//! Meta-crate bundling the full CirSTAG reproduction stack.
//!
//! Re-exports each workspace crate under a short module name so examples and
//! integration tests can reach the whole system through one dependency:
//!
//! ```
//! use cirstag_suite::linalg::DenseMatrix;
//!
//! let m = DenseMatrix::identity(2);
//! assert_eq!(m.get(0, 0), 1.0);
//! ```

#![forbid(unsafe_code)]

pub use cirstag_circuit as circuit;
pub use cirstag_embed as embed;
pub use cirstag_gnn as gnn;
pub use cirstag_graph as graph;
pub use cirstag_linalg as linalg;
pub use cirstag_pgm as pgm;
pub use cirstag_reveng as reveng;
pub use cirstag_solver as solver;

/// The CirSTAG core pipeline (Phases 1–3, stability scores).
pub use cirstag as core;

/// The resident analysis daemon (`cirstag serve`) and its protocol client.
pub use cirstag_serve as serve;
