#!/usr/bin/env sh
# CI gate for the CirSTAG workspace. Fully offline; fails on the first error.
#
# Flags:
#   --bench-gate   additionally run the benchmark regression gate: a fresh
#                  bench_parallel run is compared stage-by-stage against the
#                  committed BENCH_parallel.json and the script fails if any
#                  stage regresses by more than 25% (+0.5 ms slack). Off by
#                  default because wall-clock numbers are machine-dependent;
#                  enable it on the reference box that produced the snapshot.
set -eu

BENCH_GATE=0
for arg in "$@"; do
    case "$arg" in
    --bench-gate) BENCH_GATE=1 ;;
    *)
        echo "ci.sh: unknown flag '$arg' (supported: --bench-gate)" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cirstag-lint (repo rules, waivers need reasons, committed report fresh)"
# The report is written to a scratch path and compared against the committed
# LINT_REPORT.json, so a stale snapshot fails CI instead of being silently
# rewritten by the gate itself.
CI_TMP=$(mktemp -d)
trap 'rm -rf "$CI_TMP"' EXIT
cargo run -q -p cirstag-lint -- --report "$CI_TMP/LINT_REPORT.json"
if ! cmp -s "$CI_TMP/LINT_REPORT.json" LINT_REPORT.json; then
    echo "ci.sh: LINT_REPORT.json is stale — regenerate with 'cargo run -p cirstag-lint' and commit it" >&2
    exit 1
fi

echo "==> release build (default features: parallel)"
cargo build --release

echo "==> release build (serial: --no-default-features)"
cargo build --release --no-default-features

echo "==> test suite"
cargo test -q

echo "==> test suite (validate + failpoints: engine audits and fault injection)"
# Also re-runs the HNSW recall-vs-exact parity and determinism suite
# (tests/knn_hnsw.rs) with the engine's self-audits enabled.
cargo test -q --features validate,failpoints

echo "==> simd feature (AVX2 kernels: clippy clean, bit-identical to scalar)"
# The only unsafe code in the workspace lives behind this off-by-default
# feature; tests/simd_parity.rs pins bitwise agreement with the scalar
# kernels (and is a no-op on hosts without AVX2, where the dispatchers
# fall back to the scalar loops).
cargo clippy -p cirstag-linalg --features simd --all-targets -- -D warnings
cargo test -q -p cirstag-linalg --features simd

echo "==> serve smoke test (daemon + 50-request load, zero dropped connections)"
# The CLI is only a dev-dependency of the root package, so the workspace
# build above does not refresh its binary.
cargo build --release -p cirstag-cli
SMOKE_DIR="$CI_TMP/smoke"
mkdir -p "$SMOKE_DIR"
./target/release/cirstag generate --gates 40 --seed 7 "$SMOKE_DIR/smoke.cir"
./target/release/cirstag serve --addr 127.0.0.1:0 --port-file "$SMOKE_DIR/port" &
SERVE_PID=$!
tries=0
while [ ! -s "$SMOKE_DIR/port" ]; do
    tries=$((tries + 1))
    if [ "$tries" -gt 100 ]; then
        echo "ci.sh: serve daemon never wrote its port file" >&2
        kill "$SERVE_PID" 2>/dev/null || true
        exit 1
    fi
    sleep 0.1
done
# `load --shutdown` exits 0 only when every request was served (shed or
# timed-out requests degrade to exit 2; dropped connections fail with 1),
# then asks the daemon to drain and stop.
./target/release/cirstag load "$SMOKE_DIR/smoke.cir" \
    --addr "$(cat "$SMOKE_DIR/port")" --requests 50 --clients 8 \
    --epochs 10 --shutdown
wait "$SERVE_PID"

echo "==> incremental ECO smoke test (cirstag diff on a ~50k-pin design)"
# An ephemeral workspace: partitioned analyze writes the ECO manifest plus
# the segmented artifact cache, one edge rescale re-scores through `diff`
# (warm: only the dirty partition recomputes), and `diff --cold` recomputes
# every partition as the bit-identity reference. The warm report must match
# the cold one byte for byte and come back at least 5x faster on one core.
# Pins 2832--2833 are a generator-deterministic edge interior to one BFS
# region of this design (both endpoints two hops from any other partition);
# if the generator or partitioner ever changes shape, apply_delta rejects
# the missing edge or the recompute-count greps below fail loudly.
ECO_DIR="$CI_TMP/eco"
mkdir -p "$ECO_DIR"
./target/release/cirstag generate --gates 16000 --seed 9 "$ECO_DIR/base.cir"
./target/release/cirstag analyze "$ECO_DIR/base.cir" \
    --partitions 8 --threads 1 --epochs 6 --cache-dir "$ECO_DIR/ws"
cat >"$ECO_DIR/ops.json" <<'EOF'
{
  "schema": "cirstag-delta/v1",
  "ops": [{ "op": "rescale_edge", "u": 2832, "v": 2833, "factor": 1.3 }]
}
EOF
./target/release/cirstag diff --workspace "$ECO_DIR/ws" --delta "$ECO_DIR/ops.json" \
    --threads 1 --out "$ECO_DIR/warm.json" | tee "$ECO_DIR/warm.log"
./target/release/cirstag diff --workspace "$ECO_DIR/ws" --delta "$ECO_DIR/ops.json" \
    --threads 1 --cold --out "$ECO_DIR/cold.json" | tee "$ECO_DIR/cold.log"
if ! cmp -s "$ECO_DIR/warm.json" "$ECO_DIR/cold.json"; then
    echo "ci.sh: warm diff report is not bit-identical to the cold reference" >&2
    exit 1
fi
grep -q "^recomputed 1 of 8 partitions" "$ECO_DIR/warm.log" || {
    echo "ci.sh: warm diff did not recompute exactly the one dirty partition" >&2
    exit 1
}
grep -q "^recomputed 8 of 8 partitions" "$ECO_DIR/cold.log" || {
    echo "ci.sh: cold diff did not recompute every partition" >&2
    exit 1
}
WARM_MS=$(sed -n 's/^diff wall: \([0-9]*\) ms$/\1/p' "$ECO_DIR/warm.log")
COLD_MS=$(sed -n 's/^diff wall: \([0-9]*\) ms$/\1/p' "$ECO_DIR/cold.log")
echo "eco diff: warm ${WARM_MS}ms vs cold ${COLD_MS}ms"
awk -v warm="$WARM_MS" -v cold="$COLD_MS" 'BEGIN {
    if (warm == "" || cold == "") { print "ci.sh: missing diff wall lines"; exit 1 }
    if (warm * 5 > cold) {
        printf "ci.sh: warm diff (%sms) is not 5x faster than cold (%sms)\n", warm, cold
        exit 1
    }
}'

if [ "$BENCH_GATE" -eq 1 ]; then
    echo "==> bench gate (fresh run vs committed BENCH_parallel.json)"
    cargo run -q -p cirstag-bench --release --bin bench_parallel -- --gate
fi

echo "CI OK"
