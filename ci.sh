#!/usr/bin/env sh
# CI gate for the CirSTAG workspace. Fully offline; fails on the first error.
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cirstag-lint (repo rules, waivers need reasons)"
cargo run -q -p cirstag-lint

echo "==> release build (default features: parallel)"
cargo build --release

echo "==> release build (serial: --no-default-features)"
cargo build --release --no-default-features

echo "==> test suite"
cargo test -q

echo "CI OK"
