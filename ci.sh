#!/usr/bin/env sh
# CI gate for the CirSTAG workspace. Fully offline; fails on the first error.
#
# Flags:
#   --bench-gate   additionally run the benchmark regression gate: a fresh
#                  bench_parallel run is compared stage-by-stage against the
#                  committed BENCH_parallel.json and the script fails if any
#                  stage regresses by more than 25% (+0.5 ms slack). Off by
#                  default because wall-clock numbers are machine-dependent;
#                  enable it on the reference box that produced the snapshot.
set -eu

BENCH_GATE=0
for arg in "$@"; do
    case "$arg" in
    --bench-gate) BENCH_GATE=1 ;;
    *)
        echo "ci.sh: unknown flag '$arg' (supported: --bench-gate)" >&2
        exit 2
        ;;
    esac
done

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cirstag-lint (repo rules, waivers need reasons)"
cargo run -q -p cirstag-lint

echo "==> release build (default features: parallel)"
cargo build --release

echo "==> release build (serial: --no-default-features)"
cargo build --release --no-default-features

echo "==> test suite"
cargo test -q

echo "==> test suite (validate + failpoints: engine audits and fault injection)"
cargo test -q --features validate,failpoints

if [ "$BENCH_GATE" -eq 1 ]; then
    echo "==> bench gate (fresh run vs committed BENCH_parallel.json)"
    cargo run -q -p cirstag-bench --release --bin bench_parallel -- --gate
fi

echo "CI OK"
