//! HNSW neighbor-index invariants at the integration level.
//!
//! Three contracts from the approximate-NN design:
//!
//! 1. **Recall floor** — on both uniform and clustered point sets (up to
//!    2k points), the index's neighbor lists recover at least 95% of the
//!    true k-nearest neighbors at the default search beam.
//! 2. **Thread-count independence** — the Phase-2 graph built through
//!    `KnnMethod::Hnsw` is bit-identical at 1, 2 and 8 worker threads:
//!    construction is serial and the parallel query fan-out is slot-stable.
//! 3. **Warm/cold cache identity** — a full pipeline run under the HNSW
//!    backend replayed from a shared on-disk artifact cache (a stand-in for
//!    a second process) reproduces the fresh run bit for bit.
//!
//! The thread-count and cache checks share one `#[test]` because the worker
//! pool is process-global; the recall property does not depend on the pool
//! size, so it can run alongside.

use cirstag_suite::core::{ArtifactCache, CirStag, CirStagConfig};
use cirstag_suite::embed::{HnswIndex, HnswParams, KnnMethod};
use cirstag_suite::graph::Graph;
use cirstag_suite::linalg::{par, vecops, DenseMatrix};
use proptest::prelude::*;

/// Brute-force k-nearest neighbors of `q` (self excluded), ordered by
/// `(distance, id)` — the same total order the index uses.
fn exact_knn_ids(points: &DenseMatrix, q: usize, k: usize) -> Vec<usize> {
    let mut all: Vec<(f64, usize)> = (0..points.nrows())
        .filter(|&p| p != q)
        .map(|p| (vecops::dist2_sq(points.row(q), points.row(p)), p))
        .collect();
    all.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all.truncate(k);
    all.into_iter().map(|(_, p)| p).collect()
}

/// Fraction of true k-nearest neighbors the index recovers across all
/// queries.
fn hnsw_recall(points: &DenseMatrix, k: usize) -> f64 {
    let params = HnswParams::default();
    let index = HnswIndex::build(points, &params, 0xACE5).expect("hnsw build");
    let mut scratch = index.scratch();
    let mut out = Vec::with_capacity(k + 1);
    let mut hits = 0usize;
    let n = points.nrows();
    for q in 0..n {
        let truth = exact_knn_ids(points, q, k);
        index.knn_into(points, q, k, params.ef_search, &mut scratch, &mut out);
        hits += truth
            .iter()
            .filter(|t| out.iter().any(|&(p, _)| p == **t))
            .count();
    }
    hits as f64 / (n * k) as f64
}

fn uniform_points(n: usize, dim: usize, seed: u64) -> DenseMatrix {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let data: Vec<f64> = (0..n * dim).map(|_| next()).collect();
    DenseMatrix::from_vec(n, dim, data).expect("points")
}

/// Points drawn around a handful of well-separated cluster centers — the
/// adversarial shape for graph-based indexes (inter-cluster hops are rare).
fn clustered_points(n: usize, dim: usize, clusters: usize, seed: u64) -> DenseMatrix {
    let centers = uniform_points(clusters, dim, seed ^ 0xC0FFEE);
    let noise = uniform_points(n, dim, seed);
    let mut data = Vec::with_capacity(n * dim);
    for i in 0..n {
        let c = centers.row(i % clusters);
        let w = noise.row(i);
        for d in 0..dim {
            data.push(10.0 * c[d] + 0.3 * w[d]);
        }
    }
    DenseMatrix::from_vec(n, dim, data).expect("clustered points")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn recall_floor_on_uniform_sets(
        n in 150usize..1200,
        dim in 2usize..5,
        seed in 1u64..1_000_000_000,
    ) {
        let points = uniform_points(n, dim, seed);
        let recall = hnsw_recall(&points, 10);
        prop_assert!(recall >= 0.95, "uniform recall {recall:.3} < 0.95 (n={n}, dim={dim})");
    }

    #[test]
    fn recall_floor_on_clustered_sets(
        n in 150usize..2000,
        clusters in 3usize..8,
        seed in 1u64..1_000_000_000,
    ) {
        let points = clustered_points(n, 3, clusters, seed);
        let recall = hnsw_recall(&points, 10);
        prop_assert!(
            recall >= 0.95,
            "clustered recall {recall:.3} < 0.95 (n={n}, clusters={clusters})"
        );
    }
}

fn ring_graph(n: usize) -> Graph {
    let edges: Vec<(usize, usize, f64)> = (0..n)
        .map(|i| (i, (i + 1) % n, 1.0 + (i % 3) as f64 * 0.25))
        .collect();
    Graph::from_edges(n, &edges).expect("ring")
}

fn hnsw_config(threads: usize) -> CirStagConfig {
    let mut config = CirStagConfig {
        embedding_dim: 8,
        knn_k: 6,
        num_eigenpairs: 5,
        num_threads: threads,
        ..Default::default()
    };
    config.knn.method = KnnMethod::hnsw_default();
    config
}

/// Edge list of the HNSW-built Phase-2 kNN graph as raw bits.
fn knn_edge_bits(points: &DenseMatrix, threads: usize) -> Vec<(usize, usize, u64)> {
    par::set_num_threads(threads);
    let config = hnsw_config(threads);
    let graph = cirstag_suite::embed::knn_graph(points, 6, &config.knn).expect("hnsw knn graph");
    graph
        .edges()
        .iter()
        .map(|e| (e.u, e.v, e.weight.to_bits()))
        .collect()
}

#[test]
fn hnsw_pipeline_is_thread_count_and_cache_invariant() {
    let n = 600;
    let points = uniform_points(n, 6, 0xD15C);

    // --- bit-identity across worker-pool sizes -----------------------------
    let base = knn_edge_bits(&points, 1);
    for threads in [2usize, 8] {
        let other = knn_edge_bits(&points, threads);
        assert_eq!(base, other, "HNSW graph diverged at {threads} threads");
    }
    par::set_num_threads(0);

    // --- warm/cold identity through a shared disk cache --------------------
    // Two cache instances over one directory model two processes: the first
    // populates the disk layer, the second replays from it having computed
    // nothing. Both must reproduce the uncached run exactly.
    let g = ring_graph(n);
    let emb = uniform_points(n, 6, 0xE7A9);
    let dir = std::env::temp_dir().join(format!("cirstag-hnsw-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let fresh = CirStag::new(hnsw_config(0))
        .analyze(&g, None, &emb)
        .expect("uncached run");
    let mut cold_cache = ArtifactCache::new().with_disk_dir(&dir);
    let cold = CirStag::new(hnsw_config(0))
        .analyze_cached(&g, None, &emb, &mut cold_cache)
        .expect("cold cached run");
    let mut warm_cache = ArtifactCache::new().with_disk_dir(&dir);
    let warm = CirStag::new(hnsw_config(0))
        .analyze_cached(&g, None, &emb, &mut warm_cache)
        .expect("warm cached run");
    let _ = std::fs::remove_dir_all(&dir);

    let bits = |scores: &[f64]| scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&fresh.node_scores), bits(&cold.node_scores));
    assert_eq!(bits(&cold.node_scores), bits(&warm.node_scores));
    assert_eq!(bits(&cold.eigenvalues), bits(&warm.eigenvalues));
    // The warm run replayed everything, so its diagnostics must carry the
    // replay markers and the same approximate-kNN bookkeeping.
    assert!(
        warm.diagnostics
            .cache
            .iter()
            .any(|r| r.status == "replayed"),
        "warm run should have replayed cached stages"
    );
    assert_eq!(
        cold.diagnostics.approx_knn.len(),
        warm.diagnostics.approx_knn.len(),
        "replayed runs must restore the approximate-kNN records"
    );
    assert!(
        cold.diagnostics
            .approx_knn
            .iter()
            .all(|r| r.method == "hnsw"),
        "both manifold stages should report the hnsw backend"
    );
}
