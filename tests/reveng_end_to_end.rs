//! Case-Study-B integration: labelled dataset → GAT classifier → CirSTAG →
//! topology-perturbation validation.

use cirstag_bench::case_b::{RevengCase, RevengCaseConfig};
use cirstag_suite::core::{top_fraction, CirStagConfig};
use cirstag_suite::reveng::{build_interconnected, rewire_gate_inputs, InterconnectedConfig};

fn small_case() -> RevengCase {
    RevengCase::build(&RevengCaseConfig {
        num_modules: 14,
        seed: 4,
        epochs: 150,
        heads: 2,
        head_dim: 10,
        train_fraction: 0.8,
    })
    .expect("case builds")
}

#[test]
fn gat_reaches_high_accuracy_and_cirstag_scores_gates() {
    let mut case = small_case();
    assert!(case.accuracy > 0.85, "accuracy {}", case.accuracy);
    let report = case
        .stability(CirStagConfig {
            embedding_dim: 10,
            num_eigenpairs: 10,
            knn_k: 6,
            ..Default::default()
        })
        .expect("stability");
    assert_eq!(report.node_scores.len(), case.dataset.netlist.num_cells());
    assert!(report.node_scores.iter().all(|s| s.is_finite()));
}

#[test]
fn rewiring_more_gates_degrades_metrics_more() {
    let mut case = small_case();
    let report = case
        .stability(CirStagConfig {
            embedding_dim: 10,
            num_eigenpairs: 10,
            knn_k: 6,
            ..Default::default()
        })
        .expect("stability");
    let few = top_fraction(&report.node_scores, 0.05, None);
    let many = top_fraction(&report.node_scores, 0.25, None);
    let hit_few = case.rewire_outcome(&few, 2).expect("few");
    let hit_many = case.rewire_outcome(&many, 2).expect("many");
    assert!(hit_many.cosine <= hit_few.cosine + 1e-9);
    assert!(hit_many.f1 <= hit_few.f1 + 1e-9);
}

#[test]
fn rewiring_preserves_structural_validity_at_scale() {
    let d = build_interconnected(
        &InterconnectedConfig {
            num_modules: 30,
            ..Default::default()
        },
        8,
    )
    .expect("dataset");
    let victims: Vec<usize> = (0..d.netlist.num_cells()).step_by(2).collect();
    let rewired = rewire_gate_inputs(&d.netlist, &victims, 3).expect("rewire");
    rewired.validate(&d.library).expect("still valid");
    // Labels stay aligned (gate count unchanged).
    assert_eq!(rewired.num_cells(), d.netlist.num_cells());
}

#[test]
fn classifier_degrades_gracefully_not_catastrophically() {
    // Rewiring 10% of gates should dent F1, not zero it: the features still
    // carry each gate's own kind.
    let mut case = small_case();
    let report = case
        .stability(CirStagConfig {
            embedding_dim: 10,
            num_eigenpairs: 10,
            knn_k: 6,
            ..Default::default()
        })
        .expect("stability");
    let victims = top_fraction(&report.node_scores, 0.10, None);
    let outcome = case.rewire_outcome(&victims, 5).expect("rewire");
    assert!(outcome.f1 > 0.4, "classifier collapsed: F1 {}", outcome.f1);
    assert!(outcome.f1 <= case.f1 + 1e-9);
    assert!(outcome.cosine > 0.5 && outcome.cosine < 1.0);
}
