//! Property-based invariants of the manifold machinery, spanning the
//! embed / pgm / solver crates.

use cirstag_suite::embed::{knn_graph, spectral_embedding, KnnConfig, SpectralConfig};
use cirstag_suite::graph::Graph;
use cirstag_suite::linalg::DenseMatrix;
use cirstag_suite::pgm::{learn_manifold, PgmConfig};
use cirstag_suite::solver::ResistanceEstimator;
use proptest::prelude::*;

/// Random connected graph: a ring plus random chords, 8–40 nodes.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        8usize..40,
        proptest::collection::vec((0usize..1000, 0usize..1000, 0.2f64..5.0), 0..30),
    )
        .prop_map(|(n, chords)| {
            let mut edges: Vec<(usize, usize, f64)> =
                (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
            for (a, b, w) in chords {
                let u = a % n;
                let v = b % n;
                if u != v {
                    edges.push((u, v, w));
                }
            }
            Graph::from_edges(n, &edges).expect("valid edges")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spectral_embedding_rows_are_finite_and_bounded(g in arb_connected_graph()) {
        let m = 4.min(g.num_nodes() - 1);
        let u = spectral_embedding(&g, m, &SpectralConfig::default()).expect("embedding");
        prop_assert_eq!(u.shape(), (g.num_nodes(), m));
        prop_assert!(u.all_finite());
        // Columns are weighted unit eigenvectors: norms within [0, sqrt(2)].
        for j in 0..m {
            let col = u.column(j);
            let norm: f64 = col.iter().map(|v| v * v).sum::<f64>().sqrt();
            prop_assert!(norm <= 2.0_f64.sqrt() + 1e-6, "column {} norm {}", j, norm);
        }
    }

    #[test]
    fn knn_manifold_is_connected_and_sane(g in arb_connected_graph()) {
        let m = 4.min(g.num_nodes() - 1);
        let u = spectral_embedding(&g, m, &SpectralConfig::default()).expect("embedding");
        let k = 4.min(g.num_nodes() - 1);
        let dense = knn_graph(&u, k, &KnnConfig::default()).expect("knn");
        prop_assert!(dense.is_connected());
        prop_assert_eq!(dense.num_nodes(), g.num_nodes());
        // Union-symmetrized kNN has between k·n/2 and k·n edges (+backbone).
        prop_assert!(dense.num_edges() >= k * g.num_nodes() / 2);
        for e in dense.edges() {
            prop_assert!(e.weight > 0.0 && e.weight.is_finite());
        }
    }

    #[test]
    fn pgm_sparsifier_preserves_connectivity_and_budget(g in arb_connected_graph()) {
        let m = 4.min(g.num_nodes() - 1);
        let u = spectral_embedding(&g, m, &SpectralConfig::default()).expect("embedding");
        let k = 5.min(g.num_nodes() - 1);
        let dense = knn_graph(&u, k, &KnnConfig::default()).expect("knn");
        let cfg = PgmConfig { degree_target: 3.0, ..Default::default() };
        let result = learn_manifold(&dense, &cfg).expect("sparsify");
        prop_assert!(result.graph.is_connected());
        prop_assert!(result.graph.num_edges() <= dense.num_edges());
        let budget = (3.0 * g.num_nodes() as f64 / 2.0).ceil() as usize;
        prop_assert!(
            result.graph.num_edges() <= budget.max(g.num_nodes() - 1) + 1,
            "edges {} over budget {}",
            result.graph.num_edges(),
            budget
        );
        prop_assert_eq!(
            result.stats.edges_after,
            result.stats.tree_edges + result.stats.kept_by_lrd + result.stats.kept_by_eta
        );
    }

    #[test]
    fn sketched_resistance_tracks_exact(g in arb_connected_graph()) {
        let exact = ResistanceEstimator::exact(&g).expect("exact");
        let sketch = ResistanceEstimator::sketched(&g, 512, 9).expect("sketch");
        for e in g.edges().iter().take(10) {
            let re = exact.query(e.u, e.v).expect("exact query");
            let rs = sketch.query(e.u, e.v).expect("sketch query");
            prop_assert!(
                (rs - re).abs() <= 0.35 * re + 1e-9,
                "edge ({}, {}): sketch {} vs exact {}",
                e.u, e.v, rs, re
            );
        }
    }

    #[test]
    fn foster_theorem_holds(g in arb_connected_graph()) {
        // Σ_e w_e · R_eff(e) = |V| − 1 for any connected graph.
        let exact = ResistanceEstimator::exact(&g).expect("exact");
        let total: f64 = g
            .edges()
            .iter()
            .map(|e| e.weight * exact.query(e.u, e.v).expect("query"))
            .sum();
        let expect = (g.num_nodes() - 1) as f64;
        prop_assert!((total - expect).abs() < 1e-4 * expect.max(1.0), "foster sum {}", total);
    }
}

#[test]
fn embedding_separates_communities() {
    // Two rings joined by a single weak edge: the second spectral coordinate
    // must separate the communities.
    let n = 12;
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n, 1.0));
        edges.push((n + i, n + (i + 1) % n, 1.0));
    }
    edges.push((0, n, 0.05));
    let g = Graph::from_edges(2 * n, &edges).unwrap();
    let u = spectral_embedding(&g, 2, &SpectralConfig::default()).unwrap();
    // Fiedler-like column: constant sign per community.
    let col: Vec<f64> = u.column(1);
    let left_pos = col[..n].iter().filter(|v| **v > 0.0).count();
    let right_pos = col[n..].iter().filter(|v| **v > 0.0).count();
    assert!(
        (left_pos >= n - 1 && right_pos <= 1) || (left_pos <= 1 && right_pos >= n - 1),
        "communities not separated: {left_pos} vs {right_pos}"
    );
}

#[test]
fn knn_on_embedding_recovers_ring_locality() {
    let n = 30;
    let g = Graph::from_edges(
        n,
        &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>(),
    )
    .unwrap();
    let u = spectral_embedding(&g, 3, &SpectralConfig::default()).unwrap();
    let knn = knn_graph(&u, 2, &KnnConfig::default()).unwrap();
    // Most kNN edges should be ring-adjacent (distance 1 or 2 on the ring).
    // Note: a perfectly symmetric ring has degenerate Laplacian eigenpairs,
    // and a single-vector Krylov space recovers only one direction per
    // eigenspace, so some folding is expected — hence the 60% bar (real
    // circuit graphs are irregular and do not hit this).
    let close = knn
        .edges()
        .iter()
        .filter(|e| {
            let d = (e.u as i64 - e.v as i64).rem_euclid(n as i64);
            d <= 2 || d >= n as i64 - 2
        })
        .count();
    assert!(
        close * 10 >= knn.num_edges() * 6,
        "only {close}/{} edges are ring-local",
        knn.num_edges()
    );
}

#[test]
fn pgm_handles_degenerate_duplicate_points() {
    // All points identical: kNN weights hit the ε floor, the backbone keeps
    // the graph connected, and sparsification must not panic.
    let pts = DenseMatrix::from_vec(10, 2, vec![1.0; 20]).unwrap();
    let dense = knn_graph(&pts, 3, &KnnConfig::default()).unwrap();
    assert!(dense.is_connected());
    let result = learn_manifold(&dense, &PgmConfig::default()).unwrap();
    assert!(result.graph.is_connected());
}
