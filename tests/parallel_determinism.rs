//! Thread-count independence: the full CirSTAG pipeline must produce
//! bit-identical results at 1, 2 and N worker threads.
//!
//! The parallel layer only fans out independent per-index work (kNN
//! queries, resistance probes, matmul rows, DMD edge scores) and merges
//! results in fixed index order, so every float operation happens in the
//! same order regardless of the pool size. This test pins that contract
//! at the integration level.
//!
//! Everything runs inside a single `#[test]` because the thread count is
//! process-global (`CirStagConfig::num_threads` feeds a shared pool
//! configuration); separate tests would race on it under the parallel
//! test harness.

use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};
use cirstag_suite::core::CirStagConfig;
use cirstag_suite::linalg::{par, CooMatrix, CsrMatrix};

/// Laplacian of a `side × side` grid graph — large enough (for `side = 60`:
/// 3600 nodes, 17760 nonzeros) to cross both the spmv and the panel-spmm
/// parallel thresholds.
fn grid_laplacian(side: usize) -> CsrMatrix {
    let n = side * side;
    let idx = |r: usize, c: usize| r * side + c;
    let mut coo = CooMatrix::new(n, n);
    let mut link = |i: usize, j: usize| {
        coo.push(i, j, -1.0).expect("in bounds");
        coo.push(j, i, -1.0).expect("in bounds");
        coo.push(i, i, 1.0).expect("in bounds");
        coo.push(j, j, 1.0).expect("in bounds");
    };
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side {
                link(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < side {
                link(idx(r, c), idx(r + 1, c));
            }
        }
    }
    coo.to_csr()
}

#[test]
fn pipeline_results_are_identical_across_thread_counts() {
    let mut case = TimingCase::build(
        "par-det",
        &TimingCaseConfig {
            num_gates: 150,
            seed: 77,
            epochs: 60,
            hidden: 16,
        },
    )
    .expect("case builds");

    let base = CirStagConfig {
        embedding_dim: 12,
        num_eigenpairs: 10,
        knn_k: 8,
        ..Default::default()
    };

    // 0 = all cores; on a single-core runner the pool still oversubscribes
    // for the explicit counts, so the parallel code paths are exercised.
    let runs: Vec<_> = [1usize, 2, 4, 0]
        .iter()
        .map(|&threads| {
            let report = case
                .stability(CirStagConfig {
                    num_threads: threads,
                    ..base
                })
                .unwrap_or_else(|e| panic!("analysis at {threads} threads: {e}"));
            assert!(report.timings.threads >= 1);
            report
        })
        .collect();

    let reference = &runs[0];
    assert!(reference.node_scores.iter().all(|s| s.is_finite()));
    for (i, run) in runs.iter().enumerate().skip(1) {
        // Bit-identical scores, not merely approximately equal.
        assert_eq!(
            reference.node_scores, run.node_scores,
            "node scores diverge at thread setting #{i}"
        );
        assert_eq!(
            reference.edge_scores, run.edge_scores,
            "edge scores diverge at thread setting #{i}"
        );
        assert_eq!(
            reference.eigenvalues, run.eigenvalues,
            "eigenvalues diverge at thread setting #{i}"
        );
        assert_eq!(
            reference.ranking(),
            run.ranking(),
            "stability ranking diverges at thread setting #{i}"
        );
    }

    // Kernel-level parity: spmv and panel spmm must also be bit-identical
    // across thread counts once their parallel thresholds are crossed. This
    // shares the pipeline's #[test] because the thread pool is process-global.
    let a = grid_laplacian(60);
    let n = a.shape().0;
    let k = 16usize;
    assert!(
        a.nnz() >= 16 * 1024,
        "grid Laplacian must cross the spmv parallel threshold (nnz = {})",
        a.nnz()
    );
    assert!(
        a.nnz() * k >= 64 * 1024,
        "panel product must cross the spmm parallel threshold"
    );
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
    let xp: Vec<f64> = (0..n * k).map(|i| (i as f64 * 0.11).cos()).collect();

    par::set_num_threads(1);
    let y_serial = a.mul_vec(&x);
    let mut yp_serial = vec![0.0; n * k];
    a.mul_panel_into(&xp, &mut yp_serial, k);

    for threads in [2usize, 4, 0] {
        par::set_num_threads(threads);
        let y = a.mul_vec(&x);
        assert_eq!(
            y_serial, y,
            "spmv diverges from serial at {threads} threads"
        );
        let mut yp = vec![0.0; n * k];
        a.mul_panel_into(&xp, &mut yp, k);
        assert_eq!(
            yp_serial, yp,
            "panel spmm diverges from serial at {threads} threads"
        );
    }
}
