//! Thread-count independence: the full CirSTAG pipeline must produce
//! bit-identical results at 1, 2 and N worker threads.
//!
//! The parallel layer only fans out independent per-index work (kNN
//! queries, resistance probes, matmul rows, DMD edge scores) and merges
//! results in fixed index order, so every float operation happens in the
//! same order regardless of the pool size. This test pins that contract
//! at the integration level.
//!
//! Everything runs inside a single `#[test]` because the thread count is
//! process-global (`CirStagConfig::num_threads` feeds a shared pool
//! configuration); separate tests would race on it under the parallel
//! test harness.

use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};
use cirstag_suite::core::CirStagConfig;

#[test]
fn pipeline_results_are_identical_across_thread_counts() {
    let mut case = TimingCase::build(
        "par-det",
        &TimingCaseConfig {
            num_gates: 150,
            seed: 77,
            epochs: 60,
            hidden: 16,
        },
    )
    .expect("case builds");

    let base = CirStagConfig {
        embedding_dim: 12,
        num_eigenpairs: 10,
        knn_k: 8,
        ..Default::default()
    };

    // 0 = all cores; on a single-core runner the pool still oversubscribes
    // for the explicit counts, so the parallel code paths are exercised.
    let runs: Vec<_> = [1usize, 2, 4, 0]
        .iter()
        .map(|&threads| {
            let report = case
                .stability(CirStagConfig {
                    num_threads: threads,
                    ..base
                })
                .unwrap_or_else(|e| panic!("analysis at {threads} threads: {e}"));
            assert!(report.timings.threads >= 1);
            report
        })
        .collect();

    let reference = &runs[0];
    assert!(reference.node_scores.iter().all(|s| s.is_finite()));
    for (i, run) in runs.iter().enumerate().skip(1) {
        // Bit-identical scores, not merely approximately equal.
        assert_eq!(
            reference.node_scores, run.node_scores,
            "node scores diverge at thread setting #{i}"
        );
        assert_eq!(
            reference.edge_scores, run.edge_scores,
            "edge scores diverge at thread setting #{i}"
        );
        assert_eq!(
            reference.eigenvalues, run.eigenvalues,
            "eigenvalues diverge at thread setting #{i}"
        );
        assert_eq!(
            reference.ranking(),
            run.ranking(),
            "stability ranking diverges at thread setting #{i}"
        );
    }
}
