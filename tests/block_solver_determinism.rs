//! Blocked-solver determinism: effective-resistance scores computed through
//! the block-CG path must be bit-identical to per-probe scalar CG solves,
//! and invariant across worker-thread counts.
//!
//! The block solver advances every probe column off a single CSR traversal,
//! but its per-column reductions accumulate in the same fixed row order as
//! the scalar loop, so column `j` of `solve_block` is the *same float
//! sequence* as a scalar `solve` of that column — at any pool size.
//!
//! Everything runs inside a single `#[test]` because the thread count is
//! process-global; separate tests would race on it under the parallel test
//! harness.

use cirstag_suite::graph::Graph;
use cirstag_suite::linalg::{par, DenseMatrix};
use cirstag_suite::solver::LaplacianSolver;

/// `side × side` grid with mildly heterogeneous weights, large enough that
/// the panel SpMM crosses the parallel-dispatch threshold.
fn grid(side: usize) -> Graph {
    let n = side * side;
    let mut edges = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                edges.push((i, i + 1, 1.0 + ((r + c) % 3) as f64 * 0.25));
            }
            if r + 1 < side {
                edges.push((i, i + side, 1.0 + ((r * c) % 2) as f64 * 0.5));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("grid builds")
}

#[test]
fn block_resistance_scores_match_per_probe_cg_across_thread_counts() {
    let g = grid(9); // 81 nodes
    let n = g.num_nodes();
    // Probe the first 13 edges (odd width exercises the ragged panel tail).
    let probes: Vec<(usize, usize, f64)> = g
        .edges()
        .iter()
        .take(13)
        .map(|e| (e.u, e.v, e.weight))
        .collect();
    let k = probes.len();

    let mut per_thread_scores: Vec<Vec<f64>> = Vec::new();
    for &threads in &[1usize, 2, 8] {
        par::set_num_threads(threads);
        let solver = LaplacianSolver::new(&g).expect("solver builds");

        // One RHS column per probe edge: b = e_u − e_v.
        let mut b = DenseMatrix::zeros(n, k);
        for (j, &(u, v, _)) in probes.iter().enumerate() {
            b.set(u, j, 1.0);
            b.set(v, j, -1.0);
        }
        let x = solver.solve_block(&b).expect("block solve");

        // Reference: one scalar CG solve per probe, same solver, same rung.
        let mut scores = Vec::with_capacity(k);
        for (j, &(u, v, w)) in probes.iter().enumerate() {
            let mut rhs = vec![0.0; n];
            rhs[u] = 1.0;
            rhs[v] = -1.0;
            let xs = solver.solve(&rhs).expect("scalar solve");
            let scalar_score = w * (xs[u] - xs[v]);
            let block_score = w * (x.get(u, j) - x.get(v, j));
            assert!(block_score.is_finite() && block_score > 0.0);
            assert_eq!(
                block_score.to_bits(),
                scalar_score.to_bits(),
                "probe {j} ({u},{v}) diverges from the scalar path at {threads} threads"
            );
            scores.push(block_score);
        }
        per_thread_scores.push(scores);
    }
    par::set_num_threads(0);

    // Thread-count invariance: every setting produced the same bits.
    let reference = &per_thread_scores[0];
    for (i, run) in per_thread_scores.iter().enumerate().skip(1) {
        for (j, (a, b)) in reference.iter().zip(run).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "probe {j} diverges at thread setting #{i}"
            );
        }
    }
}
