//! Failpoint-driven chaos test for the `cirstag serve` daemon.
//!
//! Replays a request stream against an in-process daemon while a seeded
//! schedule injects faults at the three serve-side failpoints —
//! `serve/accept` (transient accept failures), `serve/worker-panic`
//! (panics inside the worker's job execution), and `cache/disk-corrupt`
//! (truncated artifact writes) — under both the strict and the best-effort
//! base policy. The invariants:
//!
//! * the daemon process never dies: every batch completes and the final
//!   `health`/`shutdown` exchanges succeed;
//! * every request gets a typed response (served, shed, timed out, or a
//!   structured `500`) — no dropped connections;
//! * every caught panic is paired with a worker respawn in `stats`;
//! * artifacts corrupted on disk are quarantined (not trusted, not fatal)
//!   when a fresh daemon reads them back.
//!
//! The failpoint registry is process-global, so the whole test runs under
//! one lock and resets the registry between rounds (see
//! `failure_injection.rs` for the same idiom).

#![cfg(feature = "failpoints")]

use cirstag_suite::circuit::{generate_circuit, write_netlist, CellLibrary, GeneratorConfig};
use cirstag_suite::core::failpoint as fp;
use cirstag_suite::serve::{
    run_load, LoadConfig, Request, Response, ServeConfig, Server, Verb, CODE_OK,
};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

struct Serial {
    _guard: MutexGuard<'static, ()>,
}

impl Drop for Serial {
    fn drop(&mut self) {
        fp::reset();
    }
}

fn serial() -> Serial {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK
        .get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    fp::reset();
    Serial { _guard: guard }
}

fn chaos_netlist() -> String {
    let library = CellLibrary::standard();
    let netlist = generate_circuit(
        &library,
        &GeneratorConfig {
            num_gates: 30,
            ..Default::default()
        },
        13,
    )
    .unwrap();
    write_netlist(&netlist, &library)
}

/// Deterministic LCG driving the injection schedule.
fn next(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

fn spawn_daemon(config: ServeConfig) -> (String, std::thread::JoinHandle<String>) {
    let server = Server::bind(&config).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || {
        let mut out = Vec::new();
        server.run(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    });
    (addr, handle)
}

/// One synchronous request/response exchange on a fresh connection.
fn exchange(addr: &str, request: &Request) -> Response {
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{}", request.to_line().unwrap()).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    Response::parse(reply.trim_end()).unwrap()
}

fn sweep_request(id: u64, netlist: &str, s: usize) -> Request {
    Request {
        id,
        verb: Verb::Sweep,
        netlist: Some(netlist.to_string()),
        epochs: 6,
        dmd_s: vec![s],
        deadline_ms: None,
        top: 0.10,
        best_effort: None,
        delta: None,
        partitions: None,
    }
}

/// Runs the chaos schedule against one daemon and returns the `s` values
/// whose artifacts were written while `cache/disk-corrupt` was armed.
fn chaos_run(best_effort: bool, cache_dir: &std::path::Path, seed: u64) -> Vec<usize> {
    let netlist = chaos_netlist();
    let (addr, daemon) = spawn_daemon(ServeConfig {
        workers: 2,
        queue_capacity: 8,
        downgrade_high: 6,
        downgrade_low: 2,
        best_effort,
        cache_dir: Some(cache_dir.to_string_lossy().into_owned()),
        ..Default::default()
    });

    let mut rng = seed;
    let mut corrupted_s = Vec::new();
    let mut injected_panics = 0u64;
    for round in 0..12 {
        match next(&mut rng) % 4 {
            0 => {
                // Transient accept failures: pending connections ride the
                // kernel backlog, nothing is lost.
                fp::arm("serve/accept", fp::FailAction::Error, 2);
            }
            1 => {
                let times = 1 + (next(&mut rng) % 3) as usize;
                fp::arm("serve/worker-panic", fp::FailAction::Error, times);
            }
            2 => {
                // Corrupt the next artifact write, forced to happen by a
                // sweep with a round-unique subspace size (fresh stage key).
                fp::arm("cache/disk-corrupt", fp::FailAction::Error, 1);
                let s = 3 + round;
                let resp = exchange(&addr, &sweep_request(1000 + round as u64, &netlist, s));
                assert_eq!(resp.code, CODE_OK, "sweep under corruption: {resp:?}");
                corrupted_s.push(s);
            }
            _ => {} // control round: no injection
        }
        let deadline_ms = if next(&mut rng).is_multiple_of(3) {
            Some(1)
        } else {
            None
        };
        let report = run_load(&LoadConfig {
            addr: addr.clone(),
            requests: 6,
            clients: 3,
            netlist: netlist.clone(),
            epochs: 6,
            deadline_ms,
            best_effort: None,
            shutdown: false,
        })
        .unwrap();
        assert!(
            report.fully_answered(),
            "round {round}: unanswered requests: {}",
            report.summary()
        );
        injected_panics += u64::try_from(fp::hits("serve/worker-panic")).unwrap();
        fp::reset();
    }

    // The daemon is still alive and its books balance: every caught panic
    // produced a worker respawn.
    let health = exchange(
        &addr,
        &Request {
            id: 9001,
            verb: Verb::Health,
            netlist: None,
            epochs: 0,
            dmd_s: vec![1],
            deadline_ms: None,
            top: 0.5,
            best_effort: None,
            delta: None,
            partitions: None,
        },
    );
    assert_eq!(health.code, CODE_OK);
    let alive: bool = health.body.as_ref().unwrap().field("alive").unwrap();
    assert!(alive);
    let stats = exchange(
        &addr,
        &Request {
            id: 9002,
            verb: Verb::Stats,
            netlist: None,
            epochs: 0,
            dmd_s: vec![1],
            deadline_ms: None,
            top: 0.5,
            best_effort: None,
            delta: None,
            partitions: None,
        },
    );
    let panics: u64 = stats.body.as_ref().unwrap().field("panics").unwrap();
    let respawns: u64 = stats.body.as_ref().unwrap().field("respawns").unwrap();
    assert_eq!(panics, injected_panics, "every injected panic was caught");
    assert_eq!(respawns, panics, "every caught panic respawned its worker");

    let stop = exchange(
        &addr,
        &Request {
            id: 9003,
            verb: Verb::Shutdown,
            netlist: None,
            epochs: 0,
            dmd_s: vec![1],
            deadline_ms: None,
            top: 0.5,
            best_effort: None,
            delta: None,
            partitions: None,
        },
    );
    assert_eq!(stop.code, CODE_OK);
    let log = daemon.join().unwrap();
    assert!(log.contains("drained"), "{log}");
    corrupted_s
}

#[test]
fn daemon_survives_seeded_fault_injection_under_both_policies() {
    let _s = serial();
    let base = std::env::temp_dir().join(format!("cirstag_serve_chaos_{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    for (best_effort, seed) in [(false, 0xC1A05u64), (true, 0x5EEDu64)] {
        let cache_dir = base.join(if best_effort { "be" } else { "strict" });
        std::fs::create_dir_all(&cache_dir).unwrap();
        let corrupted_s = chaos_run(best_effort, &cache_dir, seed);
        fp::reset();

        // A fresh daemon on the same cache directory must quarantine the
        // corrupt artifacts — recomputing, never trusting or dying on them.
        let netlist = chaos_netlist();
        let (addr, daemon) = spawn_daemon(ServeConfig {
            workers: 1,
            best_effort,
            cache_dir: Some(cache_dir.to_string_lossy().into_owned()),
            ..Default::default()
        });
        for (i, &s) in corrupted_s.iter().enumerate() {
            let resp = exchange(&addr, &sweep_request(2000 + i as u64, &netlist, s));
            assert_eq!(resp.code, CODE_OK, "replay of corrupted s={s}: {resp:?}");
        }
        cirstag_suite::serve::shutdown_daemon(&addr).unwrap();
        drop(daemon.join().unwrap());
        if !corrupted_s.is_empty() {
            let quarantined = std::fs::read_dir(&cache_dir)
                .unwrap()
                .filter_map(Result::ok)
                .filter(|e| e.path().to_string_lossy().ends_with(".quarantined"))
                .count();
            assert!(
                quarantined >= corrupted_s.len(),
                "expected >= {} quarantined artifacts, found {quarantined}",
                corrupted_s.len()
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}
