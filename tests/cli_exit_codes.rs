//! CLI exit-code contract: `0` for a clean run, `2` for a degraded
//! best-effort run, `1` (an `Err` from `run`/`parse_args`) for hard errors.

use cirstag_cli::{exit_code, parse_args, run, Command, KnnChoice, RunStatus};

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cirstag_exit_codes_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_silent(cmd: &Command) -> Result<RunStatus, cirstag_cli::CliError> {
    let mut sink = Vec::new();
    run(cmd, &mut sink)
}

fn generate(dir: &std::path::Path) -> String {
    let cir = dir.join("design.cir");
    let path = cir.to_str().unwrap().to_string();
    assert_eq!(
        run_silent(&Command::Generate {
            gates: 40,
            seed: 11,
            out: path.clone(),
        })
        .unwrap(),
        RunStatus::Clean
    );
    path
}

fn analyze_cmd(netlist: String, best_effort: bool) -> Command {
    Command::Analyze {
        netlist,
        out: None,
        epochs: 40,
        top: 0.10,
        threads: 2,
        best_effort,
        cache_dir: None,
        knn: KnnChoice::Auto,
        partitions: None,
    }
}

fn partitioned_cmd(netlist: String, partitions: usize, cache_dir: Option<String>) -> Command {
    match analyze_cmd(netlist, false) {
        Command::Analyze {
            netlist,
            out,
            epochs,
            top,
            threads,
            best_effort,
            knn,
            ..
        } => Command::Analyze {
            netlist,
            out,
            epochs,
            top,
            threads,
            best_effort,
            cache_dir,
            knn,
            partitions: Some(partitions),
        },
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn status_to_exit_code_mapping() {
    assert_eq!(exit_code(RunStatus::Clean), 0);
    assert_eq!(exit_code(RunStatus::Degraded), 2);
}

#[test]
fn clean_analyze_run_is_clean() {
    let dir = temp_dir("clean");
    let netlist = generate(&dir);
    let status = run_silent(&analyze_cmd(netlist, false)).unwrap();
    assert_eq!(status, RunStatus::Clean);
    assert_eq!(exit_code(status), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hard_errors_surface_as_err() {
    // Unknown flags fail at parse time; missing inputs fail at run time.
    // Both map to exit code 1 in the binary.
    assert!(parse_args(&["analyze".to_string(), "--bogus".to_string()]).is_err());
    let err = run_silent(&analyze_cmd("/nonexistent/x.cir".to_string(), false)).unwrap_err();
    assert!(err.message.contains("cannot read"), "got: {}", err.message);
}

/// `--partitions` is validated against the design size with the
/// partitioner's typed error before any GNN work starts; all three
/// rejections are hard errors (exit code 1).
#[test]
fn invalid_partition_counts_are_hard_errors() {
    let dir = temp_dir("partitions");
    let netlist = generate(&dir);
    let ws = dir.join("ws").to_str().unwrap().to_string();

    let err = run_silent(&partitioned_cmd(netlist.clone(), 0, Some(ws.clone()))).unwrap_err();
    assert!(err.message.contains("at least 1"), "got: {}", err.message);

    // 40 gates is a ~140-pin design; one partition per pin is absurd under
    // the MIN_PARTITION_NODES floor.
    let err = run_silent(&partitioned_cmd(netlist.clone(), 10_000, Some(ws))).unwrap_err();
    assert!(err.message.contains("absurd"), "got: {}", err.message);

    // The workspace directory is mandatory: without it there is nothing for
    // `cirstag diff` to replay.
    let err = run_silent(&partitioned_cmd(netlist, 2, None)).unwrap_err();
    assert!(err.message.contains("--cache-dir"), "got: {}", err.message);
    std::fs::remove_dir_all(&dir).ok();
}

/// A best-effort run that climbs a fallback ladder must finish with
/// [`RunStatus::Degraded`] (exit code 2), while the same injection under the
/// default strict policy is a hard error.
#[cfg(feature = "failpoints")]
#[test]
fn degraded_best_effort_run_exits_two() {
    use cirstag_suite::core::failpoint as fp;

    let dir = temp_dir("degraded");
    let netlist = generate(&dir);

    fp::reset();
    fp::arm_always("solver/geig", fp::FailAction::Error);
    let status = run_silent(&analyze_cmd(netlist.clone(), true)).unwrap();
    assert_eq!(status, RunStatus::Degraded);
    assert_eq!(exit_code(status), 2);

    fp::reset();
    fp::arm("solver/geig", fp::FailAction::Error, 1);
    assert!(run_silent(&analyze_cmd(netlist, false)).is_err());
    fp::reset();
    std::fs::remove_dir_all(&dir).ok();
}
