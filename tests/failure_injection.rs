//! Failure-injection integration tests: malformed, degenerate and adversarial
//! inputs must surface as typed errors (or well-defined fallbacks), never as
//! panics, hangs or silent garbage.

use cirstag_suite::circuit::{parse_netlist, CellLibrary};
use cirstag_suite::core::{CirStag, CirStagConfig, CirStagError};
use cirstag_suite::embed::{knn_graph, spectral_embedding, KnnConfig, SpectralConfig};
use cirstag_suite::gnn::{Activation, GnnModel, GraphContext, LayerSpec, TrainConfig};
use cirstag_suite::graph::Graph;
use cirstag_suite::linalg::DenseMatrix;

fn ring(n: usize) -> Graph {
    Graph::from_edges(
        n,
        &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>(),
    )
    .unwrap()
}

#[test]
fn nan_embedding_is_rejected_not_propagated() {
    let g = ring(10);
    let mut emb = DenseMatrix::zeros(10, 2);
    emb.set(3, 1, f64::NAN);
    let err = CirStag::new(CirStagConfig::default())
        .analyze(&g, None, &emb)
        .unwrap_err();
    assert!(matches!(err, CirStagError::Embed(_)), "got {err:?}");
}

#[test]
fn constant_embedding_still_produces_finite_scores() {
    // A GNN that collapses every node to the same point: kNN distances all
    // hit the ε floor; the pipeline must survive and return finite scores.
    let g = ring(12);
    let emb = DenseMatrix::from_vec(12, 3, vec![1.0; 36]).unwrap();
    let report = CirStag::new(CirStagConfig {
        embedding_dim: 4,
        knn_k: 4,
        num_eigenpairs: 3,
        ..Default::default()
    })
    .analyze(&g, None, &emb)
    .unwrap();
    assert!(report.node_scores.iter().all(|s| s.is_finite()));
}

#[test]
fn adversarial_embedding_with_extreme_outlier() {
    // One node mapped astronomically far away must not destabilize the rest.
    let n = 16;
    let g = ring(n);
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64 * std::f64::consts::TAU;
            vec![t.cos(), t.sin()]
        })
        .collect();
    rows[5] = vec![1e12, -1e12];
    let emb = DenseMatrix::from_rows(&rows).unwrap();
    let report = CirStag::new(CirStagConfig {
        embedding_dim: 4,
        knn_k: 4,
        num_eigenpairs: 3,
        ..Default::default()
    })
    .analyze(&g, None, &emb)
    .unwrap();
    assert!(report.node_scores.iter().all(|s| s.is_finite()));
    // The outlier should rank among the most unstable nodes.
    let ranking = report.ranking();
    let pos = ranking.iter().position(|&i| i == 5).unwrap();
    assert!(pos < n / 2, "outlier ranked only {pos}");
}

#[test]
fn disconnected_input_graph_is_a_typed_error() {
    let g = Graph::from_edges(8, &[(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0), (6, 7, 1.0)]).unwrap();
    let emb = DenseMatrix::zeros(8, 2);
    // Spectral embedding itself works on disconnected graphs, but Phase 3
    // needs a connected output manifold; the kNN backbone provides it, so
    // the *input-graph* disconnection only matters for skip_dimension_reduction.
    let err = CirStag::new(CirStagConfig {
        skip_dimension_reduction: true,
        embedding_dim: 3,
        knn_k: 3,
        num_eigenpairs: 2,
        ..Default::default()
    })
    .analyze(&g, None, &emb);
    // Either a clean error (preferred) or finite scores are acceptable; a
    // panic or NaN is not. With a constant zero embedding, the output kNN
    // manifold is connected via the backbone, so the L_X side decides.
    if let Ok(report) = err {
        assert!(report.node_scores.iter().all(|s| s.is_finite()));
    }
}

#[test]
fn truncated_netlist_file_fails_with_line_info() {
    let lib = CellLibrary::standard();
    let text = ".model broken\n.inputs a b\n.gate NAND2 a b"; // missing output + .end
    let err = parse_netlist(text, &lib).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 3"), "unhelpful message: {msg}");
}

#[test]
fn gnn_divergence_is_reported_not_propagated_as_nan() {
    // An absurd learning rate should either diverge (typed error) or still
    // yield finite parameters — never silently produce NaN predictions.
    let g = ring(8);
    let ctx = GraphContext::new(&g);
    let x =
        DenseMatrix::from_rows(&(0..8).map(|i| vec![i as f64 * 1e3]).collect::<Vec<_>>()).unwrap();
    let y = x.clone();
    let mut model = GnnModel::new(
        1,
        &[
            LayerSpec::Gcn {
                dim: 8,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        1,
    )
    .unwrap();
    let result = model.fit_regression(
        &ctx,
        &x,
        &y,
        None,
        &TrainConfig {
            epochs: 50,
            learning_rate: 1e6,
            weight_decay: 0.0,
            clip_norm: 0.0,
            ..TrainConfig::default()
        },
    );
    match result {
        Err(e) => assert!(e.to_string().contains("diverged")),
        Ok(_) => {
            let pred = model.forward(&ctx, &x, false).unwrap();
            assert!(pred.all_finite(), "silent NaN predictions");
        }
    }
}

#[test]
fn knn_with_excessive_k_is_rejected() {
    let pts = DenseMatrix::zeros(5, 2);
    assert!(knn_graph(&pts, 5, &KnnConfig::default()).is_err());
    assert!(knn_graph(&pts, 0, &KnnConfig::default()).is_err());
}

#[test]
fn spectral_embedding_on_single_edge_graph() {
    // Degenerate two-node graph: the embedding must still be well defined.
    let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
    let u = spectral_embedding(&g, 1, &SpectralConfig::default()).unwrap();
    assert_eq!(u.shape(), (2, 1));
    assert!(u.all_finite());
}

#[test]
fn zero_feature_weight_ignores_feature_garbage() {
    // With feature_weight = 0 the pipeline must not even look at feature
    // values — huge magnitudes are fine.
    let n = 12;
    let g = ring(n);
    let emb = DenseMatrix::from_rows(
        &(0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![t.cos(), t.sin()]
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let garbage = DenseMatrix::from_vec(n, 1, vec![1e30; n]).unwrap();
    let cfg = CirStagConfig {
        embedding_dim: 4,
        knn_k: 4,
        num_eigenpairs: 3,
        feature_weight: 0.0,
        ..Default::default()
    };
    let with = CirStag::new(cfg).analyze(&g, Some(&garbage), &emb).unwrap();
    let without = CirStag::new(cfg).analyze(&g, None, &emb).unwrap();
    assert_eq!(with.node_scores, without.node_scores);
}
