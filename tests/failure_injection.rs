//! Failure-injection integration tests: malformed, degenerate and adversarial
//! inputs must surface as typed errors (or well-defined fallbacks), never as
//! panics, hangs or silent garbage.

use cirstag_suite::circuit::{parse_netlist, CellLibrary};
use cirstag_suite::core::{CirStag, CirStagConfig, CirStagError};
use cirstag_suite::embed::{knn_graph, spectral_embedding, KnnConfig, SpectralConfig};
use cirstag_suite::gnn::{Activation, GnnModel, GraphContext, LayerSpec, TrainConfig};
use cirstag_suite::graph::Graph;
use cirstag_suite::linalg::DenseMatrix;

fn ring(n: usize) -> Graph {
    Graph::from_edges(
        n,
        &(0..n).map(|i| (i, (i + 1) % n, 1.0)).collect::<Vec<_>>(),
    )
    .unwrap()
}

#[test]
fn nan_embedding_is_rejected_not_propagated() {
    let g = ring(10);
    let mut emb = DenseMatrix::zeros(10, 2);
    emb.set(3, 1, f64::NAN);
    let err = CirStag::new(CirStagConfig::default())
        .analyze(&g, None, &emb)
        .unwrap_err();
    assert!(matches!(err, CirStagError::Embed(_)), "got {err:?}");
}

#[test]
fn constant_embedding_still_produces_finite_scores() {
    // A GNN that collapses every node to the same point: kNN distances all
    // hit the ε floor; the pipeline must survive and return finite scores.
    let g = ring(12);
    let emb = DenseMatrix::from_vec(12, 3, vec![1.0; 36]).unwrap();
    let report = CirStag::new(CirStagConfig {
        embedding_dim: 4,
        knn_k: 4,
        num_eigenpairs: 3,
        ..Default::default()
    })
    .analyze(&g, None, &emb)
    .unwrap();
    assert!(report.node_scores.iter().all(|s| s.is_finite()));
}

#[test]
fn adversarial_embedding_with_extreme_outlier() {
    // One node mapped astronomically far away must not destabilize the rest.
    let n = 16;
    let g = ring(n);
    let mut rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let t = i as f64 / n as f64 * std::f64::consts::TAU;
            vec![t.cos(), t.sin()]
        })
        .collect();
    rows[5] = vec![1e12, -1e12];
    let emb = DenseMatrix::from_rows(&rows).unwrap();
    let report = CirStag::new(CirStagConfig {
        embedding_dim: 4,
        knn_k: 4,
        num_eigenpairs: 3,
        ..Default::default()
    })
    .analyze(&g, None, &emb)
    .unwrap();
    assert!(report.node_scores.iter().all(|s| s.is_finite()));
    // The outlier should rank among the most unstable nodes.
    let ranking = report.ranking();
    let pos = ranking.iter().position(|&i| i == 5).unwrap();
    assert!(pos < n / 2, "outlier ranked only {pos}");
}

#[test]
fn disconnected_input_graph_is_a_typed_error() {
    let g = Graph::from_edges(8, &[(0, 1, 1.0), (2, 3, 1.0), (4, 5, 1.0), (6, 7, 1.0)]).unwrap();
    let emb = DenseMatrix::zeros(8, 2);
    // Spectral embedding itself works on disconnected graphs, but Phase 3
    // needs a connected output manifold; the kNN backbone provides it, so
    // the *input-graph* disconnection only matters for skip_dimension_reduction.
    let err = CirStag::new(CirStagConfig {
        skip_dimension_reduction: true,
        embedding_dim: 3,
        knn_k: 3,
        num_eigenpairs: 2,
        ..Default::default()
    })
    .analyze(&g, None, &emb);
    // Either a clean error (preferred) or finite scores are acceptable; a
    // panic or NaN is not. With a constant zero embedding, the output kNN
    // manifold is connected via the backbone, so the L_X side decides.
    if let Ok(report) = err {
        assert!(report.node_scores.iter().all(|s| s.is_finite()));
    }
}

#[test]
fn truncated_netlist_file_fails_with_line_info() {
    let lib = CellLibrary::standard();
    let text = ".model broken\n.inputs a b\n.gate NAND2 a b"; // missing output + .end
    let err = parse_netlist(text, &lib).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 3"), "unhelpful message: {msg}");
}

#[test]
fn gnn_divergence_is_reported_not_propagated_as_nan() {
    // An absurd learning rate should either diverge (typed error) or still
    // yield finite parameters — never silently produce NaN predictions.
    let g = ring(8);
    let ctx = GraphContext::new(&g);
    let x =
        DenseMatrix::from_rows(&(0..8).map(|i| vec![i as f64 * 1e3]).collect::<Vec<_>>()).unwrap();
    let y = x.clone();
    let mut model = GnnModel::new(
        1,
        &[
            LayerSpec::Gcn {
                dim: 8,
                activation: Activation::Relu,
            },
            LayerSpec::Linear {
                dim: 1,
                activation: Activation::Identity,
            },
        ],
        1,
    )
    .unwrap();
    let result = model.fit_regression(
        &ctx,
        &x,
        &y,
        None,
        &TrainConfig {
            epochs: 50,
            learning_rate: 1e6,
            weight_decay: 0.0,
            clip_norm: 0.0,
            ..TrainConfig::default()
        },
    );
    match result {
        Err(e) => assert!(e.to_string().contains("diverged")),
        Ok(_) => {
            let pred = model.forward(&ctx, &x, false).unwrap();
            assert!(pred.all_finite(), "silent NaN predictions");
        }
    }
}

#[test]
fn knn_with_excessive_k_is_rejected() {
    let pts = DenseMatrix::zeros(5, 2);
    assert!(knn_graph(&pts, 5, &KnnConfig::default()).is_err());
    assert!(knn_graph(&pts, 0, &KnnConfig::default()).is_err());
}

#[test]
fn spectral_embedding_on_single_edge_graph() {
    // Degenerate two-node graph: the embedding must still be well defined.
    let g = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
    let u = spectral_embedding(&g, 1, &SpectralConfig::default()).unwrap();
    assert_eq!(u.shape(), (2, 1));
    assert!(u.all_finite());
}

#[test]
fn best_effort_without_failures_matches_strict_bitwise() {
    // The BestEffort policy must be a pure superset: when nothing fails, it
    // takes exactly the same numeric path as Strict (bit-identical scores)
    // and reports a clean run.
    use cirstag_suite::core::FailurePolicy;
    let n = 24;
    let g = ring(n);
    let emb = DenseMatrix::from_rows(
        &(0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![t.cos(), t.sin()]
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let base = CirStagConfig {
        embedding_dim: 4,
        knn_k: 4,
        num_eigenpairs: 3,
        ..Default::default()
    };
    let strict = CirStag::new(base).analyze(&g, None, &emb).unwrap();
    let best_effort = CirStag::new(CirStagConfig {
        policy: FailurePolicy::BestEffort,
        ..base
    })
    .analyze(&g, None, &emb)
    .unwrap();
    assert_eq!(strict.node_scores, best_effort.node_scores);
    assert_eq!(strict.eigenvalues, best_effort.eigenvalues);
    assert!(!best_effort.degraded);
    assert!(best_effort.diagnostics.is_empty());
}

#[test]
fn zero_feature_weight_ignores_feature_garbage() {
    // With feature_weight = 0 the pipeline must not even look at feature
    // values — huge magnitudes are fine.
    let n = 12;
    let g = ring(n);
    let emb = DenseMatrix::from_rows(
        &(0..n)
            .map(|i| {
                let t = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![t.cos(), t.sin()]
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let garbage = DenseMatrix::from_vec(n, 1, vec![1e30; n]).unwrap();
    let cfg = CirStagConfig {
        embedding_dim: 4,
        knn_k: 4,
        num_eigenpairs: 3,
        feature_weight: 0.0,
        ..Default::default()
    };
    let with = CirStag::new(cfg).analyze(&g, Some(&garbage), &emb).unwrap();
    let without = CirStag::new(cfg).analyze(&g, None, &emb).unwrap();
    assert_eq!(with.node_scores, without.node_scores);
}

/// Deterministic failpoint-driven tests: one per fallback-ladder rung.
///
/// The failpoint registry is process-global, so every test here takes a
/// shared lock, starts from a disarmed registry, and disarms again on drop
/// (even when the test panics).
#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;
    use cirstag_suite::core::failpoint as fp;
    use cirstag_suite::core::{FailurePolicy, ReportExport, StabilityReport, StageBudget};
    use cirstag_suite::solver::{CgOptions, LadderRung, LaplacianSolver};
    use std::sync::{Mutex, MutexGuard, OnceLock};

    struct Serial {
        _guard: MutexGuard<'static, ()>,
    }

    impl Drop for Serial {
        fn drop(&mut self) {
            fp::reset();
        }
    }

    fn serial() -> Serial {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        fp::reset();
        Serial { _guard: guard }
    }

    fn grid(side: usize) -> Graph {
        let n = side * side;
        let mut edges = Vec::new();
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                if c + 1 < side {
                    edges.push((i, i + 1, 1.0));
                }
                if r + 1 < side {
                    edges.push((i, i + side, 1.0));
                }
            }
        }
        Graph::from_edges(n, &edges).unwrap()
    }

    fn circle_embedding(n: usize) -> DenseMatrix {
        DenseMatrix::from_rows(
            &(0..n)
                .map(|i| {
                    let t = i as f64 / n as f64 * std::f64::consts::TAU;
                    vec![t.cos(), t.sin(), (2.0 * t).sin()]
                })
                .collect::<Vec<_>>(),
        )
        .unwrap()
    }

    fn cfg(policy: FailurePolicy) -> CirStagConfig {
        CirStagConfig {
            embedding_dim: 4,
            knn_k: 4,
            num_eigenpairs: 3,
            policy,
            ..Default::default()
        }
    }

    /// Rung names of every fallback event recorded for `stage`, in order.
    fn rungs_for<'a>(report: &'a StabilityReport, stage: &str) -> Vec<&'a str> {
        report
            .diagnostics
            .events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.rung.as_str())
            .collect()
    }

    fn assert_finite(report: &StabilityReport) {
        assert!(
            report.node_scores.iter().all(|s| s.is_finite()),
            "non-finite node scores"
        );
        assert!(
            report.eigenvalues.iter().all(|z| z.is_finite()),
            "non-finite eigenvalues"
        );
    }

    // ---- Phase 1 ladder --------------------------------------------------

    #[test]
    fn lanczos_retry_rung_rescues_phase1() {
        let _s = serial();
        fp::arm("solver/lanczos", fp::FailAction::Error, 1);
        let g = ring(20);
        let report = CirStag::new(cfg(FailurePolicy::BestEffort))
            .analyze(&g, None, &circle_embedding(20))
            .unwrap();
        assert!(report.degraded);
        assert_eq!(rungs_for(&report, "phase1/eigs"), vec!["retry"]);
        assert_finite(&report);
    }

    #[test]
    fn dense_symeig_rung_rescues_phase1() {
        let _s = serial();
        // First attempt AND the re-seeded retry both fail -> dense fallback.
        fp::arm("solver/lanczos", fp::FailAction::Error, 2);
        let g = ring(20);
        let report = CirStag::new(cfg(FailurePolicy::BestEffort))
            .analyze(&g, None, &circle_embedding(20))
            .unwrap();
        assert!(report.degraded);
        assert_eq!(rungs_for(&report, "phase1/eigs"), vec!["retry", "dense"]);
        assert_finite(&report);
    }

    #[test]
    fn strict_policy_fails_fast_on_phase1_eigensolve() {
        let _s = serial();
        fp::arm("solver/lanczos", fp::FailAction::Error, 1);
        let g = ring(20);
        let err = CirStag::new(cfg(FailurePolicy::Strict))
            .analyze(&g, None, &circle_embedding(20))
            .unwrap_err();
        assert!(matches!(err, CirStagError::Embed(_)), "got {err:?}");
        // Strict means fail-fast: the failpoint fired once, no retry.
        assert_eq!(fp::hits("solver/lanczos"), 1);
    }

    // ---- CG ladder (Identity -> Jacobi -> Tree -> Dense) -----------------

    #[test]
    fn cg_ladder_escalates_rung_by_rung_to_dense() {
        let _s = serial();
        let g = ring(12);
        let solver =
            LaplacianSolver::with_ladder(&g, CgOptions::default(), LadderRung::Identity).unwrap();
        // Three CG failures walk Identity -> Jacobi -> Tree -> Dense.
        fp::arm("solver/cg", fp::FailAction::Error, 3);
        let mut b = vec![0.0; 12];
        b[0] = 1.0;
        b[5] = -1.0;
        let x = solver.solve(&b).unwrap();
        assert_eq!(solver.current_rung(), LadderRung::Dense);
        let events = solver.take_events();
        let path: Vec<_> = events.iter().map(|e| e.to.name()).collect();
        assert_eq!(path, vec!["jacobi", "tree", "dense"]);
        // The dense rung must still solve the (centered) system accurately.
        let lap = g.laplacian();
        let lx = lap.mul_vec(&x);
        for i in 0..12 {
            assert!(
                (lx[i] - b[i]).abs() < 1e-6,
                "residual at {i}: {}",
                lx[i] - b[i]
            );
        }
        // Escalation is sticky: the next solve stays on Dense, no new events.
        let _ = solver.solve(&b).unwrap();
        assert!(solver.take_events().is_empty());
        assert_eq!(solver.current_rung(), LadderRung::Dense);
    }

    #[test]
    fn block_column_failpoint_escalates_without_poisoning_converged_columns() {
        let _s = serial();
        let g = grid(5);
        let n = g.num_nodes();
        // One RHS column per probe edge: b = e_u − e_v.
        let probes: Vec<(usize, usize)> = g.edges().iter().take(3).map(|e| (e.u, e.v)).collect();
        let mut b = DenseMatrix::zeros(n, probes.len());
        for (j, &(u, v)) in probes.iter().enumerate() {
            b.set(u, j, 1.0);
            b.set(v, j, -1.0);
        }

        // Reference: the same panel through an unpoisoned escalating solver.
        let clean_solver =
            LaplacianSolver::with_ladder(&g, CgOptions::default(), LadderRung::Jacobi).unwrap();
        let clean = clean_solver.solve_block(&b).unwrap();
        assert!(
            clean_solver.take_events().is_empty(),
            "clean run must not escalate"
        );

        // Poisoned: the failpoint freezes the lowest-indexed live column
        // before round 0, so it exhausts the Jacobi rung while the other
        // columns converge normally and are frozen into the result.
        fp::arm("solver/cg-block-column", fp::FailAction::Error, 1);
        let solver =
            LaplacianSolver::with_ladder(&g, CgOptions::default(), LadderRung::Jacobi).unwrap();
        let x = solver.solve_block(&b).unwrap();
        let events = solver.take_events();
        assert_eq!(events.len(), 1, "exactly one escalation: {events:?}");
        assert!(
            events[0].cause.contains("block"),
            "cause names the block solver: {}",
            events[0].cause
        );

        // The columns that converged on the first rung were never retried:
        // bit-identical to the clean run.
        for j in 1..probes.len() {
            for i in 0..n {
                assert_eq!(
                    x.get(i, j).to_bits(),
                    clean.get(i, j).to_bits(),
                    "converged column {j} was poisoned at row {i}"
                );
            }
        }
        // The failed column was re-solved on the next rung: different float
        // path, but still an accurate solution of the same system.
        for i in 0..n {
            assert!(x.get(i, 0).is_finite());
            assert!(
                (x.get(i, 0) - clean.get(i, 0)).abs() < 1e-6,
                "retried column drifted at row {i}: {} vs {}",
                x.get(i, 0),
                clean.get(i, 0)
            );
        }
    }

    #[test]
    fn pipeline_reports_phase3_cg_escalation() {
        let _s = serial();
        // With sparsification skipped, the only CG user is the Phase-3
        // generalized eigensolver's inner L_Y solve.
        fp::arm("solver/cg", fp::FailAction::Error, 1);
        let g = ring(20);
        let report = CirStag::new(CirStagConfig {
            skip_manifold_sparsification: true,
            ..cfg(FailurePolicy::BestEffort)
        })
        .analyze(&g, None, &circle_embedding(20))
        .unwrap();
        assert!(report.degraded);
        assert_eq!(rungs_for(&report, "phase3/cg"), vec!["dense"]);
        assert_finite(&report);
    }

    // ---- Phase 2 ladder --------------------------------------------------

    #[test]
    fn phase2_pgm_ladder_falls_back_to_random_prune() {
        let _s = serial();
        // The first CG solve of the run happens inside the input-side PGM
        // resistance sketch; failing it degrades that stage to random pruning.
        fp::arm("solver/cg", fp::FailAction::Error, 1);
        let g = ring(20);
        let report = CirStag::new(cfg(FailurePolicy::BestEffort))
            .analyze(&g, None, &circle_embedding(20))
            .unwrap();
        assert!(report.degraded);
        assert_eq!(rungs_for(&report, "phase2/pgm-input"), vec!["random-prune"]);
        assert!(rungs_for(&report, "phase2/pgm-output").is_empty());
        assert_finite(&report);
    }

    // ---- Phase 3 ladder --------------------------------------------------

    #[test]
    fn geig_dense_rung_rescues_phase3() {
        let _s = serial();
        fp::arm_always("solver/geig", fp::FailAction::Error);
        let g = ring(20);
        let report = CirStag::new(cfg(FailurePolicy::BestEffort))
            .analyze(&g, None, &circle_embedding(20))
            .unwrap();
        assert!(report.degraded);
        assert_eq!(rungs_for(&report, "phase3/geig"), vec!["retry", "dense"]);
        assert_finite(&report);
        // The dense generalized eigensolver produced a real spectrum, not the
        // zero-spectrum terminal rung.
        assert!(report.eigenvalues[0] > 0.0);
    }

    #[test]
    fn strict_policy_fails_fast_on_phase3_eigensolve() {
        let _s = serial();
        fp::arm("solver/geig", fp::FailAction::Error, 1);
        let g = ring(20);
        let err = CirStag::new(cfg(FailurePolicy::Strict))
            .analyze(&g, None, &circle_embedding(20))
            .unwrap_err();
        assert!(matches!(err, CirStagError::Solver(_)), "got {err:?}");
        assert_eq!(fp::hits("solver/geig"), 1);
    }

    // ---- NaN sentinels between phases ------------------------------------

    #[test]
    fn phase1_nan_guard_both_policies() {
        let _s = serial();
        let g = ring(20);
        let emb = circle_embedding(20);
        fp::arm("phase1/nan", fp::FailAction::Nan, 1);
        let err = CirStag::new(cfg(FailurePolicy::Strict))
            .analyze(&g, None, &emb)
            .unwrap_err();
        assert!(
            matches!(err, CirStagError::NonFiniteStage { stage: "phase1" }),
            "got {err:?}"
        );

        fp::reset();
        fp::arm("phase1/nan", fp::FailAction::Nan, 1);
        let report = CirStag::new(cfg(FailurePolicy::BestEffort))
            .analyze(&g, None, &emb)
            .unwrap();
        assert!(report.degraded);
        assert_eq!(rungs_for(&report, "phase1/nan-guard"), vec!["degraded"]);
        assert!(!report.diagnostics.warnings.is_empty());
        assert_finite(&report);
    }

    #[test]
    fn phase3_nan_guard_both_policies() {
        let _s = serial();
        let g = ring(20);
        let emb = circle_embedding(20);
        fp::arm("phase3/nan", fp::FailAction::Nan, 1);
        let err = CirStag::new(cfg(FailurePolicy::Strict))
            .analyze(&g, None, &emb)
            .unwrap_err();
        assert!(
            matches!(err, CirStagError::NonFiniteStage { stage: "phase3" }),
            "got {err:?}"
        );

        fp::reset();
        fp::arm("phase3/nan", fp::FailAction::Nan, 1);
        let report = CirStag::new(cfg(FailurePolicy::BestEffort))
            .analyze(&g, None, &emb)
            .unwrap();
        assert!(report.degraded);
        assert_eq!(rungs_for(&report, "phase3/nan-guard"), vec!["degraded"]);
        assert_finite(&report);
    }

    // ---- Stage budgets ---------------------------------------------------

    #[test]
    fn stage_budget_exhaustion_both_policies() {
        let _s = serial();
        let g = ring(16);
        let emb = circle_embedding(16);
        let with_budget = |policy| CirStagConfig {
            stage_budget: StageBudget {
                wall_clock_ms: Some(150),
                ..StageBudget::default()
            },
            ..cfg(policy)
        };
        fp::arm("phase2/stall", fp::FailAction::StallMs(600), 1);
        let err = CirStag::new(with_budget(FailurePolicy::Strict))
            .analyze(&g, None, &emb)
            .unwrap_err();
        assert!(
            matches!(
                err,
                CirStagError::BudgetExhausted {
                    stage: "phase2",
                    ..
                }
            ),
            "got {err:?}"
        );

        fp::reset();
        fp::arm("phase2/stall", fp::FailAction::StallMs(600), 1);
        let report = CirStag::new(with_budget(FailurePolicy::BestEffort))
            .analyze(&g, None, &emb)
            .unwrap();
        assert!(report.degraded);
        assert_eq!(rungs_for(&report, "phase2"), vec!["budget"]);
        assert_finite(&report);
    }

    // ---- Full injection (acceptance) -------------------------------------

    #[test]
    fn full_injection_best_effort_still_scores() {
        let _s = serial();
        for g in [ring(24), grid(5)] {
            fp::reset();
            fp::arm_always("solver/lanczos", fp::FailAction::Error);
            fp::arm_always("solver/geig", fp::FailAction::Error);
            fp::arm_always("solver/cg", fp::FailAction::Error);
            let n = g.num_nodes();
            let report = CirStag::new(cfg(FailurePolicy::BestEffort))
                .analyze(&g, None, &circle_embedding(n))
                .unwrap();
            assert!(report.degraded);
            assert_finite(&report);
            for stage in [
                "phase1/eigs",
                "phase2/pgm-input",
                "phase2/pgm-output",
                "phase3/geig",
            ] {
                assert!(
                    report.diagnostics.events.iter().any(|e| e.stage == stage),
                    "no fallback event for {stage}: {:?}",
                    report.diagnostics.events
                );
            }
            assert_ne!(report.diagnostics.summary(), "clean run");
            // The degraded report survives the JSON roundtrip intact.
            let json = report.to_json().unwrap();
            let parsed = ReportExport::from_json(&json).unwrap();
            assert!(parsed.degraded);
            assert_eq!(
                parsed.fallback_events.len(),
                report.diagnostics.events.len()
            );
            assert_eq!(parsed.warnings, report.diagnostics.warnings);
        }
    }

    #[test]
    fn full_injection_strict_is_a_typed_error() {
        let _s = serial();
        fp::arm_always("solver/lanczos", fp::FailAction::Error);
        fp::arm_always("solver/geig", fp::FailAction::Error);
        fp::arm_always("solver/cg", fp::FailAction::Error);
        let g = ring(24);
        let err = CirStag::new(cfg(FailurePolicy::Strict))
            .analyze(&g, None, &circle_embedding(24))
            .unwrap_err();
        // Strict surfaces the first failure (the Phase-1 eigensolve) as a
        // typed error rather than attempting any fallback.
        assert!(matches!(err, CirStagError::Embed(_)), "got {err:?}");
    }
}
