//! Property-based integration tests of the circuit substrate: generator,
//! parser, timing graph and STA interacting across module boundaries.

use cirstag_suite::circuit::{
    generate_circuit, parse_netlist, perturb_pin_caps, write_netlist, CapPerturbation, CellLibrary,
    GeneratorConfig, StaEngine, TimingGraph,
};
use proptest::prelude::*;

fn arb_generator_config() -> impl Strategy<Value = (GeneratorConfig, u64)> {
    (20usize..150, 0.0f64..0.95, 8usize..64, 1u64..500).prop_map(
        |(num_gates, locality, window, seed)| {
            (
                GeneratorConfig {
                    num_gates,
                    locality,
                    locality_window: window,
                    ..Default::default()
                },
                seed,
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generated_circuits_roundtrip_through_the_text_format(
        (cfg, seed) in arb_generator_config()
    ) {
        let library = CellLibrary::standard();
        let original = generate_circuit(&library, &cfg, seed).expect("generate");
        let text = write_netlist(&original, &library);
        let parsed = parse_netlist(&text, &library).expect("parse");
        prop_assert_eq!(parsed.num_cells(), original.num_cells());
        prop_assert_eq!(parsed.num_nets(), original.num_nets());
        prop_assert_eq!(&parsed.primary_inputs, &original.primary_inputs);
        prop_assert_eq!(&parsed.primary_outputs, &original.primary_outputs);
        for (a, b) in parsed.cells.iter().zip(&original.cells) {
            prop_assert_eq!(a.cell, b.cell);
            prop_assert_eq!(&a.inputs, &b.inputs);
            prop_assert_eq!(a.output, b.output);
        }
    }

    #[test]
    fn sta_arrivals_are_finite_monotone_and_causal((cfg, seed) in arb_generator_config()) {
        let library = CellLibrary::standard();
        let netlist = generate_circuit(&library, &cfg, seed).expect("generate");
        let timing = TimingGraph::new(&netlist, &library).expect("timing");
        let sta = StaEngine::new(&timing);
        for &(from, to, _) in timing.arcs() {
            prop_assert!(sta.arrival(to) >= sta.arrival(from), "arc {} -> {}", from, to);
        }
        prop_assert!(sta.arrival_times().iter().all(|a| a.is_finite() && *a >= 0.0));
        prop_assert!(sta.critical_arrival() > 0.0);
        // Slack of at least one PO is ~zero (the critical endpoint).
        let slacks = sta.slacks(&timing);
        let min_po_slack = timing
            .po_pins()
            .iter()
            .map(|&p| slacks[p])
            .fold(f64::INFINITY, f64::min);
        prop_assert!(min_po_slack.abs() < 1e-9, "worst PO slack {}", min_po_slack);
        // No slack is meaningfully negative under the zero-slack convention.
        prop_assert!(slacks.iter().all(|s| *s > -1e-9));
    }

    #[test]
    fn cap_increase_never_speeds_up_the_circuit((cfg, seed) in arb_generator_config()) {
        let library = CellLibrary::standard();
        let netlist = generate_circuit(&library, &cfg, seed).expect("generate");
        let timing = TimingGraph::new(&netlist, &library).expect("timing");
        let base = StaEngine::new(&timing);
        // Perturb an arbitrary eligible subset.
        let pins: Vec<usize> = (0..timing.num_pins()).filter(|p| p % 3 == 0).collect();
        let pert = CapPerturbation::new(pins, 4.0).expect("perturbation");
        let caps = perturb_pin_caps(&timing, &pert).expect("caps");
        let perturbed = StaEngine::with_caps(&timing, &caps);
        for p in 0..timing.num_pins() {
            prop_assert!(
                perturbed.arrival(p) >= base.arrival(p) - 1e-12,
                "pin {} sped up",
                p
            );
        }
    }

    #[test]
    fn incremental_retiming_matches_full_on_random_perturbations(
        (cfg, seed) in arb_generator_config()
    ) {
        let library = CellLibrary::standard();
        let netlist = generate_circuit(&library, &cfg, seed).expect("generate");
        let timing = TimingGraph::new(&netlist, &library).expect("timing");
        let base = StaEngine::new(&timing);
        let mut caps = timing.pin_caps();
        for p in 0..timing.num_pins() {
            if (p * 7 + seed as usize).is_multiple_of(11) {
                caps[p] *= 1.0 + ((p % 5) as f64);
            }
        }
        let incremental = base.retime_with_caps(&timing, &caps);
        let full = StaEngine::with_caps(&timing, &caps);
        for p in 0..timing.num_pins() {
            prop_assert!(
                (incremental.arrival(p) - full.arrival(p)).abs() < 1e-12,
                "pin {} mismatch", p
            );
        }
    }

    #[test]
    fn pin_graph_is_connected_iff_undirected_reachability(
        (cfg, seed) in arb_generator_config()
    ) {
        let library = CellLibrary::standard();
        let netlist = generate_circuit(&library, &cfg, seed).expect("generate");
        let timing = TimingGraph::new(&netlist, &library).expect("timing");
        let g = timing.to_undirected_graph().expect("pin graph");
        prop_assert_eq!(g.num_nodes(), timing.num_pins());
        prop_assert_eq!(g.num_edges(), timing.num_arcs());
        // Every pin belongs to some net with a driver, so no isolated nodes.
        for p in 0..g.num_nodes() {
            prop_assert!(g.neighbor_count(p) > 0, "pin {} isolated", p);
        }
    }
}
