//! ECO contract: incremental partition-scoped re-analysis is bit-identical
//! to throwing the edited design at a cold full run.
//!
//! A ~10k-pin generated circuit is partitioned once; proptest then drives
//! random sequences of 1–8 small deltas (edge adds/removes/rescales,
//! per-pin feature drift) through the warm cache — recomputing only the
//! dirty partitions and their halo — and the final warm report must match
//! `analyze_partitioned_cold` on the edited design bit for bit. Each step
//! samples a thread count from {1, 2, 8} (fingerprints exclude the thread
//! count, so warm hits survive the changes), each case samples the failure
//! policy, and the disk-cache round-trip is replayed through a fresh
//! in-memory cache at the end of every case. The whole check lives in one
//! `#[test]` because the worker-thread count is process-global.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use cirstag_suite::circuit::{
    apply_delta, extract_features, generate_circuit, partition_graph, CellLibrary, DeltaOp,
    FeatureConfig, GeneratorConfig, NetlistDelta, PartitionConfig, Partitioning, TimingGraph,
};
use cirstag_suite::core::{
    analyze_partitioned_cached, analyze_partitioned_cold, ArtifactCache, CirStagConfig,
    FailurePolicy, PartitionedReport,
};
use cirstag_suite::graph::Graph;
use cirstag_suite::linalg::DenseMatrix;
use proptest::prelude::*;

const NUM_PARTITIONS: usize = 8;
const HALO_DEPTH: usize = 1;

/// Base design shared by every proptest case: the graph, its feature
/// matrix, a synthetic (GNN-free, deterministic) embedding, and the fixed
/// partitioning that every delta replays against.
struct Base {
    graph: Graph,
    features: DenseMatrix,
    embedding: DenseMatrix,
    partitioning: Partitioning,
    /// Undirected edge list of the base graph (u < v), for delta sampling.
    edges: Vec<(usize, usize)>,
}

static BASE: OnceLock<Base> = OnceLock::new();

/// `cargo test` runs this suite unoptimized; keep the debug design large
/// enough to exercise real partitions but small enough to finish. Release
/// runs (`cargo test --release`) use the full ~10k-pin design the ECO flow
/// is specified against.
fn base_gates() -> usize {
    if cfg!(debug_assertions) {
        400
    } else {
        3200
    }
}

fn base() -> &'static Base {
    BASE.get_or_init(|| {
        let library = CellLibrary::standard();
        let netlist = generate_circuit(
            &library,
            &GeneratorConfig {
                num_gates: base_gates(),
                ..Default::default()
            },
            0xEC0D,
        )
        .expect("generate base circuit");
        let timing = TimingGraph::new(&netlist, &library).expect("timing graph");
        let graph = timing.to_undirected_graph().expect("undirected graph");
        let features = extract_features(
            &timing,
            &netlist,
            &library,
            &timing.pin_caps(),
            &FeatureConfig::default(),
        )
        .expect("features");
        let n = graph.num_nodes();
        let embedding = synth_embedding(n, 6);
        let partitioning = partition_graph(
            &graph,
            &PartitionConfig {
                num_partitions: NUM_PARTITIONS,
                halo_depth: HALO_DEPTH,
                ..Default::default()
            },
        )
        .expect("partition base graph");
        let edges = graph
            .edges()
            .iter()
            .map(|e| (e.u.min(e.v), e.u.max(e.v)))
            .collect();
        Base {
            graph,
            features,
            embedding,
            partitioning,
            edges,
        }
    })
}

/// Deterministic stand-in for the trained embedding (the ECO layer treats
/// the embedding as a fixed input; see the fixed-base contract in DESIGN.md).
fn synth_embedding(n: usize, dim: usize) -> DenseMatrix {
    DenseMatrix::from_rows(
        &(0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| ((i * (j + 2)) as f64 * 0.37).sin())
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>(),
    )
    .expect("synthetic embedding")
}

fn config(threads: usize, policy: FailurePolicy) -> CirStagConfig {
    CirStagConfig {
        embedding_dim: 6,
        knn_k: 6,
        num_eigenpairs: 4,
        num_threads: threads,
        policy,
        ..Default::default()
    }
}

/// Raw sampled edit: mapped onto a concrete [`DeltaOp`] against the
/// *current* graph state, so every op in the sequence is valid by
/// construction (removals only target edges a previous step added — the
/// base circuit's own edges may be bridges, and disconnecting the design
/// is a different contract than an ECO edit).
#[derive(Debug, Clone, Copy)]
struct RawEdit {
    kind: u8,
    a: usize,
    b: usize,
    scale_milli: u32,
}

fn concrete_op(raw: RawEdit, graph: &Graph, added: &mut Vec<(usize, usize)>) -> DeltaOp {
    let n = graph.num_nodes();
    let u = raw.a % n;
    let v = raw.b % n;
    let scale = 0.5 + f64::from(raw.scale_milli % 2000) / 1000.0; // (0.5, 2.5)
    match raw.kind % 4 {
        0 if u != v && graph.edge_weight(u, v).is_none() => {
            let (u, v) = (u.min(v), u.max(v));
            added.push((u, v));
            DeltaOp::AddEdge {
                u,
                v,
                weight: scale,
            }
        }
        1 if !added.is_empty() => {
            let (u, v) = added.swap_remove(raw.a % added.len());
            DeltaOp::RemoveEdge { u, v }
        }
        2 => {
            let base = base();
            let (u, v) = base.edges[raw.a % base.edges.len()];
            // The edge survives every edit in this suite (removals only
            // target added edges), so rescaling it is always valid.
            DeltaOp::RescaleEdge {
                u,
                v,
                factor: scale,
            }
        }
        _ => DeltaOp::FeatureDrift { node: u, scale },
    }
}

fn assert_bit_identical(warm: &PartitionedReport, cold: &PartitionedReport) {
    assert_eq!(warm.root, cold.root, "merkle roots diverge");
    assert_eq!(warm.degraded, cold.degraded);
    assert_eq!(warm.num_partitions, cold.num_partitions);
    assert_eq!(warm.node_scores.len(), cold.node_scores.len());
    for (i, (a, b)) in warm
        .node_scores
        .iter()
        .zip(cold.node_scores.iter())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "node {i} score diverges");
    }
    assert_eq!(warm.edge_scores.len(), cold.edge_scores.len());
    for ((au, av, aw), (bu, bv, bw)) in warm.edge_scores.iter().zip(cold.edge_scores.iter()) {
        assert_eq!((au, av), (bu, bv), "edge identity diverges");
        assert_eq!(aw.to_bits(), bw.to_bits(), "edge {au}-{av} score diverges");
    }
}

/// Bitmask of policies proptest happened to sample; the test tops up any
/// policy the sampler missed with a deterministic extra case so both
/// Strict and BestEffort are always exercised.
static POLICIES_SEEN: AtomicU8 = AtomicU8::new(0);

/// One ECO episode: apply `raw_edits` one delta at a time against the warm
/// cache, then check the final warm report against a cold run of the final
/// edited design, and replay the final design from disk through a fresh
/// in-memory cache.
fn run_episode(raw_edits: &[RawEdit], thread_seq: &[usize], best_effort: bool) {
    let base = base();
    let policy = if best_effort {
        FailurePolicy::BestEffort
    } else {
        FailurePolicy::Strict
    };
    POLICIES_SEEN.fetch_or(1 << u8::from(best_effort), Ordering::Relaxed);

    let disk = tempdir(best_effort, raw_edits.len());
    let mut cache = ArtifactCache::new().with_disk_dir(&disk);
    let assignment = &base.partitioning.assignment;

    // Prime the cache on the unedited base design.
    let mut threads = thread_seq.iter().copied().cycle();
    let mut graph = base.graph.clone();
    let mut features = base.features.clone();
    let prime = analyze_partitioned_cached(
        &config(threads.next().unwrap_or(1), policy),
        &graph,
        Some(&features),
        &base.embedding,
        assignment,
        NUM_PARTITIONS,
        HALO_DEPTH,
        &mut cache,
    )
    .expect("prime run on the base design");
    assert_eq!(prime.node_scores.len(), graph.num_nodes());

    let mut added: Vec<(usize, usize)> = Vec::new();
    let mut last_threads = 1;
    let mut warm = prime;
    for &raw in raw_edits {
        let delta = NetlistDelta {
            ops: vec![concrete_op(raw, &graph, &mut added)],
        };
        let outcome = apply_delta(&graph, Some(&features), &delta, &base.partitioning)
            .expect("sampled delta applies");
        assert!(
            !outcome.touched_partitions.is_empty(),
            "every op touches at least one partition"
        );
        graph = outcome.graph;
        features = outcome.features.expect("features survive the delta");
        last_threads = threads.next().unwrap_or(1);
        warm = analyze_partitioned_cached(
            &config(last_threads, policy),
            &graph,
            Some(&features),
            &base.embedding,
            assignment,
            NUM_PARTITIONS,
            HALO_DEPTH,
            &mut cache,
        )
        .expect("warm incremental run");
        // Clean partitions replay from cache. `touched_partitions` is the
        // conservative halo-rule over-approximation and the per-partition
        // fingerprints are the ground truth, so recomputed ⊆ touched.
        let recomputed = warm.recomputed();
        assert!(
            recomputed.len() < NUM_PARTITIONS || outcome.touched_partitions.len() == NUM_PARTITIONS,
            "a single small delta recomputed every partition: {recomputed:?}"
        );
        for &p in &recomputed {
            assert!(
                outcome.touched_partitions.contains(&(p as usize)),
                "partition {p} recomputed outside the touched set {:?}",
                outcome.touched_partitions
            );
        }
    }

    // Ground truth: a cold, cache-less run of the edited design at a
    // different thread count than the last warm step.
    let cold_threads = if last_threads == 1 { 2 } else { 1 };
    let cold = analyze_partitioned_cold(
        &config(cold_threads, policy),
        &graph,
        Some(&features),
        &base.embedding,
        assignment,
        NUM_PARTITIONS,
        HALO_DEPTH,
    )
    .expect("cold run on the edited design");
    assert_bit_identical(&warm, &cold);
    assert_eq!(cold.recomputed().len(), NUM_PARTITIONS);

    // Disk round-trip: a fresh in-memory cache over the same directory
    // replays the final design without recomputing anything.
    let mut rehydrated = ArtifactCache::new().with_disk_dir(&disk);
    let replay = analyze_partitioned_cached(
        &config(last_threads, policy),
        &graph,
        Some(&features),
        &base.embedding,
        assignment,
        NUM_PARTITIONS,
        HALO_DEPTH,
        &mut rehydrated,
    )
    .expect("disk replay of the final design");
    assert_bit_identical(&replay, &cold);
    assert!(
        replay.recomputed().is_empty(),
        "disk replay recomputed {:?}",
        replay.recomputed()
    );

    std::fs::remove_dir_all(&disk).ok();
}

fn tempdir(best_effort: bool, len: usize) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cirstag_eco_delta_{}_{}_{}",
        std::process::id(),
        best_effort,
        len
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create eco scratch dir");
    dir
}

fn arb_raw_edit() -> impl Strategy<Value = RawEdit> {
    (0usize..4, 0usize..1_000_000, 0usize..1_000_000, 0u32..4000).prop_map(|(kind, a, b, s)| {
        RawEdit {
            kind: kind as u8,
            a,
            b,
            scale_milli: s,
        }
    })
}

#[test]
fn random_delta_sequences_match_cold_runs() {
    proptest::run_cases(
        ProptestConfig::with_cases(3),
        "random_delta_sequences_match_cold_runs",
        |rng| {
            let raw_edits = proptest::collection::vec(arb_raw_edit(), 1usize..9).generate(rng);
            let thread_seq =
                proptest::collection::vec((0usize..3).prop_map(|i| [1usize, 2, 8][i]), 1usize..5)
                    .generate(rng);
            let best_effort = (0usize..2).prop_map(|b| b == 1).generate(rng);
            run_episode(&raw_edits, &thread_seq, best_effort);
        },
    );

    // Top up whichever policy the sampler missed: both sides of the
    // Strict/BestEffort contract must run every time.
    let seen = POLICIES_SEEN.load(Ordering::Relaxed);
    let fixed = [RawEdit {
        kind: 2,
        a: 17,
        b: 3,
        scale_milli: 1500,
    }];
    if seen & 0b01 == 0 {
        run_episode(&fixed, &[8, 1], false);
    }
    if seen & 0b10 == 0 {
        run_episode(&fixed, &[2], true);
    }
}
