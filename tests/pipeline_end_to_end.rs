//! End-to-end integration: circuit generation → STA → GNN training →
//! CirSTAG → perturbation validation, across crate boundaries.

use cirstag_bench::case_a::{TimingCase, TimingCaseConfig};
use cirstag_suite::core::{bottom_fraction, top_fraction, CirStagConfig};

fn build_case() -> TimingCase {
    TimingCase::build(
        "it",
        &TimingCaseConfig {
            num_gates: 200,
            seed: 101,
            epochs: 180,
            hidden: 24,
        },
    )
    .expect("case builds")
}

#[test]
fn full_pipeline_produces_actionable_ranking() {
    let mut case = build_case();
    assert!(case.r2 > 0.9, "timing GNN R² too low: {}", case.r2);

    let report = case
        .stability(CirStagConfig {
            embedding_dim: 12,
            num_eigenpairs: 15,
            knn_k: 8,
            ..Default::default()
        })
        .expect("stability analysis");
    assert_eq!(report.node_scores.len(), case.timing.num_pins());
    assert!(report
        .node_scores
        .iter()
        .all(|s| s.is_finite() && *s >= 0.0));
    assert!(report.eigenvalues[0] > 0.0);

    // The headline claim at integration scale: perturbing the pins CirSTAG
    // flags as unstable moves the GNN's output predictions more than
    // perturbing the pins it flags as stable.
    let eligible = case.eligible();
    let unstable = top_fraction(&report.node_scores, 0.10, Some(&eligible));
    let stable = bottom_fraction(&report.node_scores, 0.10, Some(&eligible));
    assert!(!unstable.is_empty() && !stable.is_empty());
    assert!(unstable.iter().all(|&p| eligible[p]));
    let u = case
        .perturb_outcome(&unstable, 10.0)
        .expect("perturb unstable");
    let s = case.perturb_outcome(&stable, 10.0).expect("perturb stable");
    assert!(
        u.mean() > s.mean(),
        "no separation: unstable {} vs stable {}",
        u.mean(),
        s.mean()
    );
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let mut a = build_case();
    let mut b = build_case();
    assert_eq!(a.r2, b.r2, "training must be bit-reproducible");
    let cfg = CirStagConfig {
        embedding_dim: 12,
        num_eigenpairs: 10,
        knn_k: 8,
        ..Default::default()
    };
    let ra = a.stability(cfg).expect("run a");
    let rb = b.stability(cfg).expect("run b");
    assert_eq!(ra.node_scores, rb.node_scores);
    assert_eq!(ra.eigenvalues, rb.eigenvalues);
}

#[test]
fn ablations_run_and_differ() {
    let mut case = build_case();
    let base_cfg = CirStagConfig {
        embedding_dim: 12,
        num_eigenpairs: 10,
        knn_k: 8,
        ..Default::default()
    };
    let base = case.stability(base_cfg).expect("base");
    let nodim = case
        .stability(CirStagConfig {
            skip_dimension_reduction: true,
            ..base_cfg
        })
        .expect("nodim");
    let dense = case
        .stability(CirStagConfig {
            skip_manifold_sparsification: true,
            ..base_cfg
        })
        .expect("dense");
    let random = case
        .stability(CirStagConfig {
            random_prune: true,
            ..base_cfg
        })
        .expect("random");
    // Each ablation must actually change the computation.
    assert_ne!(base.node_scores, nodim.node_scores);
    assert_ne!(base.node_scores, dense.node_scores);
    assert_ne!(base.node_scores, random.node_scores);
    // Dense kNN manifold keeps at least as many edges as the sparsified one.
    assert!(dense.output_manifold.num_edges() >= base.output_manifold.num_edges());
}

#[test]
fn perturbation_scale_monotonicity() {
    let mut case = build_case();
    let report = case
        .stability(CirStagConfig {
            embedding_dim: 12,
            num_eigenpairs: 10,
            knn_k: 8,
            ..Default::default()
        })
        .expect("stability");
    let eligible = case.eligible();
    let unstable = top_fraction(&report.node_scores, 0.10, Some(&eligible));
    let at_2 = case.perturb_outcome(&unstable, 2.0).expect("2x");
    let at_5 = case.perturb_outcome(&unstable, 5.0).expect("5x");
    let at_10 = case.perturb_outcome(&unstable, 10.0).expect("10x");
    assert!(at_2.mean() <= at_5.mean() * 1.05, "2x vs 5x");
    assert!(at_5.mean() <= at_10.mean() * 1.05, "5x vs 10x");
}
