//! Property-based correctness of the stage-graph artifact cache: for any
//! graph and any pair of configs differing only in Phase-3 fields, an
//! incremental re-run (Phase-1/2 artifacts replayed from cache) must be
//! bit-identical to a cold run of the same config — scores, eigenvalues,
//! manifolds, degraded flag, and the fallback-event sequence (compared
//! without `elapsed_ms`, the one field that legitimately re-times).
//!
//! The whole property lives in a single `#[test]` because the worker-thread
//! count is process-global: the property primes the cache at one thread
//! count and replays at another, which also pins that cache keys exclude
//! `num_threads` (results are thread-count independent).

use cirstag_suite::core::{
    ArtifactCache, CirStag, CirStagConfig, FailurePolicy, FallbackEvent, SharedArtifactCache,
    StabilityReport,
};
use cirstag_suite::graph::Graph;
use cirstag_suite::linalg::DenseMatrix;
use proptest::prelude::*;

/// Random connected graph: a ring plus random chords, 10–32 nodes.
fn arb_connected_graph() -> impl Strategy<Value = Graph> {
    (
        10usize..32,
        proptest::collection::vec((0usize..1000, 0usize..1000, 0.2f64..5.0), 0..20),
    )
        .prop_map(|(n, chords)| {
            let mut edges: Vec<(usize, usize, f64)> =
                (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
            for (a, b, w) in chords {
                let u = a % n;
                let v = b % n;
                if u != v {
                    edges.push((u, v, w));
                }
            }
            Graph::from_edges(n, &edges).expect("valid edges")
        })
}

/// Deterministic synthetic GNN output embedding.
fn synth_embedding(n: usize, dim: usize, scale: f64) -> DenseMatrix {
    DenseMatrix::from_rows(
        &(0..n)
            .map(|i| {
                (0..dim)
                    .map(|j| (scale * (i * (j + 2)) as f64 * 0.37).sin())
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>(),
    )
    .expect("well-formed rows")
}

/// Events without their wall-clock field, which re-times on every run.
fn event_shapes(events: &[FallbackEvent]) -> Vec<(String, String, String, Option<u64>)> {
    events
        .iter()
        .map(|e| {
            (
                e.stage.clone(),
                e.rung.clone(),
                e.cause.clone(),
                e.residual.map(f64::to_bits),
            )
        })
        .collect()
}

fn assert_bit_identical(cold: &StabilityReport, warm: &StabilityReport) {
    assert_eq!(cold.node_scores, warm.node_scores, "node scores diverge");
    assert_eq!(cold.edge_scores, warm.edge_scores, "edge scores diverge");
    assert_eq!(cold.eigenvalues, warm.eigenvalues, "eigenvalues diverge");
    assert_eq!(
        cold.input_manifold, warm.input_manifold,
        "input manifold diverges"
    );
    assert_eq!(
        cold.output_manifold, warm.output_manifold,
        "output manifold diverges"
    );
    assert_eq!(cold.degraded, warm.degraded, "degraded flag diverges");
    assert_eq!(
        event_shapes(&cold.diagnostics.events),
        event_shapes(&warm.diagnostics.events),
        "fallback events diverge"
    );
    assert_eq!(
        cold.diagnostics.warnings, warm.diagnostics.warnings,
        "warnings diverge"
    );
}

/// Two tenants racing on the same fingerprint through a
/// [`SharedArtifactCache`] must deduplicate single-flight: each cacheable
/// stage is computed exactly once across both runs (5 misses total), the
/// other run replays it (5 hits total), and both reports are bit-identical
/// to a cold, uncached run.
#[test]
fn shared_cache_concurrent_tenants_compute_once_and_replay_identically() {
    let n = 24;
    let mut edges: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
    edges.push((0, 12, 2.0));
    edges.push((3, 17, 0.7));
    edges.push((8, 21, 1.4));
    let g = std::sync::Arc::new(cirstag_suite::graph::Graph::from_edges(n, &edges).expect("graph"));
    let emb = std::sync::Arc::new(synth_embedding(n, 4, 1.3));
    let config = CirStagConfig {
        embedding_dim: 4,
        knn_k: 4,
        num_eigenpairs: 3,
        num_threads: 1,
        ..Default::default()
    };

    let cold = CirStag::new(config)
        .analyze(&g, None, &emb)
        .expect("cold reference run");

    let shared = std::sync::Arc::new(SharedArtifactCache::default());
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let g = std::sync::Arc::clone(&g);
        let emb = std::sync::Arc::clone(&emb);
        let shared = std::sync::Arc::clone(&shared);
        let barrier = std::sync::Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            CirStag::new(config)
                .analyze_shared(&g, None, &emb, &shared, None)
                .expect("shared run")
        }));
    }
    let reports: Vec<StabilityReport> = handles
        .into_iter()
        .map(|h| h.join().expect("tenant thread"))
        .collect();

    let hits: usize = reports.iter().map(|r| r.timings.cache_hits).sum();
    let misses: usize = reports.iter().map(|r| r.timings.cache_misses).sum();
    assert_eq!(misses, 5, "each cacheable stage computed exactly once");
    assert_eq!(hits, 5, "the other tenant replayed every cacheable stage");
    for r in &reports {
        assert_bit_identical(&cold, r);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_rerun_is_bit_identical_to_cold(
        g in arb_connected_graph(),
        scale in 0.5f64..3.0,
        s_first in 1usize..5,
        s_second in 1usize..5,
        geig_iter in 60usize..160,
        best_effort in (0usize..2).prop_map(|b| b == 1),
        use_features in (0usize..2).prop_map(|b| b == 1),
    ) {
        let n = g.num_nodes();
        let emb = synth_embedding(n, 3, scale);
        let features = synth_embedding(n, 2, scale + 0.25);
        let feats = if use_features { Some(&features) } else { None };
        let base = CirStagConfig {
            embedding_dim: 5,
            knn_k: 4,
            num_eigenpairs: s_first,
            feature_weight: if use_features { 0.5 } else { 0.0 },
            num_threads: 1,
            policy: if best_effort {
                FailurePolicy::BestEffort
            } else {
                FailurePolicy::Strict
            },
            ..Default::default()
        };
        // Second config differs ONLY in Phase-3 fields (plus the thread
        // count, which cache keys deliberately exclude).
        let second = CirStagConfig {
            num_eigenpairs: s_second,
            geig_max_iter: geig_iter,
            num_threads: 4,
            ..base
        };

        // Reference: cold, uncached runs of both configs.
        let cold_first = CirStag::new(base).analyze(&g, feats, &emb).expect("cold first");
        let cold_second = CirStag::new(second).analyze(&g, feats, &emb).expect("cold second");

        // Incremental: prime a disk-backed cache with the first config,
        // then re-run with the second — Phase 1/2 must replay from cache.
        let disk = std::env::temp_dir().join(format!(
            "cirstag_engine_cache_{n}_{}_{s_first}_{s_second}_{geig_iter}_{best_effort}_{use_features}",
            scale.to_bits()
        ));
        std::fs::remove_dir_all(&disk).ok();
        let mut cache = ArtifactCache::new().with_disk_dir(&disk);

        let warm_first = CirStag::new(base)
            .analyze_cached(&g, feats, &emb, &mut cache)
            .expect("warm first");
        prop_assert_eq!(warm_first.timings.cache_hits, 0, "first cached run is all misses");
        prop_assert_eq!(warm_first.timings.cache_misses, 5);
        assert_bit_identical(&cold_first, &warm_first);

        let warm_second = CirStag::new(second)
            .analyze_cached(&g, feats, &emb, &mut cache)
            .expect("warm second");
        // Phase-1 embedding and both Phase-2 manifolds replay; the Phase-3
        // geig + dmd stages recompute (unless both configs coincide).
        prop_assert!(
            warm_second.timings.cache_hits >= 3,
            "expected >= 3 hits, got {} ({} misses)",
            warm_second.timings.cache_hits,
            warm_second.timings.cache_misses
        );
        assert_bit_identical(&cold_second, &warm_second);

        // A second replay of the same config hits every cacheable stage,
        // even through a fresh cache restored from the disk layer alone.
        let mut fresh = ArtifactCache::new().with_disk_dir(&disk);
        let replayed = CirStag::new(second)
            .analyze_cached(&g, feats, &emb, &mut fresh)
            .expect("disk replay");
        prop_assert_eq!(replayed.timings.cache_hits, 5, "disk layer misses");
        prop_assert_eq!(replayed.timings.cache_misses, 0);
        assert_bit_identical(&cold_second, &replayed);

        std::fs::remove_dir_all(&disk).ok();
    }
}
