#!/bin/bash
cd /root/repo
# wait until table1 finishes (output file becomes non-empty and process gone)
while ! grep -q "shape checks" results/table1.txt 2>/dev/null; do sleep 20; done
cargo run --release -q -p cirstag-bench --bin fig3 > results/fig3.txt 2>results/fig3.log
cargo run --release -q -p cirstag-bench --bin fig4 > results/fig4.txt 2>results/fig4.log
cargo run --release -q -p cirstag-bench --bin table2 > results/table2.txt 2>results/table2.log
cargo run --release -q -p cirstag-bench --bin ablation_pgm > results/ablation_pgm.txt 2>results/ablation_pgm.log
cargo run --release -q -p cirstag-bench --bin ablation_manifold > results/ablation_manifold.txt 2>results/ablation_manifold.log
cargo run --release -q -p cirstag-bench --bin fig5 > results/fig5.txt 2>results/fig5.log
echo ALL_DONE > results/done.marker
